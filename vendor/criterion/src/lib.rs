//! Vendored stand-in for the `criterion` crate (offline build).
//!
//! A minimal wall-clock harness with criterion's API shape: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! throughput annotation and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark runs a short warm-up, then `sample_size` timed
//! samples, and prints mean / min / max (and throughput when set) to
//! stdout. There is no statistical analysis, HTML report, or saved
//! baseline — the numbers are for relative comparison within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmark's result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly: a warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(full_id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mut line = format!(
        "{full_id:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(" thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    " thrpt: {:.3} MiB/s",
                    per_sec(n) / (1024.0 * 1024.0)
                ));
            }
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep stand-in runs quick: criterion's default is 100 samples with
        // elaborate timing targets; 10 is plenty for coarse tracking.
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.default_sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&id.id, &b.samples, None);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Finish the group (separator line, matching criterion's API shape).
    pub fn finish(self) {
        println!();
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000u64 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
