//! Vendored stand-in for the `parking_lot` crate (offline build).
//!
//! Provides the subset of the API this workspace uses — `Mutex` and
//! `RwLock` with poison-free `lock()`/`read()`/`write()` — implemented on
//! top of `std::sync`. A poisoned lock panics, matching parking_lot's
//! behaviour of never returning a poison error.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's panic-on-poison `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

/// A reader-writer lock with parking_lot's panic-on-poison accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }
}
