//! Vendored stand-in for the `rayon` crate (offline build).
//!
//! Implements the narrow adapter surface this workspace uses —
//! `into_par_iter().enumerate().map(f).collect()` and
//! `par_chunks_mut(n).enumerate().map(f).collect()` — with genuine
//! data parallelism: items are split into contiguous chunks and mapped on
//! `std::thread::scope` threads, preserving input order. There is no work
//! stealing; chunking is static, which is adequate for the uniform
//! per-block workloads the simulator produces.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Map `items` through `f` in parallel, preserving order.
fn par_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for (inp, res) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (item, slot) in inp.iter_mut().zip(res.iter_mut()) {
                    *slot = Some(f(item.take().expect("item present")));
                }
            });
        }
    });
    out.into_iter().map(|u| u.expect("mapped")).collect()
}

/// Conversion into a "parallel iterator" (an eager, order-preserving one).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Convert self into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel chunk splitting of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of at most `n` elements, yielded in order.
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(n).collect(),
        }
    }
}

/// An eager parallel iterator over an already-materialised item list.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily attach a map stage (applied in parallel at `collect`).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collect the items in order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// A pending parallel map stage.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: From<Vec<U>>,
    {
        C::from(par_map(self.items, self.f))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().enumerate().map(|(i, x)| i + x).collect();
        assert_eq!(out, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_covers_all() {
        let mut v = vec![0u32; 97];
        let sums: Vec<usize> = v
            .par_chunks_mut(10)
            .enumerate()
            .map(|(i, c)| {
                for x in c.iter_mut() {
                    *x = i as u32;
                }
                c.len()
            })
            .collect();
        assert_eq!(sums.iter().sum::<usize>(), 97);
        assert_eq!(v[95], 9);
    }
}
