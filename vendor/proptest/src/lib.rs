//! Vendored stand-in for the `proptest` crate (offline build).
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, `Just`,
//! `any::<T>()`, `prop::collection::vec`, `prop::bool::ANY`, the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test PRNG (seeded from the
//! test name), so failures reproduce exactly across runs. There is **no
//! shrinking**: a failing case reports its case index and message only.

use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG used by the runner (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chain a dependent strategy off each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical "anything" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for an integer type.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable size specifications for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` / `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::{Strategy, TestRng};

    /// Strategy for a uniformly random bool.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random bool.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's config: the number of cases per test.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Stable 64-bit FNV-1a hash of a test name, used to decorrelate the
/// per-test deterministic seeds.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Assert inside a proptest body; failure aborts the case with a message
/// instead of panicking, so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{}): left = {:?}, right = {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0..3u32, 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, Strategy};

    /// Namespace alias so `prop::collection::vec` / `prop::bool::ANY`
    /// resolve after a prelude glob import.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..5, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 2usize..40, v in prop::collection::vec(-3.0f64..3.0, 1..20), b in prop::bool::ANY) {
            prop_assert!((2..40).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|f| (-3.0..3.0).contains(f)));
            let _ = b;
        }

        #[test]
        fn flat_map_respects_length((n, v) in pair(), seed in any::<u64>()) {
            prop_assert_eq!(v.len(), n);
            let _ = seed;
        }

        #[test]
        fn inclusive_ranges(k in 5u32..=9) {
            prop_assert!((5..=9).contains(&k));
        }
    }
}
