//! Vendored stand-in for the `crossbeam` crate (offline build).
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided, mapped
//! onto `std::thread::scope`. Crossbeam passes the scope itself to every
//! spawned closure; this workspace never uses that argument, so the
//! stand-in passes a zero-sized token instead.

pub mod thread {
    use std::any::Any;

    /// Zero-sized token handed to spawned closures in place of crossbeam's
    /// scope argument (the workspace ignores it: `move |_| ...`).
    pub struct SpawnArg;

    /// A scope in which child threads may borrow from the enclosing stack
    /// frame, mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the closure's value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a placeholder scope
        /// token (crossbeam passes the scope for nested spawning, which
        /// this stand-in does not support).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnArg) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&SpawnArg)),
            }
        }
    }

    /// Create a scope for spawning borrowing threads.
    ///
    /// `std::thread::scope` already re-raises child panics after joining
    /// everything, so the `Err` arm is unreachable here; the `Result`
    /// wrapper only preserves crossbeam's signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
