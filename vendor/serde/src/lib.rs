//! Vendored stand-in for the `serde` crate (offline build).
//!
//! Real serde is a zero-copy streaming framework; this stand-in is a much
//! simpler *value-tree* design that is sufficient for the workspace: types
//! convert to and from a JSON-like [`Value`], and `serde_json` renders or
//! parses that tree. The `derive` feature re-exports `Serialize` /
//! `Deserialize` derive macros (from the vendored `serde_derive`) that
//! target these simplified traits, so `#[derive(serde::Serialize)]` keeps
//! working unchanged.

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] cannot be converted into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

/// A type that can be represented as a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::msg(format!("expected bool, got {v:?}")))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg(format!("expected string, got {v:?}")))
    }
}

impl Deserialize for &'static str {
    /// Static-string fields (e.g. axis names) come back as leaked strings;
    /// acceptable for the small configuration payloads this workspace
    /// round-trips.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let f = v
                    .as_f64()
                    .ok_or_else(|| DeError::msg(format!("expected number, got {v:?}")))?;
                if f.fract() != 0.0 {
                    return Err(DeError::msg(format!(
                        "expected integer, got {f}"
                    )));
                }
                Ok(f as $t)
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::msg(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of {N}, got {len}")))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}
