//! The JSON-like value tree shared by the vendored `serde` / `serde_json`.

use std::fmt;
use std::ops::Index;

/// A JSON number. Stored as `f64`, which covers every number this
/// workspace serialises (counts, sizes, milliseconds); integers up to
/// 2^53 round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(f64);

impl Number {
    /// Wrap a float (NaN/inf render as `null`).
    pub fn from_f64(f: f64) -> Self {
        Number(f)
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        self.0
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        if self.0.fract() == 0.0 && self.0 >= 0.0 && self.0 <= u64::MAX as f64 {
            Some(self.0 as u64)
        } else {
            None
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        if self.0.fract() == 0.0 && self.0 >= i64::MIN as f64 && self.0 <= i64::MAX as f64 {
            Some(self.0 as i64)
        } else {
            None
        }
    }
}

/// A JSON document: the interchange type of the vendored serde stack.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature); key lookup is a linear scan, fine for the small configuration
/// and report payloads this workspace produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow the field `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a float, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As a non-negative integer, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As a signed integer, if this is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// As the object entry list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Missing keys index to `null`, matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::value::to_json_string(self, None))
    }
}

/// Render a number the way `serde_json` would: integers without a decimal
/// point, other finite floats via Rust's shortest round-trip `Display`,
/// non-finite values as `null`.
fn fmt_number(n: &Number) -> String {
    let f = n.as_f64();
    if !f.is_finite() {
        return "null".to_owned();
    }
    if f.fract() == 0.0 && f.abs() < 9.0e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialise a value tree to JSON text. `indent = None` is compact;
/// `Some(width)` pretty-prints with that indent step.
pub fn to_json_string(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, indent, 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&fmt_number(n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

/// Parse JSON text into a value tree.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(|n| Value::Number(Number::from_f64(n))),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not produced by this writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-decode UTF-8 starting at the byte we consumed.
                let start = *pos - 1;
                let s = std::str::from_utf8(&b[start..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unexpected end of string")?;
                *pos = start + ch.len_utf8();
                out.push(ch);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected number at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("GTX 470\n\"x\"".into())),
            ("count".into(), Value::Number(Number::from_f64(14.0))),
            ("ms".into(), Value::Number(Number::from_f64(0.125))),
            (
                "items".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        for indent in [None, Some(2)] {
            let text = to_json_string(&v, indent);
            let back = parse_json(&text).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn index_and_compare() {
        let v = parse_json(r#"{"tuner": "default", "n": 3.5}"#).unwrap();
        assert_eq!(v["tuner"], "default");
        assert_eq!(v["n"].as_f64(), Some(3.5));
        assert!(v["missing"].is_null());
    }
}
