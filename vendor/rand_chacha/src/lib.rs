//! Vendored stand-in for the `rand_chacha` crate (offline build).
//!
//! Exposes `ChaCha8Rng` with the `SeedableRng::seed_from_u64` entry point
//! the workspace uses. The stream is produced by xoshiro256** seeded via
//! SplitMix64 — deterministic and statistically strong, though not
//! bit-compatible with real ChaCha8 (nothing in this workspace depends on
//! the exact stream, only on reproducibility).

use rand::{RngCore, SeedableRng};

/// Deterministic generator standing in for the ChaCha8 stream cipher RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference design).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(2011);
        let mut b = ChaCha8Rng::seed_from_u64(2011);
        let va: Vec<u32> = (0..64).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..64).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(2012);
        let vc: Vec<u32> = (0..64).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }
}
