//! Vendored stand-in for the `serde_json` crate (offline build).
//!
//! Renders and parses the vendored serde's [`Value`] tree. Supports the
//! workspace's calls: `to_string`, `to_string_pretty`, `from_str`,
//! `to_value`, the [`json!`] macro, and the [`Value`] accessors
//! (`as_array`, `as_f64`, indexing, `== "str"`).

pub use serde::{Number, Value};

/// Error type for JSON conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Convert any serialisable type to a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Serialise to compact JSON text. Infallible for tree-backed values; the
/// `Result` mirrors real serde_json's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::value::to_json_string(&value.to_value(), None))
}

/// Serialise to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::value::to_json_string(&value.to_value(), Some(2)))
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = serde::value::parse_json(text).map_err(Error)?;
    T::from_value(&v).map_err(Error::from)
}

/// Build a [`Value`] from a JSON-ish literal.
///
/// Object values are arbitrary `Serialize` expressions; unlike the real
/// macro, a *nested* object literal must be wrapped in its own `json!`
/// (`"k": json!({...})`) — the workspace only uses flat literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let name = String::from("gtx");
        let v = json!({
            "name": name,
            "ms": 1.5,
            "count": 3usize,
            "nested": json!({"ok": true}),
            "list": json!([1, 2]),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["name"], "gtx");
        assert_eq!(back["ms"].as_f64(), Some(1.5));
        assert_eq!(back["nested"]["ok"].as_bool(), Some(true));
        assert_eq!(back["list"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": json!([1, 17.25, json!({"b": "x"})])});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
