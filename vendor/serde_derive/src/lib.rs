//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the offline serde stand-in.
//!
//! The real serde_derive builds on `syn`/`quote`; neither is available
//! offline, so this implementation walks the raw `proc_macro::TokenStream`
//! directly and emits code as formatted strings. It supports exactly the
//! shapes this workspace derives on:
//!
//! * structs with named fields (any visibility, doc comments allowed)
//! * enums with unit variants
//! * enums with struct variants (externally tagged, like real serde)
//!
//! Generics, tuple structs/variants and `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item we parsed.
enum Item {
    /// Named-field struct: field names in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum: each variant is a name plus (for struct variants) field names.
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Skip `#[...]` attribute groups (including doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse the names of named fields out of a brace-group token list.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!(
                "serde_derive (vendored): expected `:` after field `{}`",
                name
            ),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parse a struct or enum definition from the derive input.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected item keyword, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported (`{name}`)");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => panic!(
            "serde_derive (vendored): `{name}` must have a braced body (tuple/unit items unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < body.len() {
                j = skip_attrs(&body, j);
                let Some(TokenTree::Ident(vname)) = body.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let vfields =
                            parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>());
                        variants.push((vname, Some(vfields)));
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde_derive (vendored): tuple variant `{name}::{vname}` unsupported"
                        );
                    }
                    _ => variants.push((vname, None)),
                }
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive (vendored): cannot derive on `{other}` items"),
    }
}

/// `#[derive(Serialize)]`: implement the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let entries: String = fs
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{v}\".to_string(), ::serde::Value::Object(vec![{entries}]))\
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("vendored serde_derive: generated code parses")
}

/// `#[derive(Deserialize)]`: implement the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get(\"{f}\").unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| ::serde::DeError::msg(\
                             format!(\"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| {
                    format!("::std::option::Option::Some(\"{v}\") => ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                     inner.get(\"{f}\").unwrap_or(&::serde::Value::Null)\
                                 )?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(entries) = v.as_object() {{\n\
                             if let ::std::option::Option::Some((tag, inner)) = entries.first() {{\n\
                                 #[allow(unused_variables)]\n\
                                 match tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         match v.as_str() {{\n\
                             {unit_arms}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::msg(\
                                 format!(\"invalid {name} variant: {{v:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("vendored serde_derive: generated code parses")
}
