//! Vendored stand-in for the `rand` crate (offline build).
//!
//! Deterministic PRNG plumbing only: the `RngCore`/`Rng`/`SeedableRng`
//! traits and `distributions::{Distribution, Uniform}`, covering the calls
//! this workspace makes (`gen`, `gen_range`, `Uniform::new(..).sample(..)`).
//! Stream values differ from the real crate — all workloads here are
//! self-consistent (generated and consumed inside this workspace), so only
//! determinism matters, not bit-compatibility.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// Like the real crate's `SampleUniform`: a per-type sampling hook, so the
/// range impls below can stay *blanket* impls over the element type. The
/// blanket shape matters for inference — `gen_range(-1.0..1.0)` must unify
/// the output type with the literal's float inference variable (letting the
/// `{float}` → `f64` fallback apply), exactly as real rand does.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open `[lo, hi)` (bounds pre-validated).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed `[lo, hi]` (bounds pre-validated).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges acceptable to [`Rng::gen_range`], producing values of type `T`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform integer in `[0, bound)` via rejection-free multiply-shift.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                // Measure-zero difference from the half-open draw.
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// High-level convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    /// Draw a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of PRNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod distributions {
    //! The `Distribution`/`Uniform` subset of `rand::distributions`.

    use super::{Rng, RngCore, SampleUniform, Standard};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: Copy + PartialOrd> Uniform<X> {
        /// Uniform over the half-open `[low, high)`; panics if empty.
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Self { low, high }
        }
    }

    impl<X> Distribution<X> for Uniform<X>
    where
        X: Copy + SampleUniform + PartialOrd,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            rng.gen_range(self.low..self.high)
        }
    }

    /// The standard distribution (what [`Rng::gen`] draws from).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardDist;

    impl<T: Standard> Distribution<T> for StandardDist {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::draw(rng)
        }
    }
}

pub mod rngs {
    //! A small default generator, for parity with `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 — tiny, fast, and statistically adequate for tests.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::distributions::Distribution;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0..4u32);
            assert!(v < 4);
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = Uniform::new(-1.0f64, 1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&u));
            let i = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&i));
        }
    }
}
