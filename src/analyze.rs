//! The `trisolve analyze` harness: statically certify every shipping
//! kernel and plan across the paper's workload matrix using the
//! [`trisolve_analyze`] prover, without executing a single simulated
//! instruction.
//!
//! Three halves, mirroring the dynamic [`crate::sanitize`] harness:
//!
//! 1. **Fixture self-check** — synthetic summaries and plans each
//!    containing one planted defect (a stretched out-of-bounds access
//!    map, a collapsed barrier that races, a reordered stage ladder, an
//!    oversized on-chip budget). Each must be *refuted*; a prover that
//!    certifies its own broken fixtures proves nothing about clean runs.
//! 2. **Certification sweep** — the multi-stage solver (all three
//!    memory-layout variants, the interleaved batched-Thomas family
//!    wherever the batch admits it), the repack/unpack passes and the
//!    three prior-art baseline kernels over the Figure 5–8 workload grid
//!    *plus* the many-small grid, on the paper's devices. Every case
//!    must come back fully proven: OOB-free, race-free,
//!    launch-admissible, lint-error-free and within the all-sizes
//!    shared-memory budget.
//! 3. **Cross-validation** — a sample of statically-certified cases is
//!    re-run under the *dynamic* sanitizer (DESIGN.md §3.6). A certified
//!    case that produces a runtime hazard is a soundness bug in the
//!    analyzer and fails the harness loudly.
//!
//! The harness is a library so the CI gate (`scripts/check.sh`), the
//! integration tests and the CLI subcommand all run the same code.

use trisolve_analyze::{
    analyze_params, conflict::kernel_bank_summaries, lint_plan, prove_kernel,
    smem_budget_obligation, statically_rejected, LintLevel,
};
use trisolve_autotune::{StaticTuner, Tuner};
use trisolve_core::kernels::{
    base_access_summary, base_config, baseline_access_summary, baseline_config, elem_bytes,
    interleave_access_summary, interleave_config, repack_access_summary, repack_config,
    unpack_access_summary, unpack_config, BaselineAlgo, GpuScalar, KernelAccessSummary,
};
use trisolve_core::params::INTERLEAVED_MIN_SYSTEMS;
use trisolve_core::{BaseVariant, SolvePlan, SolverParams};
use trisolve_gpu_sim::{validate_launch, DeviceSpec, LaunchConfig};
use trisolve_tridiag::workloads::WorkloadShape;

use crate::sanitize::{shrunk_paper_grid, solve_case};

/// Outcome of one planted-defect fixture.
#[derive(Debug, Clone)]
pub struct ProofFixture {
    /// Fixture name (what was planted).
    pub name: &'static str,
    /// Did the prover refuse to certify the planted defect?
    pub refuted: bool,
    /// The failed obligation the prover produced (or why refutation
    /// failed).
    pub detail: String,
}

/// Outcome of one certification-sweep case.
#[derive(Debug, Clone)]
pub struct AnalyzeCase {
    /// Human-readable case label (device, workload, precision, kernels).
    pub label: String,
    /// Did every proof obligation discharge?
    pub certified: bool,
    /// Obligations the prover checked for this case.
    pub obligations: usize,
    /// Worst shared-memory bank-conflict degree across the case's sites.
    pub worst_bank_degree: usize,
    /// Every failed obligation, lint error and validation site.
    pub failures: Vec<String>,
}

/// Outcome of one cross-validation pairing: the static verdict next to
/// the dynamic sanitizer's hazard list for the same case.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Case label shared by both runs.
    pub label: String,
    /// The static analyzer's verdict.
    pub certified: bool,
    /// Hazards the dynamic sanitizer found (rendered).
    pub hazards: Vec<String>,
}

impl CrossCheck {
    /// True unless a statically-certified case produced a dynamic hazard
    /// — the one combination that indicts the analyzer's soundness.
    pub fn is_sound(&self) -> bool {
        !self.certified || self.hazards.is_empty()
    }
}

/// Options for the certification sweep and cross-validation.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Devices to sweep (defaults to all three paper devices).
    pub devices: Vec<DeviceSpec>,
    /// Linear shrink applied to the paper's workload grid; 1 = the full
    /// Figure 5–8 sizes. The static sweep is cheap, so the *analysis*
    /// always covers the full grid — the shrink only bounds the
    /// cross-validation solves.
    pub shrink: usize,
    /// Sweep f32 as well as f64.
    pub both_precisions: bool,
}

impl AnalyzeOptions {
    /// The full matrix: all devices, both precisions, full-size grid.
    pub fn full() -> Self {
        Self {
            devices: DeviceSpec::paper_devices(),
            shrink: 1,
            both_precisions: true,
        }
    }

    /// The CI smoke matrix: one device, f64 only, shrunk
    /// cross-validation workloads.
    pub fn quick() -> Self {
        Self {
            devices: vec![DeviceSpec::gtx_470()],
            shrink: 16,
            both_precisions: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Fixture self-check
// ---------------------------------------------------------------------------

fn refutation(name: &'static str, refuted: bool, failures: Vec<String>) -> ProofFixture {
    ProofFixture {
        name,
        refuted,
        detail: if failures.is_empty() {
            "planted defect was not refuted".into()
        } else {
            failures.join("; ")
        },
    }
}

fn fixture_summary() -> (KernelAccessSummary, LaunchConfig) {
    let (m, n) = (1usize, 1024usize);
    (
        base_access_summary(m, n, n, 1, 4, BaseVariant::Strided),
        base_config(1, n, 1, 4, BaseVariant::Strided, 8),
    )
}

/// Planted defect: the buffer is one element shorter than the access
/// map's reach, so exactly one global access goes out of bounds.
fn oob_fixture() -> ProofFixture {
    let (mut summary, cfg) = fixture_summary();
    summary.buffer_len -= 1;
    let proof = prove_kernel(&summary, &cfg, 8);
    let failures: Vec<String> = proof
        .failures()
        .filter(|o| o.name.starts_with("oob-global"))
        .map(|o| format!("{}: {}", o.name, o.detail))
        .collect();
    refutation("out-of-bounds access map", !failures.is_empty(), failures)
}

/// Planted defect: the base kernel's double sync is collapsed — the PCR
/// read and write intervals merge, recreating the read/write race the
/// real kernel's second barrier exists to prevent.
fn race_fixture() -> ProofFixture {
    let (mut summary, cfg) = fixture_summary();
    if summary.intervals.len() >= 2 {
        let second = summary.intervals.remove(1);
        let first = &mut summary.intervals[0];
        first.label = format!("{}+{}", first.label, second.label);
        first.accesses.extend(second.accesses);
    }
    let proof = prove_kernel(&summary, &cfg, 8);
    let failures: Vec<String> = proof
        .failures()
        .filter(|o| o.name.starts_with("race-free"))
        .map(|o| format!("{}: {}", o.name, o.detail))
        .collect();
    refutation("collapsed-barrier race", !failures.is_empty(), failures)
}

/// Planted defect: a valid plan with its stage ladder reversed, which
/// the structural lints must flag as an error.
fn lint_fixture() -> ProofFixture {
    let q = DeviceSpec::gtx_470().queryable().clone();
    let shape = WorkloadShape::new(16, 2048);
    let params = SolverParams::default_untuned();
    match SolvePlan::build(shape, &params, &q, 8) {
        Ok(mut plan) => {
            plan.ops.reverse();
            let failures: Vec<String> = lint_plan(&plan)
                .into_iter()
                .filter(|l| l.level == LintLevel::Error)
                .map(|l| format!("[{}] {}", l.code, l.message))
                .collect();
            refutation("reversed stage ladder", !failures.is_empty(), failures)
        }
        Err(e) => refutation(
            "reversed stage ladder",
            false,
            vec![format!("fixture plan failed to build: {e}")],
        ),
    }
}

/// Planted defect: the interleave pass's output buffer is one element
/// short of the batch it scatters into, so the highest interleaved-layout
/// store (`(n-1)·m + (m-1)`) lands out of bounds. Exercises the prover on
/// the interleaved access maps specifically — the `j·m + s` scatter is
/// the family's characteristic pattern.
fn interleave_oob_fixture() -> ProofFixture {
    let (m, n) = (64usize, 32usize);
    let mut summary = interleave_access_summary(m, n);
    summary.buffer_len -= 1;
    let proof = prove_kernel(&summary, &interleave_config(m, n, 8), 8);
    let failures: Vec<String> = proof
        .failures()
        .filter(|o| o.name.starts_with("oob-global"))
        .map(|o| format!("{}: {}", o.name, o.detail))
        .collect();
    refutation(
        "interleaved-layout out-of-bounds scatter",
        !failures.is_empty(),
        failures,
    )
}

/// Planted defect: an on-chip size four times past the weakest device's
/// capacity. Both the all-sizes budget proof and the tuner's rejection
/// predicate must refuse it.
fn budget_fixture() -> ProofFixture {
    let q = DeviceSpec::geforce_8800_gtx().queryable().clone();
    let params = SolverParams {
        onchip_size: 4096,
        ..SolverParams::default_untuned()
    };
    let budget = smem_budget_obligation(&params, &q, 4);
    let rejected = statically_rejected(WorkloadShape::new(16, 4096), &params, &q, 4);
    let mut failures = Vec::new();
    if !budget.proven {
        failures.push(format!("{}: {}", budget.name, budget.detail));
    }
    if let Some(reason) = rejected {
        failures.push(reason);
    }
    refutation("oversized on-chip budget", failures.len() == 2, failures)
}

/// Run the five planted-defect fixtures. Each plants exactly one defect
/// class; a sound prover refutes all five.
pub fn fixture_checks() -> Vec<ProofFixture> {
    vec![
        oob_fixture(),
        race_fixture(),
        interleave_oob_fixture(),
        lint_fixture(),
        budget_fixture(),
    ]
}

// ---------------------------------------------------------------------------
// Certification sweep
// ---------------------------------------------------------------------------

/// Prove a set of standalone `(summary, config)` kernels as one case:
/// every proof obligation plus launch admissibility on the device.
fn prove_standalone(
    label: String,
    dev: &DeviceSpec,
    eb: usize,
    kernels: &[(KernelAccessSummary, LaunchConfig)],
) -> AnalyzeCase {
    let q = dev.queryable();
    let mut obligations = 0;
    let mut worst = 1;
    let mut failures = Vec::new();
    for (summary, cfg) in kernels {
        let proof = prove_kernel(summary, cfg, eb);
        obligations += proof.obligations.len();
        failures.extend(
            proof
                .failures()
                .map(|o| format!("{}: {} ({})", proof.label, o.name, o.detail)),
        );
        let validation = validate_launch(q, cfg);
        obligations += 1;
        failures.extend(
            validation
                .errors()
                .map(|d| format!("launch refused: {}", d.site())),
        );
        worst = worst.max(
            kernel_bank_summaries(summary, q, eb)
                .iter()
                .map(|b| b.degree)
                .max()
                .unwrap_or(1),
        );
    }
    AnalyzeCase {
        label,
        certified: failures.is_empty(),
        obligations,
        worst_bank_degree: worst,
        failures,
    }
}

/// One multi-stage plan case: build, validate, lint and prove the plan
/// the engine would run for `(shape, params)` on this device.
fn plan_case(
    dev: &DeviceSpec,
    shape: WorkloadShape,
    variant: BaseVariant,
    precision: &str,
    eb: usize,
) -> AnalyzeCase {
    let q = dev.queryable();
    let label = format!(
        "{} {} {} {:?}",
        dev.name(),
        shape.label(),
        precision,
        variant
    );
    let params = SolverParams {
        variant,
        ..StaticTuner.params_for(shape, q, eb)
    };
    match analyze_params(shape, &params, q, eb) {
        Ok(report) => AnalyzeCase {
            label,
            certified: report.certified(),
            obligations: report.obligations_checked(),
            worst_bank_degree: report.worst_bank_degree(),
            failures: report.failures(),
        },
        Err(e) => AnalyzeCase {
            label,
            certified: false,
            obligations: 0,
            worst_bank_degree: 1,
            failures: vec![format!("plan construction rejected: {e}")],
        },
    }
}

/// The repack/unpack transpose passes, proven directly from their
/// summaries (they run outside any `SolvePlan`).
fn repack_case(dev: &DeviceSpec, precision: &str, eb: usize) -> AnalyzeCase {
    let (m, n, stride) = (4usize, 2048usize, 4usize);
    let label = format!("{} repack/unpack {m}x{n}@{stride} {precision}", dev.name());
    let kernels = vec![
        (
            repack_access_summary(m, n, stride),
            repack_config(m, n, stride, eb),
        ),
        (
            unpack_access_summary(m, n, stride),
            unpack_config(m, n, stride, eb),
        ),
    ];
    prove_standalone(label, dev, eb, &kernels)
}

/// The three prior-art baseline kernels, proven directly from their
/// summaries at the same geometry the dynamic sweep runs them.
fn baseline_case(dev: &DeviceSpec, precision: &str, eb: usize) -> AnalyzeCase {
    let (m, n, stride) = (8usize, 256usize, 1usize);
    let chain_len = n / stride;
    let label = format!("{} baselines {chain_len}@{stride} {precision}", dev.name());
    let kernels: Vec<(KernelAccessSummary, LaunchConfig)> = [
        BaselineAlgo::Pcr,
        BaselineAlgo::Cr,
        BaselineAlgo::CrPcr { pcr_threshold: 64 },
    ]
    .into_iter()
    .map(|algo| {
        (
            baseline_access_summary(m, n, chain_len, stride, algo),
            baseline_config(m * stride, chain_len, stride, algo, eb),
        )
    })
    .collect();
    prove_standalone(label, dev, eb, &kernels)
}

fn sweep_device(
    dev: &DeviceSpec,
    shapes: &[WorkloadShape],
    precision: &str,
    eb: usize,
    out: &mut Vec<AnalyzeCase>,
) {
    for &shape in shapes {
        let mut variants = vec![BaseVariant::Strided, BaseVariant::Coalesced];
        // The interleaved family joins wherever the plan builder admits
        // it (the batch floor rules elsewhere, matching
        // `prune_layout_axis`).
        if shape.num_systems >= INTERLEAVED_MIN_SYSTEMS {
            variants.push(BaseVariant::Interleaved);
        }
        for variant in variants {
            out.push(plan_case(dev, shape, variant, precision, eb));
        }
    }
    out.push(repack_case(dev, precision, eb));
    out.push(baseline_case(dev, precision, eb));
}

/// Run the certification sweep: the Figure 5–8 grid plus the many-small
/// grid × every admissible layout variant × devices (× precisions), plus
/// the repack and baseline kernel sets per device. Every case is
/// expected to certify.
pub fn sweep(opts: &AnalyzeOptions) -> Vec<AnalyzeCase> {
    let mut shapes = WorkloadShape::paper_grid();
    shapes.extend(WorkloadShape::many_small_grid());
    let mut out = Vec::new();
    for dev in &opts.devices {
        sweep_device(dev, &shapes, "f64", 8, &mut out);
        if opts.both_precisions {
            sweep_device(dev, &shapes, "f32", 4, &mut out);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Cross-validation against the dynamic sanitizer
// ---------------------------------------------------------------------------

fn cross_check<T: GpuScalar>(
    dev: &DeviceSpec,
    shape: WorkloadShape,
    variant: BaseVariant,
    precision: &str,
) -> Result<CrossCheck, String> {
    let eb = elem_bytes::<T>();
    let q = dev.queryable();
    let params = SolverParams {
        variant,
        ..StaticTuner.params_for(shape, q, eb)
    };
    let certified = analyze_params(shape, &params, q, eb).is_ok_and(|r| r.certified());
    let dynamic = solve_case::<T>(dev, shape, variant, precision)?;
    Ok(CrossCheck {
        label: dynamic.label,
        certified,
        hazards: dynamic.hazards,
    })
}

/// Re-run a sample of sweep cases under the dynamic sanitizer and pair
/// each runtime hazard list with the static verdict. Workloads use the
/// shrunk grid (static certification is size-generic; dynamic solves are
/// not free). Any certified-but-hazardous pair is a soundness failure.
pub fn cross_validate(opts: &AnalyzeOptions) -> Result<Vec<CrossCheck>, String> {
    let shapes = shrunk_paper_grid(opts.shrink);
    // Sample: the grid's corner shapes — many small systems, few large.
    let sample: Vec<WorkloadShape> = match (shapes.first(), shapes.last()) {
        (Some(&a), Some(&b)) if a != b => vec![a, b],
        (Some(&a), _) => vec![a],
        _ => Vec::new(),
    };
    let many_small = crate::sanitize::shrunk_many_small(opts.shrink);
    let mut out = Vec::new();
    for dev in &opts.devices {
        for &shape in &sample {
            for variant in [BaseVariant::Strided, BaseVariant::Coalesced] {
                out.push(cross_check::<f64>(dev, shape, variant, "f64")?);
                if opts.both_precisions {
                    out.push(cross_check::<f32>(dev, shape, variant, "f32")?);
                }
            }
        }
        // The interleaved fast path: certified statically, then re-run
        // under the dynamic sanitizer on a shrunk many-small batch.
        out.push(cross_check::<f64>(
            dev,
            many_small,
            BaseVariant::Interleaved,
            "f64",
        )?);
        if opts.both_precisions {
            out.push(cross_check::<f32>(
                dev,
                many_small,
                BaseVariant::Interleaved,
                "f32",
            )?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_refuted() {
        for f in fixture_checks() {
            assert!(f.refuted, "{}: {}", f.name, f.detail);
        }
    }

    #[test]
    fn quick_sweep_certifies_every_case() {
        for case in sweep(&AnalyzeOptions::quick()) {
            assert!(
                case.certified,
                "{}: {}",
                case.label,
                case.failures.join("; ")
            );
            assert!(case.obligations > 0, "{}: no obligations", case.label);
        }
    }

    #[test]
    fn cross_validation_is_sound_on_the_quick_matrix() {
        let checks = cross_validate(&AnalyzeOptions::quick()).unwrap();
        assert!(!checks.is_empty());
        for c in checks {
            assert!(c.is_sound(), "{}: {}", c.label, c.hazards.join("; "));
            assert!(c.certified, "{}: sample case did not certify", c.label);
        }
    }
}
