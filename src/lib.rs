#![warn(missing_docs)]

//! # trisolve
//!
//! An auto-tuned multi-stage solver for large tridiagonal systems on a
//! simulated GPU — a full Rust reproduction of Davidson, Zhang & Owens,
//! *"An Auto-tuned Method for Solving Large Tridiagonal Systems on the
//! GPU"* (IPDPS 2011).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`tridiag`] — tridiagonal algebra: system types, Thomas/LU/CR/PCR and
//!   hybrid solvers, workload generators, norms, batched CPU drivers;
//! * [`gpu`] — the functional GPU machine simulator (devices of the paper's
//!   Table I, launch API, analytic timing model, MKL-class CPU model);
//! * [`solver`] — the paper's multi-stage solver (stage kernels, plans,
//!   driver);
//! * [`autotune`] — default / machine-query / self-tuned parameter
//!   selection, the pruned-search framework, and the tuning cache;
//! * [`dnc`] — the §VI-C divide-and-conquer generalisation (auto-tuned
//!   multi-stage merge sort);
//! * [`analysis`] — the static kernel & plan analyzer: affine
//!   access-pattern proofs (OOB- and race-freedom), bank-conflict and
//!   coalescing classification, plan lints and tuner search-space pruning;
//! * [`sanitize`] — the `trisolve sanitize` harness: injected-hazard
//!   fixtures plus the shipping-kernel sweep under the dynamic sanitizer;
//! * [`analyze`] — the `trisolve analyze` harness: planted-defect proof
//!   fixtures, the full-matrix static certification sweep, and
//!   cross-validation of static verdicts against the dynamic sanitizer;
//! * [`chaos`] — the `trisolve chaos` harness: forced-fault fixtures plus
//!   seeded fault-injection campaigns proving the resilience layer
//!   (retries, residual verification, graceful degradation to CPU)
//!   recovers the paper's workload matrix;
//! * [`obs`] — the unified tracing & metrics layer: per-launch spans on the
//!   simulated clock, tuner-search telemetry, Chrome-trace/JSONL export.
//!
//! ## Quickstart
//!
//! ```
//! use trisolve::prelude::*;
//!
//! // A batch of 32 diagonally dominant systems of 4096 equations.
//! let shape = WorkloadShape::new(32, 4096);
//! let batch = random_dominant::<f32>(shape, 42).unwrap();
//!
//! // A simulated GeForce GTX 470, and parameters tuned for it at runtime.
//! let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
//! let mut tuner = DynamicTuner::new();
//! tuner.tune_for(&mut gpu, shape);
//! let params = tuner.params_for(shape, gpu.spec().queryable(), 4);
//!
//! // Solve and verify.
//! let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
//! let residual = batch_worst_relative_residual(&batch, &outcome.x).unwrap();
//! assert!(residual < 1e-4);
//! println!("solved in {:.3} simulated ms", outcome.sim_time_ms());
//! ```

pub mod analyze;
pub mod chaos;
pub mod sanitize;

pub use trisolve_analyze as analysis;
pub use trisolve_autotune as autotune;
pub use trisolve_core as solver;
pub use trisolve_dnc as dnc;
pub use trisolve_gpu_sim as gpu;
pub use trisolve_obs as obs;
pub use trisolve_tridiag as tridiag;

/// The most common imports in one place.
pub mod prelude {
    pub use trisolve_autotune::{
        solve_auto, DefaultTuner, DynamicTuner, StaticTuner, TunedConfig, Tuner, TuningBudget,
        TuningCache,
    };
    pub use trisolve_core::{
        solve_batch_on_gpu, Backend, BaseVariant, CpuBackend, GpuBackend, ResiliencePolicy,
        ResilientOutcome, SolveOutcome, SolvePlan, SolveSession, SolverParams, StageTimeline,
    };
    pub use trisolve_gpu_sim::{CpuSpec, DeviceSpec, FaultPlan, Gpu, QueryableProps};
    pub use trisolve_obs::{chrome_trace, jsonl, MetricsReport, TraceEvent, Tracer};
    pub use trisolve_tridiag::norms::{batch_worst_relative_residual, relative_residual};
    pub use trisolve_tridiag::workloads::{
        adi_heat_lines, cubic_spline, poisson_1d, random_dominant, WorkloadShape,
    };
    pub use trisolve_tridiag::{Scalar, SolverError, SystemBatch, TridiagonalSystem};
}
