//! The `trisolve chaos` harness: seeded fault-injection campaigns over the
//! paper's workload matrix, proving the resilience layer (see
//! [`trisolve_core::resilience`]) recovers every case — or fails loudly
//! with a structured report.
//!
//! Two halves, mirroring the [`crate::sanitize`] harness:
//!
//! 1. **Fixture self-check** — forced fault scenarios each proving one
//!    recovery mechanism end-to-end: a transient launch failure absorbed by
//!    retries, persistent faults degrading all the way to the CPU LU
//!    reference, a silent bit flip caught by residual verification, and —
//!    the other direction — a *disabled* fault plan leaving results and
//!    simulated timings bit-identical to a plain solve.
//! 2. **Campaign sweep** — the resilient solve pipeline over the Figure 5–8
//!    workload grid on the paper's devices, across three workload classes
//!    (diagonally dominant, ill-conditioned, non-diagonally-dominant) under
//!    a seeded [`FaultPlan`] mixing transient launch failures, kernel
//!    timeouts, transfer corruption, ECC-style bit flips and spurious OOM.
//!    Every case must come back recovered (residual-verified against the
//!    policy tolerance, compared against the host pivoted-LU reference) or
//!    the harness reports it as unrecovered.
//!
//! The harness is a library so the CI gate (`scripts/check.sh`), the
//! integration tests and the CLI subcommand all run the same code.

use trisolve_autotune::{StaticTuner, Tuner};
use trisolve_core::engine::SolveSession;
use trisolve_core::kernels::{elem_bytes, GpuScalar};
use trisolve_core::{BaseVariant, RecoveryAction, ResiliencePolicy, SolverParams};
use trisolve_gpu_sim::{DeviceSpec, FaultLog, FaultPlan, Gpu};
use trisolve_tridiag::cpu_batch::{solve_batch_sequential, BatchAlgorithm};
use trisolve_tridiag::workloads::{ill_conditioned, non_dominant, random_dominant, WorkloadShape};
use trisolve_tridiag::SystemBatch;

use crate::sanitize::{shrunk_many_small, shrunk_paper_grid};

/// Base seed for campaign fault plans and workloads (the paper's
/// publication year, like the bench and sanitize harnesses).
pub const CHAOS_SEED: u64 = 2011;

/// Attempts allowed for device-buffer allocation when the fault plan
/// injects spurious OOM during session construction.
const SESSION_ALLOC_ATTEMPTS: usize = 4;

/// Outcome of one forced-fault fixture.
#[derive(Debug, Clone)]
pub struct FixtureOutcome {
    /// Fixture name (which recovery mechanism it forces).
    pub name: &'static str,
    /// Did the resilience layer behave exactly as required?
    pub passed: bool,
    /// What happened (recovery narrative or why the check failed).
    pub detail: String,
}

/// Outcome of one campaign case.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Human-readable case label (device, workload, precision, class).
    pub label: String,
    /// Did the resilient solve produce an accepted solution?
    pub recovered: bool,
    /// Which degradation-chain step won (empty when unrecovered).
    pub recovered_by: String,
    /// Verified worst relative residual of the accepted solution.
    pub residual: f64,
    /// Max-norm relative deviation from the host pivoted-LU reference
    /// solution (informational: grows with the condition number even for
    /// perfectly recovered solves).
    pub vs_reference: f64,
    /// Faults the injector actually fired during the case.
    pub faults_injected: usize,
    /// Total solve attempts, the accepted one included.
    pub attempts: usize,
    /// Re-attempts after transient faults or rejected residuals.
    pub retries: usize,
    /// Degradation-chain steps abandoned before the accepted one.
    pub fallbacks: usize,
    /// The failure, for unrecovered cases.
    pub error: Option<String>,
}

/// Options for the campaign sweep.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Devices to sweep (defaults to all three paper devices).
    pub devices: Vec<DeviceSpec>,
    /// Linear shrink applied to the paper's workload grid so the sweep
    /// stays fast; 1 = the full Figure 5–8 sizes.
    pub shrink: usize,
    /// Sweep f32 as well as f64.
    pub both_precisions: bool,
    /// Base seed for per-case fault plans and workloads.
    pub seed: u64,
}

impl ChaosOptions {
    /// The full matrix: all devices, both precisions, moderately shrunk.
    pub fn full() -> Self {
        Self {
            devices: DeviceSpec::paper_devices(),
            shrink: 8,
            both_precisions: true,
            seed: CHAOS_SEED,
        }
    }

    /// The CI smoke matrix: one device, f64 only, heavily shrunk.
    pub fn quick() -> Self {
        Self {
            devices: vec![DeviceSpec::gtx_470()],
            shrink: 16,
            both_precisions: false,
            seed: CHAOS_SEED,
        }
    }
}

// ---------------------------------------------------------------------------
// Fixture self-check
// ---------------------------------------------------------------------------

/// A device with the fixture's fault plan armed, a prepared session, and
/// the workload the fixtures drive.
type FixtureRig = (Gpu<f64>, SolveSession<f64>, SystemBatch<f64>);

fn fixture_setup(plan: FaultPlan) -> Result<FixtureRig, String> {
    let shape = WorkloadShape::new(4, 512);
    let batch = random_dominant::<f64>(shape, 42).map_err(|e| e.to_string())?;
    let mut gpu: Gpu<f64> = Gpu::with_faults(DeviceSpec::gtx_470(), plan);
    let session = SolveSession::new(&mut gpu, shape).map_err(|e| e.to_string())?;
    Ok((gpu, session, batch))
}

fn retry_fixture() -> Result<FixtureOutcome, String> {
    // Exactly two forced launch failures: the retry budget (2) absorbs
    // them and the tuned plan still wins.
    let plan = FaultPlan::seeded(7)
        .with_launch_failures(1.0)
        .with_max_faults(2);
    let (mut gpu, mut session, batch) = fixture_setup(plan)?;
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let r = session
        .solve_resilient(&mut gpu, &batch, &params, &policy)
        .map_err(|e| e.to_string())?;
    let passed = r.recovered_by == "tuned-plan" && r.retries == 2 && r.fallbacks == 0;
    Ok(FixtureOutcome {
        name: "transient launch failures absorbed by retries",
        passed,
        detail: format!(
            "recovered by `{}` after {} retries, residual {:.3e}",
            r.recovered_by, r.retries, r.residual
        ),
    })
}

fn degradation_fixture() -> Result<FixtureOutcome, String> {
    // Unbounded forced launch failures: no GPU plan can run; the chain
    // must walk all the way down to the CPU LU reference.
    let plan = FaultPlan::seeded(3).with_launch_failures(1.0);
    let (mut gpu, mut session, batch) = fixture_setup(plan)?;
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let r = session
        .solve_resilient(&mut gpu, &batch, &params, &policy)
        .map_err(|e| e.to_string())?;
    let passed = r.recovered_by == "cpu-reference" && r.fallbacks >= 1;
    Ok(FixtureOutcome {
        name: "persistent faults degrade to the CPU reference",
        passed,
        detail: format!(
            "recovered by `{}` after {} fallbacks / {} attempts, residual {:.3e}",
            r.recovered_by, r.fallbacks, r.attempts, r.residual
        ),
    })
}

fn bit_flip_fixture() -> Result<FixtureOutcome, String> {
    // Seed 0 deterministically lands its single budgeted flip on a bit
    // that pushes the residual over tolerance; the check must reject the
    // corrupted attempt and the clean retry must win. (Seeds whose flip
    // hits a low-order mantissa bit are accepted outright — correctly so;
    // that is why the fixture pins the seed.)
    let plan = FaultPlan::seeded(0).with_bit_flips(1.0).with_max_faults(1);
    let (mut gpu, mut session, batch) = fixture_setup(plan)?;
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let r = session
        .solve_resilient(&mut gpu, &batch, &params, &policy)
        .map_err(|e| e.to_string())?;
    let rejected = r
        .events
        .iter()
        .any(|e| e.action == RecoveryAction::ResidualReject);
    let passed = rejected && r.retries == 1 && r.residual <= policy.residual_tolerance;
    Ok(FixtureOutcome {
        name: "silent bit flip caught by residual verification",
        passed,
        detail: format!(
            "corrupted attempt rejected: {rejected}; final residual {:.3e} after {} retries",
            r.residual, r.retries
        ),
    })
}

fn disabled_plan_fixture() -> Result<FixtureOutcome, String> {
    // The no-op contract, from the harness's own angle: a disabled fault
    // plan plus the resilience wrapper must reproduce the plain solve
    // bit-for-bit, simulated timings included.
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let (mut gpu, mut session, batch) = fixture_setup(FaultPlan::disabled())?;
    let r = session
        .solve_resilient(&mut gpu, &batch, &params, &policy)
        .map_err(|e| e.to_string())?;

    let shape = WorkloadShape::new(4, 512);
    let mut plain_gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
    let mut plain_session = SolveSession::new(&mut plain_gpu, shape).map_err(|e| e.to_string())?;
    let plain = plain_session
        .solve(&mut plain_gpu, &batch, &params)
        .map_err(|e| e.to_string())?;

    let bits_equal = plain.x == r.outcome.x
        && plain.sim_time_s.to_bits() == r.outcome.sim_time_s.to_bits()
        && plain_gpu.elapsed_s().to_bits() == gpu.elapsed_s().to_bits();
    let passed = bits_equal && r.first_try() && gpu.fault_log().is_none();
    Ok(FixtureOutcome {
        name: "disabled fault plan is bit-identical to a plain solve",
        passed,
        detail: format!(
            "bit-identical: {bits_equal}; first try: {}; injector attached: {}",
            r.first_try(),
            gpu.fault_log().is_some()
        ),
    })
}

/// Run the four forced-fault fixtures. Each proves one recovery mechanism
/// (or the no-op contract) end-to-end; a harness that cannot pass its own
/// fixtures proves nothing about the campaign.
pub fn fixture_checks() -> Result<Vec<FixtureOutcome>, String> {
    Ok(vec![
        retry_fixture()?,
        degradation_fixture()?,
        bit_flip_fixture()?,
        disabled_plan_fixture()?,
    ])
}

// ---------------------------------------------------------------------------
// Campaign sweep
// ---------------------------------------------------------------------------

/// The three workload classes the campaign stresses.
const CLASSES: &[&str] = &["dominant", "ill-conditioned", "non-dominant"];

fn class_batch<T: GpuScalar>(
    class: &str,
    shape: WorkloadShape,
    seed: u64,
) -> Result<SystemBatch<T>, String> {
    match class {
        "dominant" => random_dominant(shape, seed),
        // margin 1e-3: condition number in the thousands — the GPU's
        // pivot-free splitting loses accuracy here and residual
        // verification has real work to do.
        "ill-conditioned" => ill_conditioned(shape, seed, 1e-3),
        // dominance 0.85: every interior row breaks dominance, the class
        // the paper's algorithm does not guarantee — recovery may have to
        // reach the pivoted-LU CPU reference.
        "non-dominant" => non_dominant(shape, seed, 0.85),
        other => return Err(format!("unknown workload class `{other}`")),
    }
    .map_err(|e| e.to_string())
}

/// Residual acceptance threshold per class and element width. Dominant
/// systems use the standard precision-matched tolerance; the stress
/// classes get headroom proportional to their conditioning (LU stays
/// backward-stable, so these remain far below "garbage" residuals).
fn class_tolerance(class: &str, elem_bytes: usize) -> f64 {
    match (class, elem_bytes) {
        ("dominant", b) if b <= 4 => 1e-4,
        ("dominant", _) => 1e-8,
        (_, b) if b <= 4 => 1e-2,
        (_, _) => 1e-6,
    }
}

/// The seeded fault mix every campaign case runs under: mostly-transient
/// launch faults plus occasional silent corruption, capped so a case sees
/// a handful of faults rather than an unbounded storm.
fn campaign_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_launch_failures(0.08)
        .with_kernel_timeouts(0.02)
        .with_transfer_corruption(0.03)
        .with_bit_flips(0.03)
        .with_alloc_failures(0.02)
        .with_max_faults(8)
}

/// Max-norm relative deviation of `x` from the reference solution.
fn deviation_from<T: GpuScalar>(x: &[T], reference: &[T]) -> f64 {
    let mut worst = 0.0f64;
    let mut scale = 0.0f64;
    for (xi, ri) in x.iter().zip(reference) {
        worst = worst.max((xi.to_f64() - ri.to_f64()).abs());
        scale = scale.max(ri.to_f64().abs());
    }
    if scale > 0.0 {
        worst / scale
    } else {
        worst
    }
}

/// One campaign case: build the workload, arm the injector, solve
/// resiliently, compare against the host LU reference. `layout` forces a
/// memory-layout variant (the interleaved fast-path cases); `None` takes
/// whatever the static tuner picks.
fn run_case<T: GpuScalar>(
    dev: &DeviceSpec,
    shape: WorkloadShape,
    class: &str,
    precision: &str,
    case_seed: u64,
    layout: Option<BaseVariant>,
) -> Result<ChaosCase, String> {
    let mut label = format!("{} {} {} {}", dev.name(), shape.label(), precision, class);
    let batch = class_batch::<T>(class, shape, case_seed)?;
    let reference =
        solve_batch_sequential(&batch, BatchAlgorithm::Lu).map_err(|e| e.to_string())?;
    let mut params = StaticTuner.params_for(shape, dev.queryable(), elem_bytes::<T>());
    if let Some(variant) = layout {
        params.variant = variant;
        label.push_str(&format!(" {variant:?}"));
    }
    let policy = ResiliencePolicy::for_elem_bytes(elem_bytes::<T>())
        .with_residual_tolerance(class_tolerance(class, elem_bytes::<T>()));

    let mut gpu: Gpu<T> = Gpu::with_faults(dev.clone(), campaign_plan(case_seed));

    // Session construction allocates device buffers, so an injected OOM
    // can land here too; give it the same bounded-retry treatment the
    // solve path gets.
    let mut session = None;
    let mut last = String::new();
    for _ in 0..SESSION_ALLOC_ATTEMPTS {
        match SolveSession::new(&mut gpu, shape) {
            Ok(s) => {
                session = Some(s);
                break;
            }
            Err(e) if e.is_transient() => last = e.to_string(),
            Err(e) => return Err(format!("{label}: {e}")),
        }
    }
    let Some(mut session) = session else {
        return Err(format!(
            "{label}: session allocation never recovered: {last}"
        ));
    };

    let case = match session.solve_resilient(&mut gpu, &batch, &params, &policy) {
        Ok(r) => ChaosCase {
            label,
            recovered: true,
            recovered_by: r.recovered_by.to_string(),
            residual: r.residual,
            vs_reference: deviation_from(&r.outcome.x, &reference),
            faults_injected: gpu.fault_log().map_or(0, FaultLog::injected),
            attempts: r.attempts,
            retries: r.retries,
            fallbacks: r.fallbacks,
            error: None,
        },
        Err(e) => ChaosCase {
            label,
            recovered: false,
            recovered_by: String::new(),
            residual: f64::NAN,
            vs_reference: f64::NAN,
            faults_injected: gpu.fault_log().map_or(0, FaultLog::injected),
            attempts: 0,
            retries: 0,
            fallbacks: 0,
            error: Some(e.to_string()),
        },
    };
    Ok(case)
}

fn sweep_device<T: GpuScalar>(
    dev: &DeviceSpec,
    shapes: &[WorkloadShape],
    many_small: WorkloadShape,
    precision: &str,
    base_seed: u64,
    case_idx: &mut u64,
    out: &mut Vec<ChaosCase>,
) -> Result<(), String> {
    for &shape in shapes {
        for class in CLASSES {
            let seed = base_seed.wrapping_add(*case_idx);
            *case_idx += 1;
            out.push(run_case::<T>(dev, shape, class, precision, seed, None)?);
        }
    }
    // The interleaved batched-Thomas fast path under fault injection:
    // its degradation chain starts by falling back to the staged strided
    // pipeline, so persistent faults still reach the CPU reference.
    for class in CLASSES {
        let seed = base_seed.wrapping_add(*case_idx);
        *case_idx += 1;
        out.push(run_case::<T>(
            dev,
            many_small,
            class,
            precision,
            seed,
            Some(BaseVariant::Interleaved),
        )?);
    }
    Ok(())
}

/// Run the campaign sweep. Every returned case says whether the resilient
/// pipeline recovered it; unrecovered cases carry the structured failure.
pub fn campaign(opts: &ChaosOptions) -> Result<Vec<ChaosCase>, String> {
    let shapes = shrunk_paper_grid(opts.shrink);
    let many_small = shrunk_many_small(opts.shrink);
    let mut out = Vec::new();
    let mut case_idx = 0u64;
    for dev in &opts.devices {
        sweep_device::<f64>(
            dev,
            &shapes,
            many_small,
            "f64",
            opts.seed,
            &mut case_idx,
            &mut out,
        )?;
        if opts.both_precisions {
            sweep_device::<f32>(
                dev,
                &shapes,
                many_small,
                "f32",
                opts.seed,
                &mut case_idx,
                &mut out,
            )?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_pass() {
        for f in fixture_checks().unwrap() {
            assert!(f.passed, "{}: {}", f.name, f.detail);
        }
    }

    #[test]
    fn class_tolerances_are_ordered() {
        for b in [4usize, 8] {
            assert!(class_tolerance("dominant", b) < class_tolerance("ill-conditioned", b));
            assert_eq!(
                class_tolerance("ill-conditioned", b),
                class_tolerance("non-dominant", b)
            );
        }
    }
}
