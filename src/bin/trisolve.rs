//! `trisolve` — command-line front end to the auto-tuned multi-stage
//! tridiagonal solver on the simulated GPUs.
//!
//! ```console
//! $ trisolve devices
//! $ trisolve solve --device 470 --systems 64 --size 8192 --tuner dynamic
//! $ trisolve tune  --device 280 --systems 16 --size 65536 --cache tuning.json
//! $ trisolve compare --systems 1024 --size 1024
//! $ trisolve chaos --quick
//! ```
//!
//! Dependency-free argument parsing (`--key value` pairs after a
//! subcommand); `--json` switches the output to machine-readable JSON.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use trisolve::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "devices" => cmd_devices(&opts),
        "solve" => cmd_solve(&opts),
        "tune" => cmd_tune(&opts),
        "compare" => cmd_compare(&opts),
        "trace" => cmd_trace(&opts),
        "sanitize" => cmd_sanitize(&opts),
        "analyze" => cmd_analyze(&opts),
        "chaos" => cmd_chaos(&opts),
        "sort" => cmd_sort(&opts),
        "fft" => cmd_fft(&opts),
        "quicksort" => cmd_quicksort(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
trisolve — auto-tuned multi-stage tridiagonal solver (simulated GPU)

USAGE:
  trisolve devices [--json]
  trisolve solve   --systems M --size N [--device 8800|280|470]
                   [--tuner default|static|dynamic] [--precision f32|f64]
                   [--workload random|poisson|adi|spline] [--seed S] [--json]
  trisolve tune    --systems M --size N [--device ...] [--cache FILE] [--json]
  trisolve compare --systems M --size N [--seed S] [--json]
                   (all three tuners on all three devices)
  trisolve trace   --systems M --size N [--device ...] [--tuner default|static|dynamic]
                   [--workload random|poisson|adi|spline] [--seed S]
                   [--format chrome|jsonl] [--out PATH]
                   (traced solve on the simulated clock; Chrome trace-event
                    JSON loads in Perfetto / chrome://tracing, metrics summary
                    on stderr)
  trisolve sanitize [--quick] [--device 8800|280|470] [--shrink K] [--json]
                   (injected-hazard fixtures, then every shipping kernel
                    over the Figure 5-8 matrix under the dynamic sanitizer;
                    nonzero exit on any hazard or undetected fixture)
  trisolve analyze [--quick] [--device 8800|280|470] [--shrink K] [--json]
                   (planted-defect proof fixtures, then a static
                    certification sweep — OOB/race proofs, plan lints,
                    bank-conflict counts, smem budget — over the Figure 5-8
                    matrix, cross-validated against the dynamic sanitizer;
                    nonzero exit on any unproven case, unrefuted fixture or
                    certified-but-hazardous cross-check)
  trisolve chaos   [--quick] [--device 8800|280|470] [--shrink K] [--seed S] [--json]
                   (forced-fault fixtures, then a seeded fault-injection
                    campaign over the Figure 5-8 matrix across dominant /
                    ill-conditioned / non-dominant workloads; nonzero exit
                    on any unrecovered case or failed fixture)
  trisolve sort    --len N [--device ...]     (SVI-C merge-sort demo)
  trisolve fft     --len N [--device ...]     (SVI-C four-step FFT demo)
  trisolve quicksort --len N [--device ...]   (SVII multi-stage quicksort demo)
";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{k}`"));
        };
        if key == "json" || key == "quick" {
            map.insert(key.to_string(), "true".into());
            continue;
        }
        let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), v.clone());
    }
    Ok(map)
}

fn opt_usize(opts: &Opts, key: &str) -> Result<usize, String> {
    opts.get(key)
        .ok_or_else(|| format!("missing --{key}"))?
        .parse()
        .map_err(|_| format!("--{key} must be a number"))
}

fn device(opts: &Opts) -> Result<DeviceSpec, String> {
    match opts.get("device").map_or("470", String::as_str) {
        "8800" | "8800gtx" => Ok(DeviceSpec::geforce_8800_gtx()),
        "280" | "gtx280" => Ok(DeviceSpec::gtx_280()),
        "470" | "gtx470" => Ok(DeviceSpec::gtx_470()),
        other => Err(format!("unknown device `{other}` (use 8800, 280 or 470)")),
    }
}

fn workload(opts: &Opts, shape: WorkloadShape) -> Result<SystemBatch<f32>, String> {
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "--seed must be a number".to_string()))
        .transpose()?
        .unwrap_or(2011);
    let kind = opts.get("workload").map_or("random", String::as_str);
    let batch = match kind {
        "random" => random_dominant(shape, seed),
        "poisson" => poisson_1d(shape, seed),
        "adi" => adi_heat_lines(shape, 0.5),
        "spline" => cubic_spline(shape, seed),
        other => return Err(format!("unknown workload `{other}`")),
    };
    batch.map_err(|e| e.to_string())
}

fn json_flag(opts: &Opts) -> bool {
    opts.contains_key("json")
}

fn cmd_devices(opts: &Opts) -> Result<(), String> {
    if json_flag(opts) {
        let rows: Vec<_> = DeviceSpec::paper_devices()
            .iter()
            .map(|d| {
                serde_json::json!({
                    "name": d.name(),
                    "queryable": d.queryable(),
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        return Ok(());
    }
    for d in DeviceSpec::paper_devices() {
        let q = d.queryable();
        println!(
            "{:<18} {:>4} SMs x {:>2} TPs  shared {:>2} KB  regs {:>5}  global {:>4} MB  (max on-chip f32: {})",
            q.name,
            q.num_processors,
            q.thread_procs_per_sm,
            q.shared_mem_per_sm_bytes / 1024,
            q.registers_per_sm,
            q.global_mem_bytes / (1024 * 1024),
            SolverParams::max_onchip_size(q, 4),
        );
    }
    Ok(())
}

fn pick_params(
    opts: &Opts,
    shape: WorkloadShape,
    dev: &DeviceSpec,
) -> Result<(SolverParams, &'static str, usize), String> {
    let q = dev.queryable();
    match opts.get("tuner").map_or("dynamic", String::as_str) {
        "default" => Ok((DefaultTuner.params_for(shape, q, 4), "default", 0)),
        "static" => Ok((StaticTuner.params_for(shape, q, 4), "static", 0)),
        "dynamic" => {
            let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
            let mut tuner = DynamicTuner::new();
            let cfg = tuner.tune_for(&mut gpu, shape);
            Ok((cfg.params_for(shape), "dynamic", cfg.evaluations))
        }
        other => Err(format!("unknown tuner `{other}`")),
    }
}

fn cmd_solve(opts: &Opts) -> Result<(), String> {
    let shape = WorkloadShape::new(opt_usize(opts, "systems")?, opt_usize(opts, "size")?);
    let dev = device(opts)?;
    if opts.get("precision").map(String::as_str) == Some("f64") {
        return solve_f64(opts, shape, dev);
    }
    let batch = workload(opts, shape)?;
    let (params, tuner_name, evals) = pick_params(opts, shape, &dev)?;
    let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
    let mut backend = GpuBackend::new(&mut gpu);
    let mut session = backend.prepare(shape, &params).map_err(|e| e.to_string())?;
    let outcome = backend
        .solve(&mut session, &batch, &params)
        .map_err(|e| e.to_string())?;
    let residual = batch_worst_relative_residual(&batch, &outcome.x).map_err(|e| e.to_string())?;
    let timeline = StageTimeline::from_outcome(&outcome);

    if json_flag(opts) {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "device": dev.name(),
                "workload": shape.label(),
                "tuner": tuner_name,
                "tuning_evaluations": evals,
                "params": params,
                "plan": outcome.plan.summary(),
                "launches": outcome.kernel_stats.len(),
                "sim_time_ms": outcome.sim_time_ms(),
                "worst_relative_residual": residual,
                "stage_timeline": timeline,
            }))
            .unwrap()
        );
    } else {
        println!("device    : {}", dev.name());
        println!(
            "workload  : {} ({} equations)",
            shape.label(),
            shape.total_equations()
        );
        println!("tuner     : {tuner_name} ({evals} micro-benchmarks)");
        println!(
            "params    : S3={} T4={} P1={} {:?}",
            params.onchip_size, params.thomas_switch, params.stage1_target_systems, params.variant
        );
        println!("plan      : {}", outcome.plan.summary());
        println!(
            "sim time  : {:.3} ms over {} launches",
            outcome.sim_time_ms(),
            outcome.kernel_stats.len()
        );
        println!("residual  : {residual:.3e}");
        print!("{}", timeline.render_table());
    }
    Ok(())
}

fn solve_f64(opts: &Opts, shape: WorkloadShape, dev: DeviceSpec) -> Result<(), String> {
    let seed: u64 = opts
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2011);
    let batch: SystemBatch<f64> = random_dominant(shape, seed).map_err(|e| e.to_string())?;
    let params = StaticTuner.params_for(shape, dev.queryable(), 8);
    let mut gpu: Gpu<f64> = Gpu::new(dev.clone());
    let outcome = trisolve::solver::solve_batch_on_gpu(&mut gpu, &batch, &params)
        .map_err(|e| e.to_string())?;
    let residual = batch_worst_relative_residual(&batch, &outcome.x).map_err(|e| e.to_string())?;
    println!(
        "f64 solve on {}: {:.3} ms, residual {residual:.3e}",
        dev.name(),
        outcome.sim_time_ms()
    );
    Ok(())
}

fn cmd_tune(opts: &Opts) -> Result<(), String> {
    let shape = WorkloadShape::new(opt_usize(opts, "systems")?, opt_usize(opts, "size")?);
    let dev = device(opts)?;
    let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
    let mut tuner = DynamicTuner::new();
    let cfg = tuner.tune_for(&mut gpu, shape);

    if let Some(path) = opts.get("cache") {
        let path = PathBuf::from(path);
        let mut cache = TuningCache::load(&path).map_err(|e| e.to_string())?;
        cache.insert(dev.name(), cfg.clone());
        cache.save(&path).map_err(|e| e.to_string())?;
        println!("saved to {} ({} entries)", path.display(), cache.len());
    }
    if json_flag(opts) {
        println!("{}", serde_json::to_string_pretty(&cfg).unwrap());
    } else {
        println!(
            "{}: S3={} T4={} P1={} strided-from-stride={} ({} micro-benchmarks)",
            dev.name(),
            cfg.onchip_size,
            cfg.thomas_switch,
            cfg.stage1_target_systems,
            cfg.strided_from_stride,
            cfg.evaluations
        );
    }
    Ok(())
}

fn cmd_compare(opts: &Opts) -> Result<(), String> {
    let shape = WorkloadShape::new(opt_usize(opts, "systems")?, opt_usize(opts, "size")?);
    let batch = workload(opts, shape)?;
    let mut rows = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        let q = dev.queryable().clone();
        let mut times = Vec::new();
        for tuner in ["default", "static", "dynamic"] {
            let mut o = opts.clone();
            o.insert("tuner".into(), tuner.into());
            let (params, _, _) = pick_params(&o, shape, &dev)?;
            let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
            let ms = trisolve::solver::solver::measure_solve_time(&mut gpu, &batch, &params)
                .map_or(f64::INFINITY, |t| t * 1e3);
            times.push(ms);
        }
        rows.push((q.name.clone(), times));
    }
    if json_flag(opts) {
        let out: Vec<_> = rows
            .iter()
            .map(|(name, t)| {
                serde_json::json!({
                    "device": name, "untuned_ms": t[0], "static_ms": t[1], "dynamic_ms": t[2]
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    } else {
        println!("{} on all devices (simulated ms):", shape.label());
        println!(
            "{:<20} {:>10} {:>10} {:>10}",
            "device", "untuned", "static", "dynamic"
        );
        for (name, t) in rows {
            println!("{name:<20} {:>10.3} {:>10.3} {:>10.3}", t[0], t[1], t[2]);
        }
    }
    Ok(())
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let shape = WorkloadShape::new(opt_usize(opts, "systems")?, opt_usize(opts, "size")?);
    let dev = device(opts)?;
    let batch = workload(opts, shape)?;
    let format = opts.get("format").map_or("chrome", String::as_str);
    if format != "chrome" && format != "jsonl" {
        return Err(format!("unknown format `{format}` (use chrome or jsonl)"));
    }

    let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
    gpu.set_tracer(Tracer::enabled());

    let (params, tuner_name) = match opts.get("tuner").map_or("dynamic", String::as_str) {
        "default" => (
            DefaultTuner.params_for(shape, dev.queryable(), 4),
            "default",
        ),
        "static" => (StaticTuner.params_for(shape, dev.queryable(), 4), "static"),
        "dynamic" => {
            // Tune on the SAME traced gpu so the search telemetry (probe /
            // move / select / eval events) lands in the trace alongside the
            // final solve.
            let mut tuner = DynamicTuner::new();
            let cfg = tuner.tune_for(&mut gpu, shape);
            (cfg.params_for(shape), "dynamic")
        }
        other => return Err(format!("unknown tuner `{other}`")),
    };

    let outcome = {
        let mut backend = GpuBackend::new(&mut gpu);
        let mut session = backend.prepare(shape, &params).map_err(|e| e.to_string())?;
        backend
            .solve(&mut session, &batch, &params)
            .map_err(|e| e.to_string())?
    };
    let residual = batch_worst_relative_residual(&batch, &outcome.x).map_err(|e| e.to_string())?;

    let tracer = gpu.tracer().clone();
    let events = tracer.events();
    let counters = tracer.counters();
    let body = if format == "chrome" {
        let json = chrome_trace(&events, &counters);
        // Self-check before handing the file to Perfetto: the export must
        // parse as JSON and actually contain events.
        let parsed: serde_json::Value = serde_json::from_str(&json)
            .map_err(|e| format!("internal error: chrome trace is not valid JSON: {e}"))?;
        let n = parsed["traceEvents"].as_array().map_or(0, Vec::len);
        if n == 0 {
            return Err("internal error: chrome trace has no events".into());
        }
        json
    } else {
        jsonl(&events)
    };

    if let Some(path) = opts.get("out") {
        std::fs::write(path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
    } else {
        println!("{body}");
    }

    // Summary on stderr so stdout stays machine-readable when no --out.
    eprintln!(
        "traced {} on {} ({tuner_name} tuner): {:.3} simulated ms, residual {residual:.3e}",
        shape.label(),
        dev.name(),
        outcome.sim_time_ms(),
    );
    let report = MetricsReport::from_trace(&events, &counters);
    eprint!("{}", report.render(8));
    eprint!("{}", StageTimeline::from_trace(&events).render_table());
    if let Some(path) = opts.get("out") {
        eprintln!("wrote {format} trace ({} events) to {path}", events.len());
    }
    Ok(())
}

fn cmd_sanitize(opts: &Opts) -> Result<(), String> {
    use trisolve::sanitize;

    let mut sweep_opts = if opts.contains_key("quick") {
        sanitize::SweepOptions::quick()
    } else {
        sanitize::SweepOptions::full()
    };
    if opts.contains_key("device") {
        sweep_opts.devices = vec![device(opts)?];
    }
    if opts.contains_key("shrink") {
        sweep_opts.shrink = opt_usize(opts, "shrink")?.max(1);
    }

    let fixtures = sanitize::fixture_checks()?;
    let cases = sanitize::sweep(&sweep_opts)?;
    let missed: Vec<_> = fixtures.iter().filter(|f| !f.detected).collect();
    let dirty: Vec<_> = cases.iter().filter(|c| !c.is_clean()).collect();
    let launches: usize = cases.iter().map(|c| c.launches).sum();

    if json_flag(opts) {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "fixtures": fixtures.iter().map(|f| serde_json::json!({
                    "name": f.name, "detected": f.detected, "detail": f.detail,
                })).collect::<Vec<_>>(),
                "cases": cases.iter().map(|c| serde_json::json!({
                    "label": c.label,
                    "launches": c.launches,
                    "hazards": c.hazards,
                    "warnings": c.warnings,
                })).collect::<Vec<_>>(),
                "launches_checked": launches,
                "clean": missed.is_empty() && dirty.is_empty(),
            }))
            .unwrap()
        );
    } else {
        println!("fixture self-check (each plants one hazard):");
        for f in &fixtures {
            let mark = if f.detected { "detected" } else { "MISSED" };
            println!("  [{mark:^8}] {:<32} {}", f.name, f.detail);
        }
        println!(
            "\nshipping sweep ({} cases, {launches} launches):",
            cases.len()
        );
        for c in &cases {
            let verdict = if c.is_clean() { "clean" } else { "HAZARDS" };
            let warn = if c.warnings.is_empty() {
                String::new()
            } else {
                format!("  ({} warnings)", c.warnings.len())
            };
            println!(
                "  [{verdict:^7}] {:<44} {:>3} launches{warn}",
                c.label, c.launches
            );
            for h in &c.hazards {
                println!("      {h}");
            }
        }
    }
    if !missed.is_empty() {
        return Err(format!(
            "sanitizer failed its self-check: {} fixture(s) undetected",
            missed.len()
        ));
    }
    if !dirty.is_empty() {
        return Err(format!("{} shipping case(s) produced hazards", dirty.len()));
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    use trisolve::analyze;

    let mut a_opts = if opts.contains_key("quick") {
        analyze::AnalyzeOptions::quick()
    } else {
        analyze::AnalyzeOptions::full()
    };
    if opts.contains_key("device") {
        a_opts.devices = vec![device(opts)?];
    }
    if opts.contains_key("shrink") {
        a_opts.shrink = opt_usize(opts, "shrink")?.max(1);
    }

    let fixtures = analyze::fixture_checks();
    let cases = analyze::sweep(&a_opts);
    let checks = analyze::cross_validate(&a_opts)?;
    let unrefuted: Vec<_> = fixtures.iter().filter(|f| !f.refuted).collect();
    let unproven: Vec<_> = cases.iter().filter(|c| !c.certified).collect();
    let unsound: Vec<_> = checks.iter().filter(|c| !c.is_sound()).collect();
    let obligations: usize = cases.iter().map(|c| c.obligations).sum();

    if json_flag(opts) {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "fixtures": fixtures.iter().map(|f| serde_json::json!({
                    "name": f.name, "refuted": f.refuted, "detail": f.detail,
                })).collect::<Vec<_>>(),
                "cases": cases.iter().map(|c| serde_json::json!({
                    "label": c.label,
                    "certified": c.certified,
                    "obligations": c.obligations,
                    "worst_bank_degree": c.worst_bank_degree,
                    "failures": c.failures,
                })).collect::<Vec<_>>(),
                "cross_checks": checks.iter().map(|c| serde_json::json!({
                    "label": c.label,
                    "certified": c.certified,
                    "hazards": c.hazards,
                    "sound": c.is_sound(),
                })).collect::<Vec<_>>(),
                "obligations_checked": obligations,
                "certified": unrefuted.is_empty() && unproven.is_empty() && unsound.is_empty(),
            }))
            .unwrap()
        );
    } else {
        println!("fixture self-check (each plants one defect the prover must refute):");
        for f in &fixtures {
            let mark = if f.refuted { "refuted" } else { "MISSED" };
            println!("  [{mark:^8}] {:<32} {}", f.name, f.detail);
        }
        println!(
            "\ncertification sweep ({} cases, {obligations} obligations):",
            cases.len()
        );
        for c in &cases {
            let verdict = if c.certified { "proven" } else { "UNPROVEN" };
            println!(
                "  [{verdict:^8}] {:<44} {:>3} obligations, worst bank degree {}",
                c.label, c.obligations, c.worst_bank_degree
            );
            for f in &c.failures {
                println!("      {f}");
            }
        }
        println!("\ncross-validation against the dynamic sanitizer:");
        for c in &checks {
            let verdict = if !c.is_sound() {
                "UNSOUND"
            } else if c.certified {
                "agrees"
            } else {
                "uncertified"
            };
            println!("  [{verdict:^11}] {:<44}", c.label);
            for h in &c.hazards {
                println!("      {h}");
            }
        }
    }
    if !unrefuted.is_empty() {
        return Err(format!(
            "analyzer failed its self-check: {} fixture(s) unrefuted",
            unrefuted.len()
        ));
    }
    if !unproven.is_empty() {
        return Err(format!("{} sweep case(s) left unproven", unproven.len()));
    }
    if !unsound.is_empty() {
        return Err(format!(
            "{} statically-certified case(s) produced dynamic hazards",
            unsound.len()
        ));
    }
    Ok(())
}

fn cmd_chaos(opts: &Opts) -> Result<(), String> {
    use trisolve::chaos;

    let mut chaos_opts = if opts.contains_key("quick") {
        chaos::ChaosOptions::quick()
    } else {
        chaos::ChaosOptions::full()
    };
    if opts.contains_key("device") {
        chaos_opts.devices = vec![device(opts)?];
    }
    if opts.contains_key("shrink") {
        chaos_opts.shrink = opt_usize(opts, "shrink")?.max(1);
    }
    if let Some(s) = opts.get("seed") {
        chaos_opts.seed = s
            .parse()
            .map_err(|_| "--seed must be a number".to_string())?;
    }

    let fixtures = chaos::fixture_checks()?;
    let cases = chaos::campaign(&chaos_opts)?;
    let failed_fixtures: Vec<_> = fixtures.iter().filter(|f| !f.passed).collect();
    let unrecovered: Vec<_> = cases.iter().filter(|c| !c.recovered).collect();
    let faults: usize = cases.iter().map(|c| c.faults_injected).sum();
    let retries: usize = cases.iter().map(|c| c.retries).sum();
    let fallbacks: usize = cases.iter().map(|c| c.fallbacks).sum();

    if json_flag(opts) {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "seed": chaos_opts.seed,
                "fixtures": fixtures.iter().map(|f| serde_json::json!({
                    "name": f.name, "passed": f.passed, "detail": f.detail,
                })).collect::<Vec<_>>(),
                "cases": cases.iter().map(|c| serde_json::json!({
                    "label": c.label,
                    "recovered": c.recovered,
                    "recovered_by": c.recovered_by,
                    "residual": c.residual,
                    "vs_reference": c.vs_reference,
                    "faults_injected": c.faults_injected,
                    "attempts": c.attempts,
                    "retries": c.retries,
                    "fallbacks": c.fallbacks,
                    "error": c.error,
                })).collect::<Vec<_>>(),
                "faults_injected": faults,
                "retries": retries,
                "fallbacks": fallbacks,
                "all_recovered": failed_fixtures.is_empty() && unrecovered.is_empty(),
            }))
            .unwrap()
        );
    } else {
        println!("fixture self-check (each forces one recovery mechanism):");
        for f in &fixtures {
            let mark = if f.passed { "passed" } else { "FAILED" };
            println!("  [{mark:^8}] {:<52} {}", f.name, f.detail);
        }
        println!(
            "\nfault campaign (seed {}, {} cases, {faults} faults injected):",
            chaos_opts.seed,
            cases.len()
        );
        for c in &cases {
            if c.recovered {
                println!(
                    "  [recovered] {:<44} via {:<16} residual {:.1e}  \
                     faults {} retries {} fallbacks {}",
                    c.label, c.recovered_by, c.residual, c.faults_injected, c.retries, c.fallbacks
                );
            } else {
                println!(
                    "  [ DEAD    ] {:<44} {}",
                    c.label,
                    c.error.as_deref().unwrap_or("unknown failure")
                );
            }
        }
        println!("\ntotals: {faults} faults | {retries} retries | {fallbacks} fallbacks");
    }
    if !failed_fixtures.is_empty() {
        return Err(format!(
            "resilience layer failed its self-check: {} fixture(s)",
            failed_fixtures.len()
        ));
    }
    if !unrecovered.is_empty() {
        return Err(format!(
            "{} campaign case(s) did not recover",
            unrecovered.len()
        ));
    }
    Ok(())
}

fn cmd_sort(opts: &Opts) -> Result<(), String> {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    let len = opt_usize(opts, "len")?;
    if !len.is_power_of_two() {
        return Err("--len must be a power of two".into());
    }
    let dev = device(opts)?;
    let mut rng = ChaCha8Rng::seed_from_u64(2011);
    let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
    let mut gpu: trisolve::gpu::Gpu<u32> = trisolve::gpu::Gpu::new(dev.clone());
    let tuned = trisolve::dnc::tune_sort(&mut gpu, len);
    let out =
        trisolve::dnc::sort_on_gpu(&mut gpu, &data, tuned.params).map_err(|e| e.to_string())?;
    assert!(out.data.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "sorted {len} keys on {} in {:.3} simulated ms (tile {}, coop {}; {} tuning probes)",
        dev.name(),
        out.sim_time_s * 1e3,
        tuned.params.tile_size,
        tuned.params.coop_threshold,
        tuned.evaluations
    );
    Ok(())
}

fn cmd_fft(opts: &Opts) -> Result<(), String> {
    let len = opt_usize(opts, "len")?;
    if !len.is_power_of_two() {
        return Err("--len must be a power of two".into());
    }
    let dev = device(opts)?;
    let re: Vec<f64> = (0..len)
        .map(|i| ((i * 37 % 512) as f64) / 256.0 - 1.0)
        .collect();
    let im = vec![0.0f64; len];
    let mut gpu: trisolve::gpu::Gpu<f64> = trisolve::gpu::Gpu::new(dev.clone());
    let (params, evals) = trisolve::dnc::tune_fft(&mut gpu, len);
    let out = trisolve::dnc::fft_on_gpu(&mut gpu, &re, &im, params).map_err(|e| e.to_string())?;
    println!(
        "FFT of {len} points on {} in {:.3} simulated ms (split N1={}, {} tuning probes, {} launches)",
        dev.name(),
        out.sim_time_s * 1e3,
        params.n1,
        evals,
        out.kernel_stats.len()
    );
    Ok(())
}

fn cmd_quicksort(opts: &Opts) -> Result<(), String> {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    let len = opt_usize(opts, "len")?;
    let dev = device(opts)?;
    let mut rng = ChaCha8Rng::seed_from_u64(2011);
    let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
    let mut gpu: trisolve::gpu::Gpu<u32> = trisolve::gpu::Gpu::new(dev.clone());
    let (params, evals) = trisolve::dnc::tune_quicksort(&mut gpu, len);
    let out =
        trisolve::dnc::quicksort_on_gpu(&mut gpu, &data, params).map_err(|e| e.to_string())?;
    assert!(out.data.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "quicksorted {len} keys on {} in {:.3} simulated ms \
         (on-chip {}, coop {}; {} probes, {} launches)",
        dev.name(),
        out.sim_time_s * 1e3,
        params.onchip_threshold,
        params.coop_threshold,
        evals,
        out.kernel_stats.len()
    );
    Ok(())
}
