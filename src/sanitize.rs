//! The `trisolve sanitize` harness: run every shipping kernel across the
//! paper's workload matrix under the dynamic sanitizer (see
//! [`trisolve_gpu_sim::sanitizer`]) and prove the tooling itself works by
//! first detecting four *injected* hazards.
//!
//! Two halves, mirroring `compute-sanitizer` practice:
//!
//! 1. **Fixture self-check** — synthetic kernels each containing one planted
//!    defect (an out-of-bounds access, an uninitialized read, an
//!    inter-barrier shared-memory race) plus one invalid launch
//!    configuration. Each must be *detected* and classified correctly; a
//!    sanitizer that misses its own fixtures proves nothing about clean
//!    runs.
//! 2. **Shipping sweep** — the multi-stage solver (both staged memory
//!    layouts), the interleaved batched-Thomas fast path on a many-small
//!    batch, the repack/unpack passes and the three prior-art baseline
//!    kernels over the Figure 5–8 workload grid, in both precisions, on
//!    the paper's devices. Every case must come back hazard-free and
//!    launch-valid.
//!
//! The harness is a library so the CI gate (`scripts/check.sh`), the
//! integration tests and the CLI subcommand all run the same code.

use trisolve_autotune::{StaticTuner, Tuner};
use trisolve_core::engine::SolveSession;
use trisolve_core::kernels::{
    baseline_solve, elem_bytes, repack_chains, unpack_solution, BaselineAlgo, GpuScalar,
};
use trisolve_core::{BaseVariant, SolverParams};
use trisolve_gpu_sim::{
    validate_launch, DeviceSpec, Gpu, HazardKind, LaunchConfig, OutMode, SanitizerReport,
};
use trisolve_tridiag::norms::batch_worst_relative_residual;
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

/// Deterministic seed for sweep workloads (the paper's publication year,
/// like the bench harness).
pub const SANITIZE_SEED: u64 = 2011;

/// Outcome of one injected-hazard fixture.
#[derive(Debug, Clone)]
pub struct FixtureOutcome {
    /// Fixture name (what was planted).
    pub name: &'static str,
    /// Did the sanitizer detect and correctly classify the planted hazard?
    pub detected: bool,
    /// The diagnostic the sanitizer produced (or why detection failed).
    pub detail: String,
}

/// Outcome of one shipping-kernel sweep case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Human-readable case label (device, workload, precision, kernel set).
    pub label: String,
    /// Kernel launches the sanitizer checked.
    pub launches: usize,
    /// Rendered hazards (empty for a clean case).
    pub hazards: Vec<String>,
    /// Static launch-validation warnings (non-fatal).
    pub warnings: Vec<String>,
}

impl CaseResult {
    /// True when the case produced no hazard (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }
}

/// Options for the shipping sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Devices to sweep (defaults to all three paper devices).
    pub devices: Vec<DeviceSpec>,
    /// Linear shrink applied to the paper's workload grid so the sweep
    /// stays fast; 1 = the full Figure 5–8 sizes.
    pub shrink: usize,
    /// Sweep f32 as well as f64.
    pub both_precisions: bool,
}

impl SweepOptions {
    /// The full matrix: all devices, both precisions, moderately shrunk.
    pub fn full() -> Self {
        Self {
            devices: DeviceSpec::paper_devices(),
            shrink: 8,
            both_precisions: true,
        }
    }

    /// The CI smoke matrix: one device, f64 only, heavily shrunk.
    pub fn quick() -> Self {
        Self {
            devices: vec![DeviceSpec::gtx_470()],
            shrink: 16,
            both_precisions: false,
        }
    }
}

/// The canonical many-small workload (64K systems of 32 unknowns),
/// batch-shrunk for dynamic solves. The system size stays 32 — already
/// minimal — and the batch keeps the interleaved plan's 32-system floor,
/// so the shrunk shape still builds the `interleave → ithomas →
/// deinterleave` pipeline.
pub fn shrunk_many_small(shrink: usize) -> WorkloadShape {
    let full = WorkloadShape::new(64 * 1024, 32);
    WorkloadShape::new((full.num_systems / shrink.max(1)).max(32), full.system_size)
}

/// The Figure 5–8 workload grid, linearly shrunk (system sizes keep a 512
/// floor so multi-stage plans still exercise every stage).
pub fn shrunk_paper_grid(shrink: usize) -> Vec<WorkloadShape> {
    WorkloadShape::paper_grid()
        .into_iter()
        .map(|s| {
            WorkloadShape::new(
                (s.num_systems / shrink).max(1),
                (s.system_size / shrink).max(512),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fixture self-check
// ---------------------------------------------------------------------------

fn first_of(report: &SanitizerReport, want: &[HazardKind]) -> (bool, String) {
    match report.hazards.iter().find(|h| want.contains(&h.kind)) {
        Some(h) => (true, h.to_string()),
        None => (
            false,
            format!("planted hazard not detected: {}", report.summary()),
        ),
    }
}

fn oob_fixture() -> Result<FixtureOutcome, String> {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    let input = gpu.alloc_from(&[1.0; 32]).map_err(|e| e.to_string())?;
    let out = gpu.alloc(32).map_err(|e| e.to_string())?;
    gpu.launch(
        &LaunchConfig::new("fixture[oob]", 1, 32),
        &[input],
        &[(out, OutMode::Scattered)],
        |_ctx, io| {
            // Planted defect: the input has 32 elements, index 99 is OOB.
            let _ = io.load(0, 99, 3, "fixture::oob_load");
        },
    )
    .map_err(|e| e.to_string())?;
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    let (detected, detail) = first_of(&report, &[HazardKind::OutOfBounds]);
    Ok(FixtureOutcome {
        name: "out-of-bounds load",
        detected: detected && detail.contains("99"),
        detail,
    })
}

fn uninit_fixture() -> Result<FixtureOutcome, String> {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    // Planted defect: a fresh allocation is never uploaded or written.
    let never_written = gpu.alloc(32).map_err(|e| e.to_string())?;
    let out = gpu.alloc(32).map_err(|e| e.to_string())?;
    gpu.launch(
        &LaunchConfig::new("fixture[uninit]", 1, 32),
        &[never_written],
        &[(out, OutMode::Scattered)],
        |_ctx, io| {
            let v = io.load(0, 5, 5, "fixture::uninit_load");
            io.scattered[0].set_at(5, v, 5, "fixture::store");
        },
    )
    .map_err(|e| e.to_string())?;
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    let (detected, detail) = first_of(&report, &[HazardKind::UninitializedRead]);
    Ok(FixtureOutcome {
        name: "uninitialized read",
        detected,
        detail,
    })
}

fn race_fixture() -> Result<FixtureOutcome, String> {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    let input = gpu.alloc_from(&[1.0; 32]).map_err(|e| e.to_string())?;
    let out = gpu.alloc(32).map_err(|e| e.to_string())?;
    gpu.launch(
        &LaunchConfig::new("fixture[race]", 1, 32).with_shared_mem(32 * 4),
        &[input],
        &[(out, OutMode::Scattered)],
        |ctx, io| {
            // Planted defect: threads 0 and 1 store shared element 7 with no
            // barrier between the stores.
            ctx.track_smem_write(7, 0, "fixture::first_store");
            ctx.track_smem_write(7, 1, "fixture::second_store");
            ctx.sync();
            io.scattered[0].set_at(0, 0.0, 0, "fixture::store");
        },
    )
    .map_err(|e| e.to_string())?;
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    let (detected, detail) = first_of(
        &report,
        &[HazardKind::RaceWriteWrite, HazardKind::RaceReadWrite],
    );
    Ok(FixtureOutcome {
        name: "inter-barrier shared-memory race",
        detected,
        detail,
    })
}

fn invalid_launch_fixture() -> FixtureOutcome {
    let q = DeviceSpec::gtx_470().queryable().clone();
    // Planted defect: 4096 threads per block exceeds every device's limit.
    let cfg = LaunchConfig::new("fixture[invalid-config]", 64, 4096);
    let report = validate_launch(&q, &cfg);
    let detail = report.errors().next().map_or_else(
        || "validation passed an invalid config".into(),
        ToString::to_string,
    );
    FixtureOutcome {
        name: "invalid launch configuration",
        detected: report.has_errors(),
        detail,
    }
}

/// Run the four injected-hazard fixtures. Each plants exactly one defect
/// class; a correct sanitizer detects all four.
pub fn fixture_checks() -> Result<Vec<FixtureOutcome>, String> {
    Ok(vec![
        oob_fixture()?,
        uninit_fixture()?,
        race_fixture()?,
        invalid_launch_fixture(),
    ])
}

// ---------------------------------------------------------------------------
// Shipping sweep
// ---------------------------------------------------------------------------

fn report_case(label: String, launches: usize, report: &SanitizerReport) -> CaseResult {
    let mut hazards: Vec<String> = report.hazards.iter().map(ToString::to_string).collect();
    if report.dropped > 0 {
        hazards.push(format!(
            "{} further hazards dropped past the cap",
            report.dropped
        ));
    }
    CaseResult {
        label,
        launches,
        hazards,
        warnings: Vec::new(),
    }
}

/// One full multi-stage solve under the sanitizer, with the memory-layout
/// variant forced. Public because the `analyze` harness and the soundness
/// integration tests re-run statically-certified cases through it and
/// fail on any dynamic hazard.
pub fn solve_case<T: GpuScalar>(
    dev: &DeviceSpec,
    shape: WorkloadShape,
    variant: BaseVariant,
    precision: &str,
) -> Result<CaseResult, String> {
    let label = format!(
        "{} {} {} {:?}",
        dev.name(),
        shape.label(),
        precision,
        variant
    );
    let batch = random_dominant::<T>(shape, SANITIZE_SEED).map_err(|e| e.to_string())?;
    let params = SolverParams {
        variant,
        ..StaticTuner.params_for(shape, dev.queryable(), elem_bytes::<T>())
    };
    let mut gpu: Gpu<T> = Gpu::with_sanitizer(dev.clone());
    let mut session = SolveSession::new(&mut gpu, shape).map_err(|e| format!("{label}: {e}"))?;
    let outcome = session
        .solve(&mut gpu, &batch, &params)
        .map_err(|e| format!("{label}: {e}"))?;
    let residual = batch_worst_relative_residual(&batch, &outcome.x).map_err(|e| e.to_string())?;
    if !residual.is_finite() {
        return Err(format!("{label}: non-finite residual"));
    }
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    let mut case = report_case(label, report.launches_checked, &report);
    if let Some(v) = session.validation_for(&params) {
        case.warnings = v.warnings().map(ToString::to_string).collect();
    }
    Ok(case)
}

/// The repack/unpack transpose passes under the sanitizer.
fn repack_case<T: GpuScalar>(dev: &DeviceSpec, precision: &str) -> Result<CaseResult, String> {
    let (m, n, stride) = (4usize, 2048usize, 4usize);
    let label = format!(
        "{} repack/unpack {}x{}@{} {}",
        dev.name(),
        m,
        n,
        stride,
        precision
    );
    let shape = WorkloadShape::new(m, n);
    let batch = random_dominant::<T>(shape, SANITIZE_SEED).map_err(|e| e.to_string())?;
    let mut gpu: Gpu<T> = Gpu::with_sanitizer(dev.clone());
    let err = |e: trisolve_gpu_sim::SimError| e.to_string();
    let src = [
        gpu.alloc_from(&batch.a).map_err(err)?,
        gpu.alloc_from(&batch.b).map_err(err)?,
        gpu.alloc_from(&batch.c).map_err(err)?,
        gpu.alloc_from(&batch.d).map_err(err)?,
    ];
    let dst = [
        gpu.alloc(m * n).map_err(err)?,
        gpu.alloc(m * n).map_err(err)?,
        gpu.alloc(m * n).map_err(err)?,
        gpu.alloc(m * n).map_err(err)?,
    ];
    repack_chains(&mut gpu, src, dst, m, n, stride).map_err(|e| format!("{label}: {e}"))?;
    // Unpack the repacked right-hand side as a stand-in solution vector.
    let x_out = gpu.alloc(m * n).map_err(err)?;
    unpack_solution(&mut gpu, dst[3], x_out, m, n, stride).map_err(|e| format!("{label}: {e}"))?;
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    Ok(report_case(label, report.launches_checked, &report))
}

/// The three prior-art baseline kernels under the sanitizer. Baselines are
/// whole-system on-chip solvers, so they run at unit stride on systems small
/// enough to fit every device's block limits.
fn baseline_case<T: GpuScalar>(dev: &DeviceSpec, precision: &str) -> Result<CaseResult, String> {
    let (m, n, stride) = (8usize, 256usize, 1usize);
    let chain_len = n / stride;
    let label = format!(
        "{} baselines {}@{} {}",
        dev.name(),
        chain_len,
        stride,
        precision
    );
    let shape = WorkloadShape::new(m, n);
    let batch = random_dominant::<T>(shape, SANITIZE_SEED).map_err(|e| e.to_string())?;
    let mut gpu: Gpu<T> = Gpu::with_sanitizer(dev.clone());
    let err = |e: trisolve_gpu_sim::SimError| e.to_string();
    let src = [
        gpu.alloc_from(&batch.a).map_err(err)?,
        gpu.alloc_from(&batch.b).map_err(err)?,
        gpu.alloc_from(&batch.c).map_err(err)?,
        gpu.alloc_from(&batch.d).map_err(err)?,
    ];
    for algo in [
        BaselineAlgo::Pcr,
        BaselineAlgo::Cr,
        BaselineAlgo::CrPcr { pcr_threshold: 64 },
    ] {
        let x = gpu.alloc(m * n).map_err(err)?;
        baseline_solve(&mut gpu, src, x, m, n, chain_len, stride, algo)
            .map_err(|e| format!("{label}: {e}"))?;
    }
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    Ok(report_case(label, report.launches_checked, &report))
}

fn sweep_device<T: GpuScalar>(
    dev: &DeviceSpec,
    shapes: &[WorkloadShape],
    many_small: WorkloadShape,
    precision: &str,
    out: &mut Vec<CaseResult>,
) -> Result<(), String> {
    for &shape in shapes {
        for variant in [BaseVariant::Strided, BaseVariant::Coalesced] {
            out.push(solve_case::<T>(dev, shape, variant, precision)?);
        }
    }
    // The interleaved batched-Thomas fast path, forced on a many-small
    // batch — the only shape class whose plan admits the layout.
    out.push(solve_case::<T>(
        dev,
        many_small,
        BaseVariant::Interleaved,
        precision,
    )?);
    out.push(repack_case::<T>(dev, precision)?);
    out.push(baseline_case::<T>(dev, precision)?);
    Ok(())
}

/// Run the shipping sweep. Every returned case lists the hazards found;
/// shipping kernels are expected to produce none.
pub fn sweep(opts: &SweepOptions) -> Result<Vec<CaseResult>, String> {
    let shapes = shrunk_paper_grid(opts.shrink);
    let many_small = shrunk_many_small(opts.shrink);
    let mut out = Vec::new();
    for dev in &opts.devices {
        sweep_device::<f64>(dev, &shapes, many_small, "f64", &mut out)?;
        if opts.both_precisions {
            sweep_device::<f32>(dev, &shapes, many_small, "f32", &mut out)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrunk_grid_keeps_shape_floors() {
        let g = shrunk_paper_grid(1024);
        assert_eq!(g.len(), WorkloadShape::paper_grid().len());
        assert!(g.iter().all(|s| s.num_systems >= 1 && s.system_size >= 512));
    }

    #[test]
    fn shrunk_many_small_keeps_the_interleaved_batch_floor() {
        assert_eq!(shrunk_many_small(16), WorkloadShape::new(4096, 32));
        // Even an absurd shrink never drops below the plan builder's
        // 32-system floor for the interleaved layout.
        assert_eq!(shrunk_many_small(1 << 20), WorkloadShape::new(32, 32));
    }

    #[test]
    fn all_fixtures_detected() {
        for f in fixture_checks().unwrap() {
            assert!(f.detected, "{}: {}", f.name, f.detail);
        }
    }
}
