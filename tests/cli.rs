//! End-to-end tests of the `trisolve` CLI binary (Cargo builds it and
//! exposes its path via `CARGO_BIN_EXE_trisolve`).

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_trisolve"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn devices_lists_all_three_gpus() {
    let (ok, stdout, _) = run(&["devices"]);
    assert!(ok);
    for name in ["8800 GTX", "GTX 280", "GTX 470"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn devices_json_is_valid_json() {
    let (ok, stdout, _) = run(&["devices", "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v.as_array().unwrap().len(), 3);
}

#[test]
fn solve_reports_plan_and_residual() {
    let (ok, stdout, _) = run(&[
        "solve",
        "--systems",
        "8",
        "--size",
        "2048",
        "--tuner",
        "static",
        "--device",
        "280",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("GeForce GTX 280"));
    assert!(stdout.contains("plan"));
    assert!(stdout.contains("residual"));
}

#[test]
fn solve_json_contains_metrics() {
    let (ok, stdout, _) = run(&[
        "solve",
        "--systems",
        "4",
        "--size",
        "1024",
        "--tuner",
        "default",
        "--json",
    ]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert!(v["sim_time_ms"].as_f64().unwrap() > 0.0);
    assert!(v["worst_relative_residual"].as_f64().unwrap() < 1e-3);
    assert_eq!(v["tuner"], "default");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_required_flag_fails_cleanly() {
    let (ok, _, stderr) = run(&["solve", "--size", "1024"]);
    assert!(!ok);
    assert!(stderr.contains("--systems"));
}

#[test]
fn bad_device_fails_cleanly() {
    let (ok, _, stderr) = run(&[
        "solve",
        "--systems",
        "2",
        "--size",
        "64",
        "--device",
        "9900",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown device"));
}

#[test]
fn tune_writes_a_cache_file() {
    let dir = std::env::temp_dir().join("trisolve-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("tuning.json");
    let _ = std::fs::remove_file(&cache);
    let (ok, stdout, _) = run(&[
        "tune",
        "--systems",
        "8",
        "--size",
        "4096",
        "--device",
        "470",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    let text = std::fs::read_to_string(&cache).expect("cache written");
    assert!(text.contains("GeForce GTX 470"));
    std::fs::remove_file(&cache).unwrap();
}

#[test]
fn dnc_subcommands_run() {
    let (ok, stdout, _) = run(&["sort", "--len", "16384", "--device", "8800"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sorted 16384 keys"));

    let (ok, stdout, _) = run(&["fft", "--len", "4096"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("FFT of 4096 points"));

    let (ok, stdout, _) = run(&["quicksort", "--len", "30000"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("quicksorted 30000 keys"));
}
