//! Calibration shape tests: pin the qualitative findings of the paper's
//! evaluation section so model changes that break them fail CI.
//!
//! Absolute simulated milliseconds are calibration artefacts; what these
//! tests assert is *who wins, by roughly what factor, and where the
//! crossovers fall* — the reproduction contract of EXPERIMENTS.md. Sizes
//! are scaled down where that does not change the finding.

use trisolve_bench::experiments;
use trisolve_gpu_sim::{CpuSpec, DeviceSpec};
use trisolve_tridiag::workloads::WorkloadShape;

fn best_of<T, F: Fn(&T) -> f64>(points: &[T], key: F) -> &T {
    points
        .iter()
        .max_by(|a, b| key(a).total_cmp(&key(b)))
        .expect("non-empty sweep")
}

// ---------------------------------------------------------------------------
// Figure 6: stage-3 -> stage-4 switch points
// ---------------------------------------------------------------------------

#[test]
fn fig6_thomas_switch_optima_match_paper() {
    // Paper §V: "for the GeForce 280 and 470, the best switch point is 128
    // subsystems, while for the GeForce 8800, the best switch point is 64".
    let expect = [
        (DeviceSpec::geforce_8800_gtx(), 64usize),
        (DeviceSpec::gtx_280(), 128),
        (DeviceSpec::gtx_470(), 128),
    ];
    for (device, best_t4) in expect {
        let pts = experiments::fig6_sweep(&device, 8);
        let best = best_of(&pts, |p| p.relative);
        assert_eq!(
            best.thomas_switch,
            best_t4,
            "{}: expected T4 {}, got {}",
            device.name(),
            best_t4,
            best.thomas_switch
        );
    }
}

#[test]
fn fig6_static_guess_is_suboptimal_on_newer_devices() {
    // "Because our static tuner will always choose 64 subsystems as the
    // switch point, this result means dynamic tuning will improve the
    // performance further."
    for device in [DeviceSpec::gtx_280(), DeviceSpec::gtx_470()] {
        let pts = experiments::fig6_sweep(&device, 8);
        let at_64 = pts.iter().find(|p| p.thomas_switch == 64).unwrap();
        let at_128 = pts.iter().find(|p| p.thomas_switch == 128).unwrap();
        assert!(
            at_128.relative > at_64.relative,
            "{}: 128 must beat the static guess of 64",
            device.name()
        );
    }
}

#[test]
fn fig6_extremes_lose_clearly() {
    // Both switching far too early (too little work saved) and far too late
    // (too little parallelism) must cost real performance.
    for device in DeviceSpec::paper_devices() {
        let pts = experiments::fig6_sweep(&device, 8);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(first.relative < 0.97, "{}: T4=16 too good", device.name());
        assert!(last.relative < 0.97, "{}: max T4 too good", device.name());
    }
}

// ---------------------------------------------------------------------------
// Figure 5: stage-2 -> stage-3 switch points
// ---------------------------------------------------------------------------

#[test]
fn fig5_onchip_size_optima_match_paper() {
    // Paper §V: 8800 prefers 256 ("instead of 128"); the 470 prefers
    // splitting one step further, 512 over 1024.
    let pts = experiments::fig5_sweep(&DeviceSpec::geforce_8800_gtx(), 128, 1024);
    assert_eq!(best_of(&pts, |p| p.relative).onchip_size, 256);

    let pts = experiments::fig5_sweep(&DeviceSpec::gtx_470(), 128, 1024);
    let best = best_of(&pts, |p| p.relative);
    assert_eq!(best.onchip_size, 512, "470 must prefer 512 over 1024");
    let at_1024 = pts.iter().find(|p| p.onchip_size == 1024).unwrap();
    assert!(
        at_1024.relative > 0.6,
        "1024 should be competitive, just not best (got {:.3})",
        at_1024.relative
    );
}

#[test]
fn fig5_280_sizes_256_and_512_are_close() {
    // Paper §V: "For the GeForce 280, switching at system sizes 256 and 512
    // have comparable performance."
    let pts = experiments::fig5_sweep(&DeviceSpec::gtx_280(), 128, 1024);
    let at_256 = pts.iter().find(|p| p.onchip_size == 256).unwrap();
    let at_512 = pts.iter().find(|p| p.onchip_size == 512).unwrap();
    let ratio = at_256.time_ms / at_512.time_ms;
    assert!(
        (0.7..1.45).contains(&ratio),
        "256 vs 512 should be comparable on the 280, ratio {ratio:.2}"
    );
}

// ---------------------------------------------------------------------------
// Figure 7: tuning strategy comparison (scaled grid)
// ---------------------------------------------------------------------------

#[test]
fn fig7_dynamic_never_loses_static_usually_wins() {
    let grid = experiments::paper_grid(4);
    let mut cells = Vec::new();
    for device in DeviceSpec::paper_devices() {
        cells.extend(experiments::fig7_device(&device, &grid));
    }
    for c in &cells {
        assert!(
            c.dynamic_ms <= c.untuned_ms * 1.001,
            "{} {}: dynamic ({:.3}) worse than untuned ({:.3})",
            c.device,
            c.shape.label(),
            c.dynamic_ms,
            c.untuned_ms
        );
        assert!(
            c.dynamic_ms <= c.static_ms * 1.001,
            "{} {}: dynamic worse than static",
            c.device,
            c.shape.label()
        );
    }
    let s = experiments::fig7_summary(&cells);
    // Headline bands (paper: 17% static, 32% dynamic): allow generous slack,
    // but the ordering and the rough magnitudes must hold.
    assert!(
        (0.05..0.45).contains(&s.static_mean_improvement),
        "static mean improvement {:.2} out of band",
        s.static_mean_improvement
    );
    assert!(
        (0.15..0.60).contains(&s.dynamic_mean_improvement),
        "dynamic mean improvement {:.2} out of band",
        s.dynamic_mean_improvement
    );
    assert!(
        s.dynamic_mean_improvement > s.static_mean_improvement,
        "dynamic must beat static on average"
    );
    assert!(
        s.dynamic_max_speedup > 1.5,
        "largest dynamic speedup {:.2} too small",
        s.dynamic_max_speedup
    );
}

#[test]
fn fig7_default_parameters_are_8800_baseline() {
    // "the default parameters are designed for a baseline
    // (least-common-denominator) architecture (in this case the 8800 GTX)":
    // on the 8800, static tuning finds (almost) nothing to improve on the
    // batch workloads.
    let grid = [WorkloadShape::new(256, 1024)];
    let cells = experiments::fig7_device(&DeviceSpec::geforce_8800_gtx(), &grid);
    let c = &cells[0];
    assert!(
        (c.static_ms / c.untuned_ms - 1.0).abs() < 0.1,
        "8800 static ({:.3}) should be ~= untuned ({:.3})",
        c.static_ms,
        c.untuned_ms
    );
}

// ---------------------------------------------------------------------------
// Figure 8: GPU vs CPU (scaled grid)
// ---------------------------------------------------------------------------

#[test]
fn fig8_gpu_wins_parallel_workloads() {
    let grid = experiments::paper_grid(4); // 256x512 ... (parallel rows)
    let rows = experiments::fig8_comparison(&grid[..3]);
    for r in &rows {
        assert!(
            r.speedup > 3.0,
            "{}: GPU should win clearly, speedup {:.2}",
            r.shape.label(),
            r.speedup
        );
        assert_eq!(r.cpu_threads, 2, "batches use both CPU cores");
    }
}

#[test]
fn fig8_cpu_wins_the_single_2m_system() {
    // The crossover needs the full workload: a 2M-equation system is
    // PCR-splitting-dominated on the GPU ("the speedups ... deteriorate",
    // §VI-B) while the sequential CPU solver stays work-optimal.
    let rows = experiments::fig8_comparison(&[WorkloadShape::new(1, 2 * 1024 * 1024)]);
    let r = &rows[0];
    assert!(
        r.speedup < 1.0,
        "1x2M: CPU must win (paper 0.7X), got {:.2}X",
        r.speedup
    );
    assert!(
        r.speedup > 0.4,
        "1x2M: GPU should not collapse either (paper 0.7X), got {:.2}X",
        r.speedup
    );
    assert_eq!(r.cpu_threads, 1, "single system uses a single CPU thread");
}

#[test]
fn fig8_cpu_model_reproduces_mkl_milliseconds() {
    // The CPU model is calibrated to Figure 8's MKL column.
    let cpu = CpuSpec::core_i5_dual_3_4ghz();
    for (m, n, paper_ms) in [
        (1024usize, 1024usize, 10.70f64),
        (2048, 2048, 37.9),
        (4096, 4096, 168.3),
        (1, 2 * 1024 * 1024, 34.0),
    ] {
        let (t, _) = cpu.time_batch_lu_auto(m, n);
        let ratio = t * 1e3 / paper_ms;
        assert!(
            (0.75..1.3).contains(&ratio),
            "{m}x{n}: model/paper ratio {ratio:.2}"
        );
    }
}
