//! Integration tests for the static analyzer harness: the planted-defect
//! fixtures must all be refuted, the full Figure 5–8 matrix must certify
//! on every device in both precisions, statically-certified plans must
//! run dynamically sanitizer-clean (soundness), and the tuner's pruning
//! predicate must agree bit-for-bit with the execution engine's verdict.

use proptest::prelude::*;
use trisolve::analysis::{analyze_params, statically_rejected};
use trisolve::analyze;
use trisolve::prelude::*;
use trisolve::sanitize;
use trisolve::solver::kernels::elem_bytes;
use trisolve_autotune::Microbench;

#[test]
fn planted_defect_fixtures_all_refuted() {
    let fixtures = analyze::fixture_checks();
    assert_eq!(fixtures.len(), 5);
    for f in &fixtures {
        assert!(f.refuted, "{} not refuted: {}", f.name, f.detail);
        assert!(!f.detail.is_empty());
    }
}

#[test]
fn full_matrix_certifies_on_every_device_in_both_precisions() {
    let cases = analyze::sweep(&analyze::AnalyzeOptions::full());
    // Per device and precision: every grid shape (paper + many-small) x
    // its admissible layout variants (the interleaved family joins at
    // the 32-system batch floor), plus the repack and baseline kernel
    // sets.
    let mut shapes = WorkloadShape::paper_grid();
    shapes.extend(WorkloadShape::many_small_grid());
    let per = 2 + shapes
        .iter()
        .map(|s| {
            if s.num_systems >= trisolve::solver::params::INTERLEAVED_MIN_SYSTEMS {
                3
            } else {
                2
            }
        })
        .sum::<usize>();
    assert_eq!(cases.len(), 3 * 2 * per);
    assert!(
        cases
            .iter()
            .any(|c| c.label.contains("64Kx32") && c.label.contains("Interleaved")),
        "no many-small interleaved case in the sweep"
    );
    for c in &cases {
        assert!(c.certified, "{}: {}", c.label, c.failures.join("; "));
        assert!(c.obligations > 0, "{}: nothing proven", c.label);
    }
}

#[test]
fn cross_validation_finds_no_soundness_gap() {
    let checks = analyze::cross_validate(&analyze::AnalyzeOptions::quick()).unwrap();
    assert!(!checks.is_empty());
    for c in &checks {
        assert!(c.certified, "{}: sample did not certify", c.label);
        assert!(c.is_sound(), "{}: {}", c.label, c.hazards.join("; "));
    }
}

fn devices() -> Vec<DeviceSpec> {
    DeviceSpec::paper_devices()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness: any plan the analyzer certifies on the (shrunk) paper
    /// grid runs under the dynamic sanitizer without a single hazard.
    #[test]
    fn certified_plans_run_sanitizer_clean(
        dev_idx in 0usize..3,
        shape_idx in 0usize..4,
        strided in any::<bool>(),
    ) {
        let dev = &devices()[dev_idx];
        let shapes = sanitize::shrunk_paper_grid(16);
        let shape = shapes[shape_idx % shapes.len()];
        let variant = if strided { BaseVariant::Strided } else { BaseVariant::Coalesced };
        let params = SolverParams {
            variant,
            ..StaticTuner.params_for(shape, dev.queryable(), 8)
        };
        let report = analyze_params(shape, &params, dev.queryable(), 8).unwrap();
        prop_assert!(report.certified(), "{}", report.failures().join("; "));
        let case = sanitize::solve_case::<f64>(dev, shape, variant, "f64").unwrap();
        prop_assert!(case.is_clean(), "{}: {}", case.label, case.hazards.join("; "));
    }

    /// Bit-identical pruning: the candidates the microbenchmark prunes
    /// are exactly those `statically_rejected` flags, and exactly those
    /// priced `+inf` — never a candidate the engine would have run.
    #[test]
    fn pruning_is_exactly_the_engine_rejection_set(
        dev_idx in 0usize..3,
        onchip_log2 in 5u32..13,
        thomas_log2 in 2u32..7,
    ) {
        let dev = &devices()[dev_idx];
        let shape = WorkloadShape::new(16, 2048);
        let params = SolverParams {
            onchip_size: 1 << onchip_log2,
            thomas_switch: 1 << thomas_log2,
            ..SolverParams::default_untuned()
        };
        let rejected =
            statically_rejected(shape, &params, dev.queryable(), elem_bytes::<f32>());
        let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
        let mut bench: Microbench<f32> = Microbench::new();
        let cost = bench.measure(&mut gpu, shape, &params);
        prop_assert_eq!(bench.pruned_candidates == 1, rejected.is_some());
        prop_assert!(
            cost.is_infinite() == rejected.is_some(),
            "cost {} vs static verdict {:?}", cost, rejected
        );
        prop_assert_eq!(bench.measurements, 1);
    }
}
