//! Integration tests for the fault-injection harness and the resilient
//! solve pipeline: the forced-fault fixtures must all pass, a disabled
//! fault plan must not change results or simulated timings by a single bit,
//! injection must be deterministic per seed, recovery must surface in the
//! trace/metrics rollup, and — property-tested — any solve the resilience
//! layer accepts must agree with the pivoted-LU CPU reference.

use proptest::prelude::*;
use trisolve::chaos;
use trisolve::prelude::*;
use trisolve::tridiag::cpu_batch::{solve_batch_sequential, BatchAlgorithm};
use trisolve::tridiag::workloads::{ill_conditioned, non_dominant};

fn resilient_f64(
    plan: FaultPlan,
    shape: WorkloadShape,
    batch: &SystemBatch<f64>,
    params: &SolverParams,
    policy: &ResiliencePolicy,
) -> (
    Gpu<f64>,
    Result<ResilientOutcome<f64>, trisolve::solver::CoreError>,
) {
    let mut gpu: Gpu<f64> = Gpu::with_faults(DeviceSpec::gtx_470(), plan);
    let mut session = SolveSession::new(&mut gpu, shape).unwrap();
    let r = session.solve_resilient(&mut gpu, batch, params, policy);
    (gpu, r)
}

#[test]
fn forced_fault_fixtures_all_pass() {
    let fixtures = chaos::fixture_checks().unwrap();
    assert_eq!(fixtures.len(), 4);
    for f in &fixtures {
        assert!(f.passed, "{} failed: {}", f.name, f.detail);
        assert!(!f.detail.is_empty());
    }
}

/// The acceptance bit-identity criterion: with faults disabled, the
/// resilient pipeline is exactly the plain solve — same solution bits,
/// same simulated time bits, same device clock.
#[test]
fn disabled_fault_plan_is_bit_identical_to_plain_solve() {
    let shape = WorkloadShape::new(16, 2048);
    let batch = random_dominant::<f64>(shape, 2011).unwrap();
    let params = StaticTuner.params_for(shape, DeviceSpec::gtx_470().queryable(), 8);
    let policy = ResiliencePolicy::for_elem_bytes(8);

    let (gpu, r) = resilient_f64(FaultPlan::disabled(), shape, &batch, &params, &policy);
    let r = r.unwrap();
    assert!(r.first_try());

    let mut plain_gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
    let mut session = SolveSession::new(&mut plain_gpu, shape).unwrap();
    let plain = session.solve(&mut plain_gpu, &batch, &params).unwrap();

    assert_eq!(plain.x, r.outcome.x);
    assert_eq!(plain.sim_time_s.to_bits(), r.outcome.sim_time_s.to_bits());
    assert_eq!(plain_gpu.elapsed_s().to_bits(), gpu.elapsed_s().to_bits());
    assert!(gpu.fault_log().is_none(), "no injector may be attached");
}

/// Persistent faults leave only the CPU LU reference standing — and its
/// solution is bit-identical to calling the host LU driver directly.
#[test]
fn cpu_fallback_matches_host_lu_bit_for_bit() {
    let shape = WorkloadShape::new(4, 512);
    let batch = random_dominant::<f64>(shape, 7).unwrap();
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let plan = FaultPlan::seeded(13).with_launch_failures(1.0);

    let (_, r) = resilient_f64(plan, shape, &batch, &params, &policy);
    let r = r.unwrap();
    assert_eq!(r.recovered_by, "cpu-reference");
    let lu = solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap();
    assert_eq!(r.outcome.x, lu, "CPU fallback must be the LU reference");
}

/// Same seed, same fault sites, same recovery, same bits — the campaign's
/// reproducibility promise.
#[test]
fn fault_campaigns_are_deterministic_per_seed() {
    let shape = WorkloadShape::new(8, 1024);
    let batch = random_dominant::<f64>(shape, 5).unwrap();
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let plan = || {
        FaultPlan::seeded(21)
            .with_launch_failures(0.2)
            .with_bit_flips(0.1)
            .with_max_faults(4)
    };

    let (gpu1, r1) = resilient_f64(plan(), shape, &batch, &params, &policy);
    let (gpu2, r2) = resilient_f64(plan(), shape, &batch, &params, &policy);
    let (r1, r2) = (r1.unwrap(), r2.unwrap());
    assert_eq!(r1.outcome.x, r2.outcome.x);
    assert_eq!(r1.retries, r2.retries);
    assert_eq!(r1.attempts, r2.attempts);
    assert_eq!(gpu1.elapsed_s().to_bits(), gpu2.elapsed_s().to_bits());
    assert_eq!(
        gpu1.fault_log().map(trisolve::gpu::FaultLog::injected),
        gpu2.fault_log().map(trisolve::gpu::FaultLog::injected)
    );

    // A different seed takes a different path (different fault sites).
    let other = FaultPlan::seeded(22)
        .with_launch_failures(0.2)
        .with_bit_flips(0.1)
        .with_max_faults(4);
    let (gpu3, r3) = resilient_f64(other, shape, &batch, &params, &policy);
    let r3 = r3.unwrap();
    assert!(
        gpu3.elapsed_s().to_bits() != gpu1.elapsed_s().to_bits()
            || gpu3.fault_log().map(|l| l.records.len())
                != gpu1.fault_log().map(|l| l.records.len())
            || r3.attempts != r1.attempts,
        "different seeds should not replay the identical campaign"
    );
}

/// Recovery is observable end-to-end: fault/retry/residual instants land
/// in the trace and roll up into the metrics report.
#[test]
fn recovery_rolls_up_into_the_metrics_report() {
    let shape = WorkloadShape::new(4, 512);
    let batch = random_dominant::<f64>(shape, 42).unwrap();
    let params = SolverParams::default_untuned();
    let policy = ResiliencePolicy::for_elem_bytes(8);
    let plan = FaultPlan::seeded(7)
        .with_launch_failures(1.0)
        .with_max_faults(2);

    let mut gpu: Gpu<f64> = Gpu::with_faults(DeviceSpec::gtx_470(), plan);
    let tracer = Tracer::enabled();
    gpu.set_tracer(tracer.clone());
    let mut session = SolveSession::new(&mut gpu, shape).unwrap();
    let r = session
        .solve_resilient(&mut gpu, &batch, &params, &policy)
        .unwrap();
    assert_eq!(r.retries, 2);

    let events = tracer.events();
    let counters = tracer.counters();
    let report = MetricsReport::from_trace(&events, &counters);
    assert_eq!(report.faults, 2);
    assert_eq!(report.retries, 2);
    assert_eq!(report.residual_checks, 1);
    assert!(report.render(4).contains("resilience: 2 faults injected"));
    // Counters agree with the instants.
    assert!(counters.contains(&("faults_injected", 2)));
    assert!(counters.contains(&("retries", 2)));
}

/// The quick campaign (the CI smoke) must fully recover.
#[test]
fn quick_campaign_recovers_every_case() {
    let cases = chaos::campaign(&chaos::ChaosOptions::quick()).unwrap();
    assert!(!cases.is_empty());
    for c in &cases {
        assert!(
            c.recovered,
            "{}: {}",
            c.label,
            c.error.as_deref().unwrap_or("?")
        );
        assert!(c.residual.is_finite());
        assert!(c.attempts >= 1);
    }
    // The seeded mix actually injects faults somewhere in the sweep.
    assert!(cases.iter().map(|c| c.faults_injected).sum::<usize>() > 0);
}

/// Strategy: a workload from any of the campaign's three classes.
fn stress_batch() -> impl Strategy<Value = SystemBatch<f64>> {
    (1usize..5, 8usize..160, any::<u64>(), 0usize..3).prop_map(|(m, n, seed, class)| {
        let shape = WorkloadShape::new(m, n);
        match class {
            0 => random_dominant::<f64>(shape, seed).unwrap(),
            1 => ill_conditioned::<f64>(shape, seed, 1e-3).unwrap(),
            _ => non_dominant::<f64>(shape, seed, 0.85).unwrap(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the injector does, an accepted resilient solve agrees with
    /// the pivoted-LU reference: bit-for-bit when the CPU step won,
    /// residual-verified within tolerance otherwise.
    #[test]
    fn recovered_solves_agree_with_the_lu_reference(
        batch in stress_batch(),
        fault_seed in any::<u64>(),
    ) {
        let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
        let params = SolverParams::default_untuned();
        let policy = ResiliencePolicy::for_elem_bytes(8).with_residual_tolerance(1e-6);
        let plan = FaultPlan::seeded(fault_seed)
            .with_launch_failures(0.3)
            .with_bit_flips(0.2)
            .with_transfer_corruption(0.1)
            .with_max_faults(6);
        let (_, r) = resilient_f64(plan, shape, &batch, &params, &policy);
        let r = r.unwrap();
        prop_assert!(r.residual <= 1e-6, "accepted residual {:.3e}", r.residual);
        if r.recovered_by == "cpu-reference" {
            let lu = solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap();
            prop_assert_eq!(&r.outcome.x, &lu);
        } else {
            // The GPU solution passed the same residual bar the LU
            // reference clears — silent corruption cannot have survived.
            let res = batch_worst_relative_residual(&batch, &r.outcome.x).unwrap();
            prop_assert!(res <= 1e-6, "residual {res:.3e}");
        }
    }
}
