//! Integration tests for the observability layer: a traced solve must
//! cover every pipeline stage with spans, the Chrome export must be valid
//! loadable JSON, the tuner must leave telemetry for every searched axis,
//! sanitizer hazards must land in the trace — and tracing must be a
//! strict no-op, changing neither results nor simulated timings by a bit.

use proptest::prelude::*;
use trisolve::gpu::{LaunchConfig, OutMode};
use trisolve::obs::Phase;
use trisolve::prelude::*;

/// A full-pipeline workload: 4 systems of 8192 equations with a stage-1
/// target of 16 runs stage 1 (2 doublings), stage 2 and the base kernel.
fn full_pipeline() -> (WorkloadShape, SolverParams, SystemBatch<f32>) {
    let shape = WorkloadShape::new(4, 8192);
    let params = SolverParams {
        stage1_target_systems: 16,
        onchip_size: 512,
        thomas_switch: 64,
        variant: BaseVariant::Strided,
    };
    let batch = random_dominant::<f32>(shape, 2011).unwrap();
    (shape, params, batch)
}

fn traced_solve(
    shape: WorkloadShape,
    params: &SolverParams,
    batch: &SystemBatch<f32>,
) -> (SolveOutcome<f32>, Vec<TraceEvent>, Vec<(&'static str, u64)>) {
    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    gpu.set_tracer(Tracer::enabled());
    let mut session = SolveSession::new(&mut gpu, shape).unwrap();
    let outcome = session.solve(&mut gpu, batch, params).unwrap();
    drop(session);
    let tracer = gpu.tracer().clone();
    (outcome, tracer.events(), tracer.counters())
}

/// The acceptance criterion: spans for all four pipeline stages, one gpu
/// span per launch carrying byte counters, and a Chrome export that
/// parses as JSON with a non-empty `traceEvents` array.
#[test]
fn traced_solve_covers_every_stage_and_chrome_export_validates() {
    let (shape, params, batch) = full_pipeline();
    let (outcome, events, counters) = traced_solve(shape, &params, &batch);

    // Engine spans: the solve itself plus each stage it planned.
    let engine: Vec<&str> = events
        .iter()
        .filter(|e| e.cat == "engine")
        .map(|e| e.name.as_str())
        .collect();
    for want in ["session", "solve", "stage1", "stage2", "base"] {
        assert!(engine.contains(&want), "missing engine span `{want}`");
    }

    // One gpu span per kernel launch, each with its byte counters.
    let gpu_spans: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.cat == "gpu" && e.phase == Phase::Span)
        .collect();
    assert_eq!(gpu_spans.len(), outcome.kernel_stats.len());
    for (span, stats) in gpu_spans.iter().zip(&outcome.kernel_stats) {
        assert_eq!(span.name, stats.label);
        assert_eq!(
            span.arg_f64("gmem_payload_bytes"),
            Some(stats.totals.gmem_payload_bytes()),
            "{}",
            stats.label
        );
        assert!(span.arg_u64("gmem_read_bytes").is_some());
        assert!(span.arg_u64("gmem_write_bytes").is_some());
        assert!(span.arg_u64("barriers").is_some());
        assert_eq!(
            span.dur_us.to_bits(),
            (stats.total_time_s() * 1e6).to_bits()
        );
    }

    // Spans are on the monotonic simulated clock, in record order.
    for w in gpu_spans.windows(2) {
        assert!(w[1].ts_us >= w[0].ts_us + w[0].dur_us - 1e-9);
    }

    // Host<->device transfers were traced and metered.
    assert!(events.iter().any(|e| e.cat == "gpu" && e.name == "h2d"));
    assert!(events.iter().any(|e| e.cat == "gpu" && e.name == "d2h"));
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("h2d_bytes") > 0);
    assert!(counter("d2h_bytes") > 0);
    assert_eq!(counter("launches"), outcome.kernel_stats.len() as u64);

    // The Chrome export is valid JSON with a non-empty traceEvents array
    // containing complete spans; the JSONL export has one line per event.
    let chrome = chrome_trace(&events, &counters);
    let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("chrome trace parses");
    let rows = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(rows.len() > events.len(), "metadata + events expected");
    assert!(rows.iter().any(|r| r["ph"] == "X"));
    assert!(rows.iter().any(|r| r["ph"] == "M"));
    assert_eq!(jsonl(&events).lines().count(), events.len());

    // The metrics rollup agrees with the outcome's own accounting.
    let report = MetricsReport::from_trace(&events, &counters);
    assert_eq!(
        report.kernels.iter().map(|k| k.launches).sum::<u64>(),
        outcome.kernel_stats.len() as u64
    );
    assert!((report.gpu_total_ms - outcome.sim_time_ms()).abs() < 1e-9);

    // And the trace-derived stage timeline matches the outcome-derived one
    // entry for entry (also asserted bit-exactly in trisolve-core's tests).
    assert_eq!(
        StageTimeline::from_trace(&events).stages,
        StageTimeline::from_outcome(&outcome).stages
    );
}

/// Dynamic tuning on a traced gpu leaves at least one probe per searched
/// axis, eval events with parameters and costs, and a final summary.
#[test]
fn tuner_search_emits_telemetry_for_every_searched_axis() {
    let shape = WorkloadShape::new(4, 8192);
    let dev = DeviceSpec::gtx_470();
    let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
    gpu.set_tracer(Tracer::enabled());
    let mut tuner = DynamicTuner::new();
    let cfg = tuner.tune_for(&mut gpu, shape);
    let events = gpu.tracer().events();
    let counters = gpu.tracer().counters();

    let probes_on = |axis: &str| {
        events
            .iter()
            .filter(|e| e.cat == "tuner" && e.name == "probe" && e.arg_str("axis") == Some(axis))
            .count()
    };
    assert!(probes_on("onchip_size") >= 1);
    assert!(probes_on("thomas_switch") >= 1);
    // Stage-1 target is only searched when the workload runs stage 1.
    let static_guess = StaticTuner.params_for(shape, dev.queryable(), 4);
    if shape.num_systems < static_guess.stage1_target_systems {
        assert!(probes_on("stage1_target") >= 1);
    }

    // Every micro-benchmark evaluation left a typed event with its
    // parameters, cost and runnability, and the counter agrees with the
    // tuner's own bookkeeping.
    let evals: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.cat == "tuner" && e.name == "eval")
        .collect();
    assert_eq!(evals.len(), cfg.evaluations);
    for ev in &evals {
        assert!(ev.arg_u64("onchip_size").is_some());
        assert!(ev.arg_u64("thomas_switch").is_some());
        assert!(ev.arg_str("variant").is_some());
        assert!(ev.arg_f64("cost_s").is_some());
        assert!(ev.arg_bool("runnable").is_some());
    }
    assert_eq!(
        counters
            .iter()
            .find(|(k, _)| *k == "tuner_evals")
            .map(|(_, v)| *v),
        Some(cfg.evaluations as u64)
    );

    // Each axis search converged with a selection, and the run closed
    // with a summary of the winning configuration.
    assert!(events
        .iter()
        .any(|e| e.cat == "tuner" && e.name == "select"));
    let tuned = events
        .iter()
        .find(|e| e.cat == "tuner" && e.name == "tuned")
        .expect("final tuned event");
    assert_eq!(tuned.arg_u64("onchip_size"), Some(cfg.onchip_size as u64));
    assert_eq!(tuned.arg_u64("evaluations"), Some(cfg.evaluations as u64));
}

/// Satellite 3: a planted out-of-bounds access on a sanitized *and*
/// traced gpu must surface in the trace as a `"sanitizer"/"hazard"`
/// event naming the kernel and the offending site.
#[test]
fn injected_oob_hazard_appears_in_trace() {
    let mut gpu: Gpu<f32> = Gpu::with_sanitizer(DeviceSpec::gtx_470());
    gpu.set_tracer(Tracer::enabled());
    let input = gpu.alloc_from(&[1.0; 32]).unwrap();
    let out = gpu.alloc(32).unwrap();
    gpu.launch(
        &LaunchConfig::new("fixture[oob]", 1, 32),
        &[input],
        &[(out, OutMode::Scattered)],
        |_ctx, io| {
            // Planted defect: the input has 32 elements, index 99 is OOB.
            let _ = io.load(0, 99, 3, "trace_test::oob_load");
        },
    )
    .unwrap();
    let report = gpu.take_sanitizer_report().expect("sanitizer is on");
    assert!(!report.is_clean(), "fixture must plant a hazard");

    let events = gpu.tracer().events();
    let hazard = events
        .iter()
        .find(|e| e.cat == "sanitizer" && e.name == "hazard")
        .expect("hazard event in trace");
    assert_eq!(hazard.arg_str("kernel"), Some("fixture[oob]"));
    assert_eq!(hazard.arg_str("site"), Some("trace_test::oob_load"));
    assert!(hazard.arg_str("kind").is_some());
    assert!(gpu
        .tracer()
        .counters()
        .iter()
        .any(|&(k, v)| k == "hazards" && v >= 1));

    // The hazard also rides along in the Chrome export as an instant.
    let chrome = chrome_trace(&events, &gpu.tracer().counters());
    let parsed: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    assert!(parsed["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .any(|r| r["name"] == "hazard" && r["ph"] == "i"));
}

/// The no-op contract on the full pipeline: results and simulated
/// timings are bit-identical with tracing on or off.
#[test]
fn tracing_on_off_solves_are_bit_identical() {
    let (shape, params, batch) = full_pipeline();

    let mut plain: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    let mut session = SolveSession::new(&mut plain, shape).unwrap();
    let off = session.solve(&mut plain, &batch, &params).unwrap();
    drop(session);
    assert_eq!(plain.tracer().event_count(), 0, "disabled sink stays empty");

    let (on, events, _) = traced_solve(shape, &params, &batch);
    assert!(!events.is_empty());
    assert_eq!(off.x, on.x);
    assert_eq!(off.sim_time_s.to_bits(), on.sim_time_s.to_bits());
    assert_eq!(off.kernel_stats.len(), on.kernel_stats.len());
    for (a, b) in off.kernel_stats.iter().zip(&on.kernel_stats) {
        assert_eq!(
            a.total_time_s().to_bits(),
            b.total_time_s().to_bits(),
            "{}",
            a.label
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 4a: tracing is deterministic — two traced runs of the
    /// same workload produce identical event sequences (same order, same
    /// timestamps to the bit, same arguments).
    #[test]
    fn two_traced_runs_emit_identical_event_sequences(
        m in 1usize..6,
        n in 1usize..400,
        seed in any::<u64>(),
    ) {
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f32>(shape, seed).unwrap();
        let params = SolverParams::default_untuned();
        let run = || traced_solve(shape, &params, &batch);
        let (out1, ev1, c1) = run();
        let (out2, ev2, c2) = run();
        prop_assert_eq!(out1.x, out2.x);
        prop_assert_eq!(ev1, ev2);
        prop_assert_eq!(c1, c2);
    }

    /// Satellite 4b: a disabled sink records zero events and leaves zero
    /// timing delta against a traced run of the same workload.
    #[test]
    fn disabled_sink_is_a_strict_noop(
        m in 1usize..6,
        n in 1usize..400,
        seed in any::<u64>(),
    ) {
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f32>(shape, seed).unwrap();
        let params = SolverParams::default_untuned();

        let mut plain: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let off = solve_batch_on_gpu(&mut plain, &batch, &params).unwrap();
        prop_assert_eq!(plain.tracer().event_count(), 0);
        prop_assert!(plain.tracer().events().is_empty());
        prop_assert!(plain.tracer().counters().is_empty());

        let (on, events, _) = traced_solve(shape, &params, &batch);
        prop_assert!(!events.is_empty());
        prop_assert_eq!(off.x, on.x);
        prop_assert_eq!(off.sim_time_s.to_bits(), on.sim_time_s.to_bits());
    }
}
