//! Cross-crate integration tests: the full generate → tune → solve → verify
//! pipeline, on every paper device, in both precisions, across the workload
//! regimes the Figure 1 workflow distinguishes.

use trisolve::prelude::*;
use trisolve::solver::reference;

fn solve_and_verify<TN: FnOnce(&mut Gpu<f32>) -> SolverParams>(
    device: DeviceSpec,
    shape: WorkloadShape,
    pick_params: TN,
    tolerance: f64,
) -> SolveOutcome<f32> {
    let batch = random_dominant::<f32>(shape, 4242).unwrap();
    let mut gpu: Gpu<f32> = Gpu::new(device);
    let params = pick_params(&mut gpu);
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
    let residual = batch_worst_relative_residual(&batch, &outcome.x).unwrap();
    assert!(
        residual < tolerance,
        "residual {residual:.3e} too large for {} on {}",
        shape.label(),
        gpu.spec().name()
    );
    outcome
}

#[test]
fn every_device_solves_every_workload_regime_untuned() {
    // Small on-chip systems, many big systems (stage 2), few huge systems
    // (stage 1 + 2) — per device, with safe defaults.
    for device in DeviceSpec::paper_devices() {
        for shape in [
            WorkloadShape::new(200, 128),
            WorkloadShape::new(24, 4096),
            WorkloadShape::new(2, 1 << 16),
        ] {
            solve_and_verify(
                device.clone(),
                shape,
                |_| SolverParams::default_untuned(),
                2e-4,
            );
        }
    }
}

#[test]
fn every_device_solves_statically_tuned() {
    for device in DeviceSpec::paper_devices() {
        for shape in [WorkloadShape::new(64, 2048), WorkloadShape::new(1, 1 << 15)] {
            solve_and_verify(
                device.clone(),
                shape,
                |gpu| StaticTuner.params_for(shape, gpu.spec().queryable(), 4),
                2e-4,
            );
        }
    }
}

#[test]
fn dynamic_tuning_end_to_end_never_loses_to_default() {
    for device in DeviceSpec::paper_devices() {
        let shape = WorkloadShape::new(8, 1 << 14);
        let batch = random_dominant::<f32>(shape, 99).unwrap();

        let mut gpu: Gpu<f32> = Gpu::new(device.clone());
        let mut tuner = DynamicTuner::new();
        tuner.tune_for(&mut gpu, shape);
        let tuned = tuner.params_for(shape, gpu.spec().queryable(), 4);

        let t_tuned = {
            let mut g: Gpu<f32> = Gpu::new(device.clone());
            solve_batch_on_gpu(&mut g, &batch, &tuned)
                .unwrap()
                .sim_time_s
        };
        let t_default = {
            let mut g: Gpu<f32> = Gpu::new(device.clone());
            solve_batch_on_gpu(&mut g, &batch, &SolverParams::default_untuned())
                .unwrap()
                .sim_time_s
        };
        assert!(
            t_tuned <= t_default * 1.001,
            "{}: tuned {t_tuned:.6} > default {t_default:.6}",
            device.name()
        );
    }
}

#[test]
fn f64_pipeline_matches_lu_closely() {
    let shape = WorkloadShape::new(12, 4096);
    let batch = random_dominant::<f64>(shape, 5).unwrap();
    let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
    let params = StaticTuner.params_for(shape, gpu.spec().queryable(), 8);
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
    let diff = reference::compare_with_lu(&batch, &outcome).unwrap();
    assert!(diff < 1e-9, "f64 GPU vs LU deviation {diff:.3e}");
}

#[test]
fn gpu_solve_equals_cpu_replay_of_the_same_plan() {
    let shape = WorkloadShape::new(4, 8192);
    let batch = random_dominant::<f64>(shape, 321).unwrap();
    let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
    let params = SolverParams::default_untuned();
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
    let replay = reference::replay_plan_on_cpu(&batch, &outcome.plan).unwrap();
    for (i, (u, v)) in outcome.x.iter().zip(&replay).enumerate() {
        assert!(
            (u - v).abs() <= 1e-12 * (1.0 + v.abs()),
            "divergence at {i}: {u} vs {v}"
        );
    }
}

#[test]
fn application_workloads_solve_accurately() {
    // The three application generators from the paper's introduction.
    let shape = WorkloadShape::new(32, 500);
    let batches: Vec<SystemBatch<f64>> = vec![
        poisson_1d(shape, 1).unwrap(),
        adi_heat_lines(shape, 0.8).unwrap(),
        cubic_spline(shape, 1).unwrap(),
    ];
    for (i, batch) in batches.iter().enumerate() {
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let outcome =
            solve_batch_on_gpu(&mut gpu, batch, &SolverParams::default_untuned()).unwrap();
        let residual = batch_worst_relative_residual(batch, &outcome.x).unwrap();
        assert!(residual < 1e-12, "application {i}: residual {residual:.3e}");
    }
}

#[test]
fn tuning_cache_round_trips_through_solver() {
    let shape = WorkloadShape::new(16, 8192);
    let device = DeviceSpec::gtx_470();
    let mut cache = TuningCache::new();
    {
        let mut gpu: Gpu<f32> = Gpu::new(device.clone());
        let mut tuner = DynamicTuner::new();
        let cfg = tuner.tune_for(&mut gpu, shape);
        cache.insert(device.name(), cfg);
    }
    let json = cache.to_json();
    let reloaded = TuningCache::from_json(&json).expect("valid cache JSON");
    let restored = DynamicTuner::from_config(
        reloaded
            .get(device.name(), 4)
            .expect("config cached")
            .clone(),
    );
    let batch = random_dominant::<f32>(shape, 77).unwrap();
    let mut gpu: Gpu<f32> = Gpu::new(device.clone());
    let params = restored.params_for(shape, gpu.spec().queryable(), 4);
    let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
    assert!(batch_worst_relative_residual(&batch, &outcome.x).unwrap() < 1e-4);
}

#[test]
fn huge_single_system_runs_all_four_stages() {
    let shape = WorkloadShape::new(1, 1 << 18);
    let outcome = solve_and_verify(
        DeviceSpec::gtx_470(),
        shape,
        |_| SolverParams::default_untuned(),
        2e-4,
    );
    assert!(outcome.plan.stage1_steps >= 4, "stage 1 must engage");
    assert!(outcome.plan.stage2_steps >= 1, "stage 2 must engage");
    // One launch per stage-1 step + one stage-2 launch + the base kernel.
    assert_eq!(
        outcome.kernel_stats.len() as u32,
        outcome.plan.stage1_steps + 1 + 1
    );
}

#[test]
fn out_of_memory_is_reported_not_panicked() {
    // A workload bigger than the 8800's 768 MB of global memory.
    let shape = WorkloadShape::new(48, 1 << 19); // 9 buffers x 100 MB
    let batch = random_dominant::<f32>(shape, 1).unwrap();
    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::geforce_8800_gtx());
    let err = solve_batch_on_gpu(&mut gpu, &batch, &SolverParams::default_untuned());
    assert!(err.is_err());
}
