//! Structural claims from the paper's method sections (§III, Figures 2 and
//! 4), asserted against the simulator: these are the *reasons* the
//! multi-stage design exists, so the reproduction must exhibit them.

use trisolve::prelude::*;
use trisolve::solver::kernels::{stage1_step, stage2_split};

fn coeffs(gpu: &mut Gpu<f32>, batch: &SystemBatch<f32>) -> [trisolve::gpu::BufferId; 4] {
    [
        gpu.alloc_from(&batch.a).unwrap(),
        gpu.alloc_from(&batch.b).unwrap(),
        gpu.alloc_from(&batch.c).unwrap(),
        gpu.alloc_from(&batch.d).unwrap(),
    ]
}

/// Figure 4: "stage 1 incurs a higher penalty per split than stage 2" —
/// compared, as in the paper, when both stages can fill the machine
/// (with very few systems stage 2 underutilises and the comparison flips,
/// which is exactly why stage 1 exists; see the next test).
#[test]
fn stage1_costs_more_per_split_than_stage2() {
    let shape = WorkloadShape::new(256, 8192);
    let batch = random_dominant::<f32>(shape, 1).unwrap();
    let total = shape.total_equations();

    // Three stage-1 splits: three launches.
    let mut g1: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    let src = coeffs(&mut g1, &batch);
    let dst = [
        g1.alloc(total).unwrap(),
        g1.alloc(total).unwrap(),
        g1.alloc(total).unwrap(),
        g1.alloc(total).unwrap(),
    ];
    stage1_step(&mut g1, src, dst, 256, 8192, 1).unwrap();
    stage1_step(&mut g1, dst, src, 256, 8192, 2).unwrap();
    stage1_step(&mut g1, src, dst, 256, 8192, 4).unwrap();
    let t_stage1 = g1.elapsed_s();

    // The same three splits as one stage-2 launch.
    let mut g2: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
    let src = coeffs(&mut g2, &batch);
    let dst = [
        g2.alloc(total).unwrap(),
        g2.alloc(total).unwrap(),
        g2.alloc(total).unwrap(),
        g2.alloc(total).unwrap(),
    ];
    stage2_split(&mut g2, src, dst, 256, 8192, 1, 3).unwrap();
    let t_stage2 = g2.elapsed_s();

    assert!(
        t_stage1 > t_stage2,
        "3 stage-1 launches ({t_stage1:.3e}s) must cost more than one stage-2 launch ({t_stage2:.3e}s)"
    );
}

/// §III-C: stage 1 is worth its overhead only when there are too few
/// systems — with one huge system, forcing stage-2-only (P1 = 1) must lose
/// to a plan that uses stage 1 to fill the machine first.
#[test]
fn cooperative_splitting_pays_off_for_single_systems() {
    let shape = WorkloadShape::new(1, 1 << 19);
    let batch = random_dominant::<f32>(shape, 2).unwrap();
    let time_with_p1 = |p1: usize| {
        let params = SolverParams {
            stage1_target_systems: p1,
            onchip_size: 512,
            thomas_switch: 128,
            variant: BaseVariant::Strided,
        };
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        solve_batch_on_gpu(&mut gpu, &batch, &params)
            .unwrap()
            .sim_time_s
    };
    let no_stage1 = time_with_p1(1);
    let with_stage1 = time_with_p1(32);
    assert!(
        with_stage1 < no_stage1,
        "stage 1 must pay off on 1x512K: with {with_stage1:.3e}s vs without {no_stage1:.3e}s"
    );
}

/// §II: "code that runs on only a single processor is unlikely to be
/// efficient" — per-equation throughput improves as the batch grows until
/// the machine fills.
#[test]
fn throughput_grows_until_machine_fills() {
    let per_eq_time = |m: usize| {
        let shape = WorkloadShape::new(m, 1024);
        let batch = random_dominant::<f32>(shape, 3).unwrap();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let t = solve_batch_on_gpu(&mut gpu, &batch, &SolverParams::default_untuned())
            .unwrap()
            .sim_time_s;
        t / shape.total_equations() as f64
    };
    let t1 = per_eq_time(1);
    let t16 = per_eq_time(16);
    let t256 = per_eq_time(256);
    assert!(
        t16 < t1 * 0.7,
        "16 systems must beat 1: {t16:.3e} vs {t1:.3e}"
    );
    assert!(t256 < t16, "256 systems must beat 16");
    // And once the machine is full, throughput stabilises.
    let t1024 = per_eq_time(1024);
    assert!(
        (t1024 / t256 - 1.0).abs() < 0.4,
        "full-machine throughput should be roughly flat: {t256:.3e} vs {t1024:.3e}"
    );
}

/// §III-A: Sakharnykh's thread-per-system formulation "cannot use shared
/// memory ... only good at solving a large number of small systems". Our
/// block-per-system base kernel keeps working when systems are few — the
/// per-equation cost of 32 systems is within a small factor of the cost of
/// 2048 systems.
#[test]
fn base_kernel_tolerates_few_systems() {
    let per_eq = |m: usize| {
        let shape = WorkloadShape::new(m, 512);
        let batch = random_dominant::<f32>(shape, 4).unwrap();
        let params = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 512,
            thomas_switch: 128,
            variant: BaseVariant::Strided,
        };
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        solve_batch_on_gpu(&mut gpu, &batch, &params)
            .unwrap()
            .sim_time_s
            / shape.total_equations() as f64
    };
    let few = per_eq(32);
    let many = per_eq(2048);
    assert!(
        few < many * 20.0,
        "few-system penalty should be bounded: {few:.3e} vs {many:.3e}"
    );
}

/// The launch-overhead asymmetry (Figure 1's decision box): for a workload
/// of *many* systems, the plan must never schedule stage 1.
#[test]
fn many_systems_skip_stage1_entirely() {
    for m in [64usize, 1024] {
        let shape = WorkloadShape::new(m, 16384);
        let batch = random_dominant::<f32>(shape, 5).unwrap();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let out = solve_batch_on_gpu(&mut gpu, &batch, &SolverParams::default_untuned()).unwrap();
        assert_eq!(out.plan.stage1_steps, 0, "m={m} must not use stage 1");
        assert_eq!(out.plan.num_launches(), 2, "stage 2 + base only");
    }
}
