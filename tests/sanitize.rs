//! Integration tests for the sanitizer harness: the injected-hazard
//! fixtures must all be detected, shipping kernels must sweep clean in both
//! precisions and both layout variants, and enabling the sanitizer must not
//! change a solve's results or simulated timing by a single bit.

use trisolve::prelude::*;
use trisolve::sanitize;

#[test]
fn injected_hazard_fixtures_all_detected() {
    let fixtures = sanitize::fixture_checks().unwrap();
    assert_eq!(fixtures.len(), 4);
    for f in &fixtures {
        assert!(f.detected, "{} not detected: {}", f.name, f.detail);
        assert!(!f.detail.is_empty());
    }
}

#[test]
fn shipping_kernels_sweep_clean_in_both_precisions() {
    let opts = sanitize::SweepOptions {
        devices: vec![DeviceSpec::gtx_470()],
        shrink: 16,
        both_precisions: true,
    };
    let cases = sanitize::sweep(&opts).unwrap();
    // 4 workloads x 2 staged variants + the interleaved many-small case
    // + repack + baselines, per precision.
    assert_eq!(cases.len(), 22);
    assert!(
        cases
            .iter()
            .any(|c| c.label.contains("Interleaved") && c.is_clean()),
        "no clean interleaved case in the sweep"
    );
    for c in &cases {
        assert!(c.is_clean(), "{}: {:?}", c.label, c.hazards);
        assert!(c.launches > 0, "{}: nothing ran", c.label);
    }
    // The single-system workload must exercise every stage (stage 1 splits,
    // stage 2, base kernel), not just the base kernel.
    assert!(
        cases.iter().any(|c| c.launches >= 3),
        "no multi-stage case in the sweep"
    );
}

fn solve_with_and_without_sanitizer<T: trisolve::solver::kernels::GpuScalar>(
    shape: WorkloadShape,
    variant: BaseVariant,
) -> (SolveOutcome<T>, SolveOutcome<T>) {
    let dev = DeviceSpec::gtx_470();
    let batch = random_dominant::<T>(shape, 2011).unwrap();
    let params = SolverParams {
        variant,
        ..StaticTuner.params_for(
            shape,
            dev.queryable(),
            trisolve::solver::kernels::elem_bytes::<T>(),
        )
    };
    let mut plain: Gpu<T> = Gpu::new(dev.clone());
    let off = solve_batch_on_gpu(&mut plain, &batch, &params).unwrap();
    let mut sanitized: Gpu<T> = Gpu::with_sanitizer(dev);
    let on = solve_batch_on_gpu(&mut sanitized, &batch, &params).unwrap();
    let report = sanitized.take_sanitizer_report().unwrap();
    assert!(report.is_clean(), "{report}");
    (off, on)
}

/// The acceptance bit-identity criterion: with the sanitizer off, results
/// and simulated timings are exactly what they are with it on — the shadow
/// state never leaks into the numerics or the cost meters.
#[test]
fn sanitizer_on_off_solves_are_bit_identical() {
    // A multi-stage single-system solve in f32, strided base kernel.
    let (off, on) = solve_with_and_without_sanitizer::<f32>(
        WorkloadShape::new(1, 64 * 1024),
        BaseVariant::Strided,
    );
    assert_eq!(off.x, on.x);
    assert_eq!(off.sim_time_s.to_bits(), on.sim_time_s.to_bits());
    assert_eq!(off.kernel_stats.len(), on.kernel_stats.len());

    // A batched f64 solve through the coalesced (repack) variant.
    let (off, on) = solve_with_and_without_sanitizer::<f64>(
        WorkloadShape::new(16, 4096),
        BaseVariant::Coalesced,
    );
    assert_eq!(off.x, on.x);
    assert_eq!(off.sim_time_s.to_bits(), on.sim_time_s.to_bits());
    for (a, b) in off.kernel_stats.iter().zip(&on.kernel_stats) {
        assert_eq!(
            a.total_time_s().to_bits(),
            b.total_time_s().to_bits(),
            "{}",
            a.label
        );
    }
}
