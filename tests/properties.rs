//! Cross-crate property tests: for arbitrary diagonally dominant workloads
//! and arbitrary valid solver parameters, the GPU pipeline must agree with
//! the CPU reference solvers, conserve structure, and meter sane costs.

use proptest::prelude::*;
use trisolve::prelude::*;
use trisolve::solver::kernels::{deinterleave_solution, interleave_batch};
use trisolve::tridiag::cpu_batch::{solve_batch_sequential, BatchAlgorithm};
use trisolve::tridiag::norms;

/// Strategy: a random diagonally dominant batch (small enough to be fast).
fn small_batch() -> impl Strategy<Value = SystemBatch<f64>> {
    (1usize..6, 1usize..200, any::<u64>())
        .prop_map(|(m, n, seed)| random_dominant::<f64>(WorkloadShape::new(m, n), seed).unwrap())
}

/// Strategy: valid solver parameters for the GTX 470 (f64).
fn valid_params() -> impl Strategy<Value = SolverParams> {
    (5u32..=9, 3u32..=9, 0usize..6, prop::bool::ANY).prop_map(|(s3l, t4l, p1l, strided)| {
        let onchip = 1usize << s3l;
        SolverParams {
            stage1_target_systems: 1 << p1l,
            onchip_size: onchip,
            thomas_switch: (1usize << t4l).min(onchip),
            variant: if strided {
                BaseVariant::Strided
            } else {
                BaseVariant::Coalesced
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gpu_solution_matches_lu(batch in small_batch(), params in valid_params()) {
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
        let lu = solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap();
        let diff = norms::max_abs_diff(&outcome.x, &lu);
        prop_assert!(diff < 1e-8, "deviation {diff:.3e}");
    }

    #[test]
    fn residual_always_small_on_dominant_systems(batch in small_batch()) {
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let outcome =
            solve_batch_on_gpu(&mut gpu, &batch, &SolverParams::default_untuned()).unwrap();
        let res = batch_worst_relative_residual(&batch, &outcome.x).unwrap();
        prop_assert!(res < 1e-10, "residual {res:.3e}");
    }

    #[test]
    fn simulated_time_positive_and_finite(batch in small_batch(), params in valid_params()) {
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
        prop_assert!(outcome.sim_time_s.is_finite());
        prop_assert!(outcome.sim_time_s > 0.0);
        // The plan's launch count matches the profile.
        prop_assert_eq!(outcome.kernel_stats.len(), outcome.plan.num_launches());
    }

    #[test]
    fn solution_length_matches_workload(batch in small_batch()) {
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let outcome =
            solve_batch_on_gpu(&mut gpu, &batch, &SolverParams::default_untuned()).unwrap();
        prop_assert_eq!(outcome.x.len(), batch.total_equations());
        // All buffers are released.
        prop_assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn more_equations_never_simulate_faster(
        m in 1usize..4,
        n_small in 6u32..9,
        seed in any::<u64>(),
    ) {
        // Doubling the system size must not reduce simulated time under
        // identical parameters (monotonicity of the cost model).
        let params = SolverParams::default_untuned();
        let t = |n: usize| {
            let batch = random_dominant::<f64>(WorkloadShape::new(m, n), seed).unwrap();
            let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap().sim_time_s
        };
        let small = t(1 << n_small);
        let large = t(1 << (n_small + 1));
        prop_assert!(large >= small, "large {large:.3e} < small {small:.3e}");
    }

    #[test]
    fn session_reuse_is_bit_identical_to_one_shot(
        m in 1usize..6,
        n in 1usize..200,
        seeds in prop::collection::vec(any::<u64>(), 1..5),
        params in valid_params(),
    ) {
        // N solves through one reused session — cached plan, persistent
        // device buffers — must match N independent one-shot solves bit for
        // bit (the simulation is deterministic, so reuse may not perturb
        // results or accounting).
        let shape = WorkloadShape::new(m, n);
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let mut session = SolveSession::new(&mut gpu, shape).unwrap();
        for seed in seeds {
            let batch = random_dominant::<f64>(shape, seed).unwrap();
            let reused = session.solve(&mut gpu, &batch, &params).unwrap();
            let mut fresh: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            let one_shot = solve_batch_on_gpu(&mut fresh, &batch, &params).unwrap();
            prop_assert_eq!(&reused.x, &one_shot.x);
            prop_assert_eq!(reused.sim_time_s.to_bits(), one_shot.sim_time_s.to_bits());
            prop_assert_eq!(reused.kernel_stats.len(), one_shot.kernel_stats.len());
        }
    }

    /// The interleave kernel is a pure permutation and deinterleave is its
    /// exact inverse: pushing all four coefficient planes through the pair
    /// returns the original bits for every batch geometry, including every
    /// ragged-tile padding case (`m`/`n` not multiples of the 32-wide
    /// transpose tile, single-row and single-column batches).
    #[test]
    fn interleave_roundtrip_is_bit_identical_f64(
        m in 1usize..200,
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let batch = random_dominant::<f64>(WorkloadShape::new(m, n), seed).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ];
        let dst = [
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
        ];
        interleave_batch(&mut gpu, src, dst, m, n).unwrap();
        let back = gpu.alloc(m * n).unwrap();
        for (plane, original) in
            dst.iter().zip([&batch.a, &batch.b, &batch.c, &batch.d])
        {
            deinterleave_solution(&mut gpu, *plane, back, m, n).unwrap();
            let round = gpu.download(back).unwrap();
            for (u, v) in round.iter().zip(original) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn interleave_roundtrip_is_bit_identical_f32(
        m in 1usize..200,
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let batch = random_dominant::<f32>(WorkloadShape::new(m, n), seed).unwrap();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let src = [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ];
        let dst = [
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
        ];
        interleave_batch(&mut gpu, src, dst, m, n).unwrap();
        let back = gpu.alloc(m * n).unwrap();
        for (plane, original) in
            dst.iter().zip([&batch.a, &batch.b, &batch.c, &batch.d])
        {
            deinterleave_solution(&mut gpu, *plane, back, m, n).unwrap();
            let round = gpu.download(back).unwrap();
            for (u, v) in round.iter().zip(original) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    /// The batched-Thomas fast path (interleave → in-register Thomas →
    /// deinterleave) is bit-identical to the CPU batch reference running the
    /// same Thomas recurrence: the layout transforms are pure permutations
    /// and the kernel performs the exact CPU arithmetic sequence. The
    /// pivoted LU reference orders its normalisations differently (LU
    /// divides in back-substitution, Thomas in the forward sweep), so
    /// agreement with LU is pinned to rounding error instead of bits.
    #[test]
    fn interleaved_pipeline_matches_cpu_references(
        m in 32usize..80,
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let batch = random_dominant::<f64>(WorkloadShape::new(m, n), seed).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let params = SolverParams {
            variant: BaseVariant::Interleaved,
            ..SolverParams::default_untuned()
        };
        let outcome = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
        let thomas = solve_batch_sequential(&batch, BatchAlgorithm::Thomas).unwrap();
        for (g, t) in outcome.x.iter().zip(&thomas) {
            prop_assert_eq!(g.to_bits(), t.to_bits());
        }
        let lu = solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap();
        let diff = norms::max_abs_diff(&outcome.x, &lu);
        prop_assert!(diff < 1e-8, "deviation from LU {diff:.3e}");
    }

    #[test]
    fn tuned_params_are_always_valid(
        m in 1usize..2000,
        n in 1usize..100_000,
    ) {
        // Whatever the workload, every tuner must return parameters the
        // device accepts.
        let shape = WorkloadShape::new(m, n);
        for device in DeviceSpec::paper_devices() {
            let q = device.queryable();
            for eb in [4usize, 8] {
                let p = StaticTuner.params_for(shape, q, eb);
                prop_assert!(p.validate(q, eb).is_ok());
                let p = DefaultTuner.params_for(shape, q, eb);
                prop_assert!(p.validate(q, eb).is_ok());
            }
        }
    }
}

/// A singular batch (zero diagonal everywhere) that passes construction but
/// breaks down numerically inside the base kernel — mid-pipeline, after the
/// splitting launches have already run on allocated device buffers.
fn singular_batch(m: usize, n: usize) -> SystemBatch<f64> {
    let mut a = vec![1.0f64; n];
    let b = vec![0.0f64; n];
    let mut c = vec![1.0f64; n];
    a[0] = 0.0;
    c[n - 1] = 0.0;
    let d = vec![1.0f64; n];
    let sys = TridiagonalSystem::new(a, b, c, d).unwrap();
    SystemBatch::replicate(&sys, m).unwrap()
}

#[test]
fn mid_pipeline_kernel_error_leaks_no_device_memory() {
    // 2048 equations: the splitting stages run (and allocate) before the
    // base kernel detects the breakdown.
    let batch = singular_batch(4, 2048);
    let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
    let err = solve_batch_on_gpu(&mut gpu, &batch, &SolverParams::default_untuned());
    assert!(
        matches!(
            err,
            Err(trisolve::solver::CoreError::NumericalBreakdown { .. })
        ),
        "expected numerical breakdown, got {err:?}"
    );
    // The session's RAII buffer guards released every device allocation on
    // the error path — no manual cleanup anywhere on the way out.
    assert_eq!(
        gpu.allocated_bytes(),
        0,
        "device memory leaked on error path"
    );
}

#[test]
fn session_error_path_frees_buffers_on_drop() {
    let shape = WorkloadShape::new(2, 128);
    let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
    {
        let mut session = SolveSession::new(&mut gpu, shape).unwrap();
        assert!(gpu.allocated_bytes() > 0, "session holds device buffers");
        let err = session.solve(
            &mut gpu,
            &singular_batch(2, 128),
            &SolverParams::default_untuned(),
        );
        assert!(err.is_err());
        // The session survives the failed solve and stays usable...
        let good = random_dominant::<f64>(shape, 7).unwrap();
        assert!(session
            .solve(&mut gpu, &good, &SolverParams::default_untuned())
            .is_ok());
    }
    // ...and dropping it returns every byte.
    assert_eq!(gpu.allocated_bytes(), 0);
}
