//! The three parameter-selection strategies (§IV): default, machine-query
//! (static) and self-tuned (dynamic).

use crate::microbench::Microbench;
use crate::search::{hill_climb_pow2_traced, SearchStats};
use crate::space::Pow2Axis;
use serde::{Deserialize, Serialize};
use trisolve_core::kernels::{elem_bytes, GpuScalar};
use trisolve_core::params::prev_power_of_two;
use trisolve_core::{BaseVariant, SolverParams};
use trisolve_gpu_sim::{Gpu, QueryableProps};
use trisolve_obs::arg;
use trisolve_tridiag::workloads::WorkloadShape;

/// A parameter-selection strategy: given a workload and the *queryable*
/// device properties, produce solver parameters.
///
/// Note the signature: tuners never see [`trisolve_gpu_sim::HiddenProps`].
/// The dynamic tuner gets its extra information by *measuring*, exactly as
/// on real hardware.
pub trait Tuner {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
    /// Select parameters for a workload on a device.
    fn params_for(
        &self,
        shape: WorkloadShape,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> SolverParams;
}

// ---------------------------------------------------------------------------

/// §IV-B: machine-oblivious defaults. "The default parameters must at least
/// return correct answers for all architectures" — an on-chip size of 256
/// (what the weakest card fits), sixteen systems out of stage 1, a warp-size
/// Thomas switch.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultTuner;

impl Tuner for DefaultTuner {
    fn name(&self) -> &'static str {
        "default"
    }

    fn params_for(&self, _: WorkloadShape, _: &QueryableProps, _: usize) -> SolverParams {
        SolverParams::default_untuned()
    }
}

// ---------------------------------------------------------------------------

/// §IV-C: machine-query tuning. Uses only what `deviceProperties` exposes:
///
/// * stage-2→3 switch: the largest subsystem that fits on-chip (shared
///   memory + register file + block-size cap) — "switches as soon as each
///   subsystem can fit into shared memory";
/// * stage-3→4 switch: with bank count and bank bandwidth unqueryable, "we
///   make a guess based on the warp size instead": 2 warps = 64 subsystems;
/// * stage-1→2 switch: estimated from the processor count (the memory
///   bandwidth it actually depends on cannot be queried).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticTuner;

impl StaticTuner {
    /// The machine-query stage-1 target: enough independent systems to give
    /// every processor one, rounded up to a power of two.
    pub fn stage1_guess(device: &QueryableProps) -> usize {
        device.num_processors.next_power_of_two()
    }

    /// The machine-query Thomas switch: two warps' worth of subsystems.
    pub fn thomas_guess(device: &QueryableProps) -> usize {
        2 * device.warp_size
    }
}

impl Tuner for StaticTuner {
    fn name(&self) -> &'static str {
        "static"
    }

    fn params_for(
        &self,
        _shape: WorkloadShape,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> SolverParams {
        let onchip = SolverParams::max_onchip_size(device, elem_bytes);
        SolverParams {
            stage1_target_systems: Self::stage1_guess(device),
            onchip_size: onchip,
            thomas_switch: Self::thomas_guess(device).min(onchip),
            variant: BaseVariant::Strided,
        }
    }
}

// ---------------------------------------------------------------------------

/// The result of a dynamic tuning run for one device (and element width) —
/// "save those results for future runs".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedConfig {
    /// Tuned stage-2→3 switch (on-chip subsystem size).
    pub onchip_size: usize,
    /// Tuned stage-3→4 switch (Thomas subsystem count).
    pub thomas_switch: usize,
    /// Smallest chain stride at which the strided base kernel beats the
    /// coalesced one (phase B of §IV-D). Below it the tuner selects
    /// [`BaseVariant::Coalesced`].
    pub strided_from_stride: usize,
    /// Tuned stage-1→2 switch (independent systems before leaving stage 1).
    pub stage1_target_systems: usize,
    /// Element width this config was tuned for.
    pub elem_bytes: usize,
    /// Micro-benchmark evaluations the tuning run spent (the pruning
    /// strategies keep this small).
    pub evaluations: usize,
}

impl TunedConfig {
    /// Parameters for a workload under this tuned configuration.
    pub fn params_for(&self, shape: WorkloadShape) -> SolverParams {
        let n = shape.system_size.next_power_of_two();
        let chain_len = self.onchip_size.min(n);
        let stride = n / chain_len;
        SolverParams {
            stage1_target_systems: self.stage1_target_systems,
            onchip_size: self.onchip_size,
            thomas_switch: self.thomas_switch.min(chain_len),
            variant: if stride >= self.strided_from_stride {
                BaseVariant::Strided
            } else {
                BaseVariant::Coalesced
            },
        }
    }
}

/// Workload sizes the dynamic tuner benchmarks with. The defaults mirror
/// the paper ("a workload guaranteed to fill the machine" for the base
/// kernel, "one system that takes a large share of global memory" for the
/// stage-1 switch); `quick()` shrinks everything for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningBudget {
    /// Systems per processor in the machine-filling phase-A workload.
    pub fill_systems_per_sm: usize,
    /// System size of the phase-A workload (must exceed every candidate
    /// on-chip size so real splitting happens).
    pub fill_system_size: usize,
    /// System size of the phase-C single-system workload.
    pub huge_system_size: usize,
}

impl Default for TuningBudget {
    fn default() -> Self {
        Self {
            fill_systems_per_sm: 16,
            fill_system_size: 8192,
            huge_system_size: 1 << 21, // 2M equations, the paper's 1x2M
        }
    }
}

impl TuningBudget {
    /// A small budget for fast tests.
    pub fn quick() -> Self {
        Self {
            fill_systems_per_sm: 4,
            fill_system_size: 2048,
            huge_system_size: 1 << 16,
        }
    }
}

/// The dynamic tuner's `onchip_size` axis, derived by *proof* instead of
/// assumption: the theoretical axis spans up to
/// [`trisolve_analyze::ONCHIP_SEARCH_CEILING`], and the static analyzer's
/// launch-admissibility proofs cut off the infeasible tail before any
/// candidate is measured. The pruning is exact
/// (`prune_onchip_axis` proves `feasible_max ==
/// SolverParams::max_onchip_size`), so the axis — and every tuned output —
/// is identical to the pre-analyzer behaviour; the pruned candidate
/// classes are now *counted* (`candidates_pruned` / `proofs_failed`
/// tracer counters, surfaced in `MetricsReport`) instead of silently
/// never tried.
fn pruned_onchip_axis(
    q: &QueryableProps,
    elem_bytes: usize,
    tracer: &trisolve_obs::Tracer,
) -> Pow2Axis {
    let prune =
        trisolve_analyze::prune_onchip_axis(q, elem_bytes, trisolve_analyze::ONCHIP_SEARCH_CEILING);
    let theoretical = Pow2Axis::new(
        "onchip_size",
        32.min(prune.feasible_max),
        trisolve_analyze::ONCHIP_SEARCH_CEILING.max(prune.feasible_max),
    );
    let (axis, pruned) = theoretical.restrict_max(prune.feasible_max);
    if tracer.is_enabled() {
        tracer.counter_add("candidates_pruned", pruned.len() as u64);
        tracer.counter_add("proofs_failed", prune.proofs_failed as u64);
        tracer.instant_now(
            "tuner",
            "axis-pruned",
            vec![
                arg("axis", axis.name),
                arg("feasible_max", prune.feasible_max),
                arg("pruned_classes", pruned.len()),
                arg("proofs_failed", prune.proofs_failed),
            ],
        );
    }
    axis
}

/// §IV-D: the self-tuner. Seeds every axis at the static tuner's guess,
/// then hill-climbs the decoupled parameter groups with micro-benchmarks:
///
/// * **phase A** — on a machine-filling workload, search the on-chip size,
///   re-tuning the Thomas switch (and trying both base-kernel variants) for
///   each candidate;
/// * **phase B** — sweep the chain stride upward to find where the strided
///   base kernel starts beating the coalesced one;
/// * **phase C** — on a single huge system, search the stage-1 target.
///
/// The phases are independent by the paper's decoupling argument, so the
/// total cost is the *sum* of the phase costs.
#[derive(Debug, Clone, Default)]
pub struct DynamicTuner {
    config: Option<TunedConfig>,
}

impl DynamicTuner {
    /// An untuned instance (falls back to the static guess until
    /// [`DynamicTuner::tune`] runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a previously saved configuration (from the tuning cache).
    pub fn from_config(config: TunedConfig) -> Self {
        Self {
            config: Some(config),
        }
    }

    /// The tuned configuration, if tuning has run.
    pub fn config(&self) -> Option<&TunedConfig> {
        self.config.as_ref()
    }

    /// Tune for one specific workload shape — what the paper's dynamic
    /// tuner does "at runtime", caching the result for future runs of the
    /// same workload class on the same GPU.
    ///
    /// Phase A (on-chip size with nested Thomas-switch/variant search) runs
    /// directly on the target shape; the stage-1 target is searched only
    /// when the workload actually engages stage 1 (too few systems).
    pub fn tune_for<T: GpuScalar>(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
    ) -> TunedConfig {
        let mut mb: Microbench<T> = Microbench::new();
        self.tune_for_with(gpu, shape, &mut mb)
    }

    /// [`DynamicTuner::tune_for`] with a caller-supplied measurement
    /// harness — lets benches compare session-reusing and per-measurement
    /// allocation behaviour, and lets callers share one harness (and its
    /// cached sessions) across tuning runs on the same device.
    pub fn tune_for_with<T: GpuScalar>(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
        mb: &mut Microbench<T>,
    ) -> TunedConfig {
        let q = gpu.spec().queryable().clone();
        let eb = elem_bytes::<T>();
        let tracer = gpu.tracer().clone();
        let evaluations_before = mb.measurements;

        let static_guess = StaticTuner.params_for(shape, &q, eb);
        let onchip_axis = pruned_onchip_axis(&q, eb, &tracer);

        let mut p1 = static_guess.stage1_target_systems;
        let mut best_t4 = std::collections::HashMap::new();
        let (onchip, _, _) =
            hill_climb_pow2_traced(onchip_axis, static_guess.onchip_size, &tracer, |s3| {
                let t4_axis = Pow2Axis::new("thomas_switch", 8.min(s3), s3);
                let (t4, cost, _) =
                    hill_climb_pow2_traced(t4_axis, StaticTuner::thomas_guess(&q), &tracer, |t4| {
                        [BaseVariant::Strided, BaseVariant::Coalesced]
                            .into_iter()
                            .map(|variant| {
                                mb.measure(
                                    &mut *gpu,
                                    shape,
                                    &SolverParams {
                                        stage1_target_systems: p1,
                                        onchip_size: s3,
                                        thomas_switch: t4,
                                        variant,
                                    },
                                )
                            })
                            .fold(f64::INFINITY, f64::min)
                    });
                best_t4.insert(s3, t4);
                cost
            });
        let thomas_switch = best_t4[&onchip];

        // Resolve the winning variant at the chosen switch points.
        let measure_variant = |mb: &mut Microbench<T>, gpu: &mut Gpu<T>, variant, p1| {
            mb.measure(
                gpu,
                shape,
                &SolverParams {
                    stage1_target_systems: p1,
                    onchip_size: onchip,
                    thomas_switch,
                    variant,
                },
            )
        };
        let t_str = measure_variant(mb, gpu, BaseVariant::Strided, p1);
        let t_coa = measure_variant(mb, gpu, BaseVariant::Coalesced, p1);
        let variant = if t_str <= t_coa {
            BaseVariant::Strided
        } else {
            BaseVariant::Coalesced
        };

        // Stage-1 target: only searched when the workload runs stage 1.
        if shape.num_systems < static_guess.stage1_target_systems {
            let p1_axis =
                Pow2Axis::new("stage1_target", 1, 4 * q.num_processors.next_power_of_two());
            let (best_p1, _, _) = hill_climb_pow2_traced(p1_axis, p1, &tracer, |cand| {
                mb.measure(
                    &mut *gpu,
                    shape,
                    &SolverParams {
                        stage1_target_systems: cand,
                        onchip_size: onchip,
                        thomas_switch,
                        variant,
                    },
                )
            });
            p1 = best_p1;
        }

        let stride = shape.system_size.next_power_of_two()
            / onchip.min(shape.system_size.next_power_of_two());
        let config = TunedConfig {
            onchip_size: onchip,
            thomas_switch,
            strided_from_stride: match variant {
                BaseVariant::Strided => stride.max(1),
                BaseVariant::Coalesced => 2 * stride.max(1),
            },
            stage1_target_systems: p1,
            elem_bytes: eb,
            evaluations: mb.measurements - evaluations_before,
        };
        self.trace_tuned(&tracer, &config);
        self.config = Some(config.clone());
        config
    }

    /// Emit the final `"tuner"/"tuned"` event summarising a tuning run.
    fn trace_tuned(&self, tracer: &trisolve_obs::Tracer, config: &TunedConfig) {
        if !tracer.is_enabled() {
            return;
        }
        tracer.instant_now(
            "tuner",
            "tuned",
            vec![
                arg("onchip_size", config.onchip_size),
                arg("thomas_switch", config.thomas_switch),
                arg("strided_from_stride", config.strided_from_stride),
                arg("stage1_target", config.stage1_target_systems),
                arg("evaluations", config.evaluations),
            ],
        );
    }

    /// Run the §IV-D tuning procedure on a device. Takes well under a
    /// simulated minute — the paper reports "less than one minute" for a
    /// real tuning run; the evaluation count is recorded in the result.
    pub fn tune<T: GpuScalar>(&mut self, gpu: &mut Gpu<T>, budget: TuningBudget) -> TunedConfig {
        let q = gpu.spec().queryable().clone();
        let eb = elem_bytes::<T>();
        let tracer = gpu.tracer().clone();
        let mut mb: Microbench<T> = Microbench::new();

        let onchip_axis = pruned_onchip_axis(&q, eb, &tracer);
        let static_guess =
            StaticTuner.params_for(WorkloadShape::new(1, budget.fill_system_size), &q, eb);

        // ---- Phase A: on-chip size with nested Thomas switch ------------
        let fill_shape = WorkloadShape::new(
            budget.fill_systems_per_sm * q.num_processors,
            budget.fill_system_size,
        );
        let mut best_t4_for_onchip = std::collections::HashMap::new();
        let mut phase_a_stats = SearchStats::default();
        let (onchip, _, stats) =
            hill_climb_pow2_traced(onchip_axis, static_guess.onchip_size, &tracer, |s3| {
                // For each candidate on-chip size, tune the Thomas switch
                // from the static guess and take the better variant.
                let t4_axis = Pow2Axis::new("thomas_switch", 8.min(s3), s3);
                let (t4, cost, t4_stats) =
                    hill_climb_pow2_traced(t4_axis, StaticTuner::thomas_guess(&q), &tracer, |t4| {
                        [BaseVariant::Strided, BaseVariant::Coalesced]
                            .into_iter()
                            .map(|variant| {
                                mb.measure(
                                    &mut *gpu,
                                    fill_shape,
                                    &SolverParams {
                                        stage1_target_systems: static_guess.stage1_target_systems,
                                        onchip_size: s3,
                                        thomas_switch: t4,
                                        variant,
                                    },
                                )
                            })
                            .fold(f64::INFINITY, f64::min)
                    });
                phase_a_stats.evaluations += t4_stats.evaluations;
                best_t4_for_onchip.insert(s3, t4);
                cost
            });
        let thomas_switch = best_t4_for_onchip[&onchip];
        let _ = stats;

        // ---- Phase B: variant crossover stride ---------------------------
        // Benchmark the base kernel at growing stride (larger parent
        // systems, same on-chip size) under both variants; record the first
        // stride where strided wins and stays winning.
        let mut strided_from = usize::MAX;
        let mut phase_b_evals = 0usize;
        let mut stride = 2usize;
        while onchip * stride <= budget.fill_system_size.max(4 * onchip) && stride <= 64 {
            let shape = WorkloadShape::new(
                (budget.fill_systems_per_sm * q.num_processors / stride).max(1),
                onchip * stride,
            );
            let mk = |variant| SolverParams {
                stage1_target_systems: static_guess.stage1_target_systems,
                onchip_size: onchip,
                thomas_switch,
                variant,
            };
            let t_str = mb.measure(&mut *gpu, shape, &mk(BaseVariant::Strided));
            let t_coa = mb.measure(&mut *gpu, shape, &mk(BaseVariant::Coalesced));
            phase_b_evals += 2;
            if t_str < t_coa {
                strided_from = strided_from.min(stride);
            } else {
                strided_from = usize::MAX; // must win from here on
            }
            stride *= 2;
        }
        if strided_from == usize::MAX {
            strided_from = stride; // never won in range: only use beyond it
        }

        // ---- Phase C: stage-1 target on one huge system ------------------
        let huge = WorkloadShape::new(1, budget.huge_system_size);
        let p1_axis = Pow2Axis::new("stage1_target", 1, 4 * q.num_processors.next_power_of_two());
        let (stage1_target, _, p1_stats) =
            hill_climb_pow2_traced(p1_axis, StaticTuner::stage1_guess(&q), &tracer, |p1| {
                mb.measure(
                    &mut *gpu,
                    huge,
                    &SolverParams {
                        stage1_target_systems: p1,
                        onchip_size: onchip,
                        thomas_switch,
                        variant: if budget.huge_system_size / onchip >= strided_from {
                            BaseVariant::Strided
                        } else {
                            BaseVariant::Coalesced
                        },
                    },
                )
            });

        let config = TunedConfig {
            onchip_size: onchip,
            thomas_switch,
            strided_from_stride: strided_from,
            stage1_target_systems: stage1_target,
            elem_bytes: eb,
            evaluations: mb.measurements,
        };
        let _ = (phase_a_stats, phase_b_evals, p1_stats);
        self.trace_tuned(&tracer, &config);
        self.config = Some(config.clone());
        config
    }
}

impl Tuner for DynamicTuner {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn params_for(
        &self,
        shape: WorkloadShape,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> SolverParams {
        match &self.config {
            Some(cfg) => cfg.params_for(shape),
            None => StaticTuner.params_for(shape, device, elem_bytes),
        }
    }
}

/// Ensure a parameter set is admissible for a device, degrading gracefully
/// (used by drivers when a tuned config is applied to a different device
/// than it was tuned on).
pub fn clamp_to_device(
    mut params: SolverParams,
    device: &QueryableProps,
    elem_bytes: usize,
) -> SolverParams {
    let max = SolverParams::max_onchip_size(device, elem_bytes);
    params.onchip_size = prev_power_of_two(params.onchip_size.min(max));
    params.thomas_switch = params.thomas_switch.min(params.onchip_size);
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn default_tuner_is_machine_oblivious() {
        let t = DefaultTuner;
        let shape = WorkloadShape::new(100, 1000);
        let p1 = t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4);
        let p2 = t.params_for(shape, DeviceSpec::geforce_8800_gtx().queryable(), 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.onchip_size, 256);
        assert_eq!(p1.stage1_target_systems, 16);
    }

    #[test]
    fn static_tuner_uses_device_capacity() {
        let t = StaticTuner;
        let shape = WorkloadShape::new(100, 4096);
        assert_eq!(
            t.params_for(shape, DeviceSpec::geforce_8800_gtx().queryable(), 4)
                .onchip_size,
            256
        );
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_280().queryable(), 4)
                .onchip_size,
            512
        );
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
                .onchip_size,
            1024
        );
        // T4 guess: two warps.
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
                .thomas_switch,
            64
        );
    }

    #[test]
    fn static_params_always_valid() {
        for d in DeviceSpec::paper_devices() {
            for eb in [4usize, 8] {
                let p = StaticTuner.params_for(WorkloadShape::new(10, 10_000), d.queryable(), eb);
                p.validate(d.queryable(), eb).unwrap();
            }
        }
    }

    #[test]
    fn untuned_dynamic_falls_back_to_static() {
        let d = DeviceSpec::gtx_280();
        let shape = WorkloadShape::new(10, 4096);
        let dt = DynamicTuner::new();
        assert_eq!(
            dt.params_for(shape, d.queryable(), 4),
            StaticTuner.params_for(shape, d.queryable(), 4)
        );
    }

    #[test]
    fn tuning_produces_valid_cacheable_config() {
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let mut dt = DynamicTuner::new();
        let cfg = dt.tune(&mut gpu, TuningBudget::quick());
        assert!(cfg.onchip_size.is_power_of_two());
        assert!(cfg.thomas_switch.is_power_of_two());
        assert!(cfg.evaluations > 0);
        // The resulting params validate on the device for various shapes.
        for shape in [
            WorkloadShape::new(1, 1 << 20),
            WorkloadShape::new(1000, 64),
            WorkloadShape::new(64, 4096),
        ] {
            let p = dt.params_for(shape, gpu.spec().queryable(), 4);
            p.validate(gpu.spec().queryable(), 4).unwrap();
        }
    }

    #[test]
    fn tuned_config_switches_variant_by_stride() {
        let cfg = TunedConfig {
            onchip_size: 512,
            thomas_switch: 128,
            strided_from_stride: 8,
            stage1_target_systems: 16,
            elem_bytes: 4,
            evaluations: 0,
        };
        // 4096/512 = stride 8: strided.
        assert_eq!(
            cfg.params_for(WorkloadShape::new(10, 4096)).variant,
            BaseVariant::Strided
        );
        // 1024/512 = stride 2: coalesced.
        assert_eq!(
            cfg.params_for(WorkloadShape::new(10, 1024)).variant,
            BaseVariant::Coalesced
        );
    }

    #[test]
    fn pruned_axis_is_identical_to_the_machine_query_axis() {
        // The bit-identity guarantee: proof-derived axis bounds coincide
        // with the machine-query bounds on every device and width, so the
        // search walks exactly the same candidates as before pruning.
        let tracer = trisolve_obs::Tracer::disabled();
        for d in DeviceSpec::paper_devices() {
            let q = d.queryable();
            for eb in [4usize, 8] {
                let max = SolverParams::max_onchip_size(q, eb);
                assert_eq!(
                    pruned_onchip_axis(q, eb, &tracer),
                    Pow2Axis::new("onchip_size", 32.min(max), max),
                    "{} eb={eb}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn tuning_reports_pruned_candidate_classes() {
        // Every tuner run must report at least one statically-pruned
        // candidate class: the theoretical ceiling exceeds each device cap.
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        gpu.set_tracer(trisolve_obs::Tracer::enabled());
        let mut dt = DynamicTuner::new();
        dt.tune(&mut gpu, TuningBudget::quick());
        let counters = gpu.tracer().counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(k, _)| *k == name)
                .map_or(0, |(_, v)| *v)
        };
        assert!(get("candidates_pruned") >= 1, "{counters:?}");
        assert!(get("proofs_failed") >= 1, "{counters:?}");
    }

    #[test]
    fn clamp_to_device_degrades_gracefully() {
        let p = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 1024,
            thomas_switch: 256,
            variant: BaseVariant::Strided,
        };
        let clamped = clamp_to_device(p, DeviceSpec::geforce_8800_gtx().queryable(), 4);
        assert_eq!(clamped.onchip_size, 256);
        assert_eq!(clamped.thomas_switch, 256);
        clamped
            .validate(DeviceSpec::geforce_8800_gtx().queryable(), 4)
            .unwrap();
    }
}
