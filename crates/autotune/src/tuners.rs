//! The three parameter-selection strategies (§IV): default, machine-query
//! (static) and self-tuned (dynamic).

use crate::microbench::Microbench;
use crate::search::{hill_climb_pow2_traced, SearchStats};
use crate::space::Pow2Axis;
use serde::{Deserialize, Serialize};
use trisolve_core::kernels::{elem_bytes, GpuScalar};
use trisolve_core::params::{prev_power_of_two, INTERLEAVED_MIN_SYSTEMS};
use trisolve_core::{BaseVariant, SolverParams};
use trisolve_gpu_sim::{Gpu, QueryableProps};
use trisolve_obs::arg;
use trisolve_tridiag::workloads::WorkloadShape;

/// A parameter-selection strategy: given a workload and the *queryable*
/// device properties, produce solver parameters.
///
/// Note the signature: tuners never see [`trisolve_gpu_sim::HiddenProps`].
/// The dynamic tuner gets its extra information by *measuring*, exactly as
/// on real hardware.
pub trait Tuner {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
    /// Select parameters for a workload on a device.
    fn params_for(
        &self,
        shape: WorkloadShape,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> SolverParams;
}

// ---------------------------------------------------------------------------

/// §IV-B: machine-oblivious defaults. "The default parameters must at least
/// return correct answers for all architectures" — an on-chip size of 256
/// (what the weakest card fits), sixteen systems out of stage 1, a warp-size
/// Thomas switch.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultTuner;

impl Tuner for DefaultTuner {
    fn name(&self) -> &'static str {
        "default"
    }

    fn params_for(&self, shape: WorkloadShape, _: &QueryableProps, _: usize) -> SolverParams {
        // Machine-oblivious stage-skip rule: a batch so large that the
        // interleaved fast path's repacking amortises on *some* device
        // (tens of thousands of small systems) routes to the interleaved
        // batched Thomas. Correct everywhere — the default's only promise.
        if shape.num_systems >= DEFAULT_INTERLEAVED_MIN_BATCH
            && shape.system_size.next_power_of_two() <= DEFAULT_INTERLEAVED_MAX_SIZE
        {
            return SolverParams {
                variant: BaseVariant::Interleaved,
                ..SolverParams::default_untuned()
            };
        }
        SolverParams::default_untuned()
    }
}

/// Batch size from which [`DefaultTuner`] dares the interleaved fast path:
/// machine-oblivious, so conservative — only batches large enough that the
/// repacking passes amortise on every architecture class.
pub const DEFAULT_INTERLEAVED_MIN_BATCH: usize = 1 << 16;

/// Largest (padded) system size [`DefaultTuner`] routes to the interleaved
/// fast path: two warps of unknowns, beyond which the per-thread serial
/// Thomas phase dominates any coalescing win.
pub const DEFAULT_INTERLEAVED_MAX_SIZE: usize = 64;

// ---------------------------------------------------------------------------

/// §IV-C: machine-query tuning. Uses only what `deviceProperties` exposes:
///
/// * stage-2→3 switch: the largest subsystem that fits on-chip (shared
///   memory + register file + block-size cap) — "switches as soon as each
///   subsystem can fit into shared memory";
/// * stage-3→4 switch: with bank count and bank bandwidth unqueryable, "we
///   make a guess based on the warp size instead": 2 warps = 64 subsystems;
/// * stage-1→2 switch: estimated from the processor count (the memory
///   bandwidth it actually depends on cannot be queried).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticTuner;

impl StaticTuner {
    /// The machine-query stage-1 target: enough independent systems to give
    /// every processor one, rounded up to a power of two.
    pub fn stage1_guess(device: &QueryableProps) -> usize {
        device.num_processors.next_power_of_two()
    }

    /// The machine-query Thomas switch: two warps' worth of subsystems.
    pub fn thomas_guess(device: &QueryableProps) -> usize {
        2 * device.warp_size
    }

    /// The machine-query layout decision: route a batch to the interleaved
    /// batched-Thomas fast path when the static analyzer's coalescing +
    /// occupancy model places it in the many-small window (systems of at
    /// most two warps, a Fermi-class block-capacity gap the staged
    /// pipeline's tiny blocks cannot fill, and a batch deep enough to
    /// amortise the repacking passes) — see
    /// [`trisolve_analyze::many_small_window`].
    ///
    /// Like every static guess this uses only queryable properties; the
    /// dynamic tuner replaces it with a measured switch point.
    pub fn interleaved_guess(shape: WorkloadShape, device: &QueryableProps) -> bool {
        trisolve_analyze::many_small_window(shape, device)
    }
}

impl Tuner for StaticTuner {
    fn name(&self) -> &'static str {
        "static"
    }

    fn params_for(
        &self,
        shape: WorkloadShape,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> SolverParams {
        let onchip = SolverParams::max_onchip_size(device, elem_bytes);
        SolverParams {
            stage1_target_systems: Self::stage1_guess(device),
            onchip_size: onchip,
            thomas_switch: Self::thomas_guess(device).min(onchip),
            variant: if Self::interleaved_guess(shape, device) {
                BaseVariant::Interleaved
            } else {
                BaseVariant::Strided
            },
        }
    }
}

// ---------------------------------------------------------------------------

/// The result of a dynamic tuning run for one device (and element width) —
/// "save those results for future runs".
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TunedConfig {
    /// Tuned stage-2→3 switch (on-chip subsystem size).
    pub onchip_size: usize,
    /// Tuned stage-3→4 switch (Thomas subsystem count).
    pub thomas_switch: usize,
    /// Smallest chain stride at which the strided base kernel beats the
    /// coalesced one (phase B of §IV-D). Below it the tuner selects
    /// [`BaseVariant::Coalesced`].
    pub strided_from_stride: usize,
    /// Largest (padded) system size for which the interleaved batched-Thomas
    /// fast path beat the staged pipeline on the many-small tuning workload
    /// (phase D). `0` disables the fast path — also the deserialisation
    /// default, so configurations cached before the layout axis existed
    /// parse to their exact pre-axis behaviour.
    pub interleaved_below_size: usize,
    /// Smallest batch (system count) at which the interleaved fast path
    /// still won during tuning; smaller batches take the staged pipeline
    /// even for qualifying system sizes.
    pub interleaved_from_systems: usize,
    /// Tuned stage-1→2 switch (independent systems before leaving stage 1).
    pub stage1_target_systems: usize,
    /// Element width this config was tuned for.
    pub elem_bytes: usize,
    /// Micro-benchmark evaluations the tuning run spent (the pruning
    /// strategies keep this small).
    pub evaluations: usize,
}

// Hand-written so the two `interleaved_*` fields default to 0 (fast path
// disabled) when absent: caches written before the layout axis existed
// must keep their exact pre-axis behaviour. (The vendored serde stand-in
// has no field attributes, so this cannot be a `#[serde(default)]`.)
impl Deserialize for TunedConfig {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let required = |k: &'static str| {
            usize::from_value(v.get(k).unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::DeError::msg(format!("TunedConfig.{k}: {e}")))
        };
        let defaulted = |k: &'static str| match v.get(k) {
            None | Some(serde::Value::Null) => Ok(0usize),
            Some(x) => usize::from_value(x)
                .map_err(|e| serde::DeError::msg(format!("TunedConfig.{k}: {e}"))),
        };
        Ok(TunedConfig {
            onchip_size: required("onchip_size")?,
            thomas_switch: required("thomas_switch")?,
            strided_from_stride: required("strided_from_stride")?,
            interleaved_below_size: defaulted("interleaved_below_size")?,
            interleaved_from_systems: defaulted("interleaved_from_systems")?,
            stage1_target_systems: required("stage1_target_systems")?,
            elem_bytes: required("elem_bytes")?,
            evaluations: required("evaluations")?,
        })
    }
}

impl TunedConfig {
    /// Parameters for a workload under this tuned configuration.
    pub fn params_for(&self, shape: WorkloadShape) -> SolverParams {
        let n = shape.system_size.next_power_of_two();
        // Stage-skip decision: workloads inside the measured many-small
        // window route to the interleaved batched-Thomas fast path. Every
        // other shape falls through to the staged pipeline with switch
        // points untouched, so large-system plans are byte-for-byte what a
        // pre-layout-axis config produced.
        if self.interleaved_below_size > 0
            && n <= self.interleaved_below_size
            && shape.num_systems >= self.interleaved_from_systems.max(INTERLEAVED_MIN_SYSTEMS)
        {
            return SolverParams {
                stage1_target_systems: self.stage1_target_systems,
                onchip_size: self.onchip_size,
                thomas_switch: self.thomas_switch.min(self.onchip_size.min(n)),
                variant: BaseVariant::Interleaved,
            };
        }
        let chain_len = self.onchip_size.min(n);
        let stride = n / chain_len;
        SolverParams {
            stage1_target_systems: self.stage1_target_systems,
            onchip_size: self.onchip_size,
            thomas_switch: self.thomas_switch.min(chain_len),
            variant: if stride >= self.strided_from_stride {
                BaseVariant::Strided
            } else {
                BaseVariant::Coalesced
            },
        }
    }
}

/// Workload sizes the dynamic tuner benchmarks with. The defaults mirror
/// the paper ("a workload guaranteed to fill the machine" for the base
/// kernel, "one system that takes a large share of global memory" for the
/// stage-1 switch); `quick()` shrinks everything for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningBudget {
    /// Systems per processor in the machine-filling phase-A workload.
    pub fill_systems_per_sm: usize,
    /// System size of the phase-A workload (must exceed every candidate
    /// on-chip size so real splitting happens).
    pub fill_system_size: usize,
    /// System size of the phase-C single-system workload.
    pub huge_system_size: usize,
    /// Batch size (system count) of the phase-D many-small workload. The
    /// interleaved fast path only ever wins once its two repacking passes
    /// amortise over tens of thousands of systems, so the probe batch must
    /// be deep; set below [`INTERLEAVED_MIN_SYSTEMS`] to skip phase D.
    pub many_small_systems: usize,
    /// Largest system size the phase-D ladder probes for the layout switch
    /// point (clamped to [`INTERLEAVED_PROBE_CEILING`]).
    pub many_small_max_size: usize,
}

impl Default for TuningBudget {
    fn default() -> Self {
        Self {
            fill_systems_per_sm: 16,
            fill_system_size: 8192,
            huge_system_size: 1 << 21,   // 2M equations, the paper's 1x2M
            many_small_systems: 1 << 16, // 64K small systems
            many_small_max_size: INTERLEAVED_PROBE_CEILING,
        }
    }
}

impl TuningBudget {
    /// A small budget for fast tests. The many-small probe batch is far too
    /// shallow for the interleaved path to ever win, which keeps the phase
    /// cheap — quick configs simply leave the fast path disabled.
    pub fn quick() -> Self {
        Self {
            fill_systems_per_sm: 4,
            fill_system_size: 2048,
            huge_system_size: 1 << 16,
            many_small_systems: 2048,
            many_small_max_size: 64,
        }
    }
}

/// Largest (padded) system size any tuner will probe the interleaved
/// batched-Thomas fast path at. Beyond a few warps of unknowns per system
/// the per-thread serial Thomas phase dominates whatever the layout saves
/// on memory traffic, so larger sizes are never candidates — and the
/// phase-D ladder stays a handful of rungs.
pub const INTERLEAVED_PROBE_CEILING: usize = 128;

/// The dynamic tuner's `onchip_size` axis, derived by *proof* instead of
/// assumption: the theoretical axis spans up to
/// [`trisolve_analyze::ONCHIP_SEARCH_CEILING`], and the static analyzer's
/// launch-admissibility proofs cut off the infeasible tail before any
/// candidate is measured. The pruning is exact
/// (`prune_onchip_axis` proves `feasible_max ==
/// SolverParams::max_onchip_size`), so the axis — and every tuned output —
/// is identical to the pre-analyzer behaviour; the pruned candidate
/// classes are now *counted* (`candidates_pruned` / `proofs_failed`
/// tracer counters, surfaced in `MetricsReport`) instead of silently
/// never tried.
fn pruned_onchip_axis(
    q: &QueryableProps,
    elem_bytes: usize,
    tracer: &trisolve_obs::Tracer,
) -> Pow2Axis {
    let prune =
        trisolve_analyze::prune_onchip_axis(q, elem_bytes, trisolve_analyze::ONCHIP_SEARCH_CEILING);
    let theoretical = Pow2Axis::new(
        "onchip_size",
        32.min(prune.feasible_max),
        trisolve_analyze::ONCHIP_SEARCH_CEILING.max(prune.feasible_max),
    );
    let (axis, pruned) = theoretical.restrict_max(prune.feasible_max);
    if tracer.is_enabled() {
        tracer.counter_add("candidates_pruned", pruned.len() as u64);
        tracer.counter_add("proofs_failed", prune.proofs_failed as u64);
        tracer.instant_now(
            "tuner",
            "axis-pruned",
            vec![
                arg("axis", axis.name),
                arg("feasible_max", prune.feasible_max),
                arg("pruned_classes", pruned.len()),
                arg("proofs_failed", prune.proofs_failed),
            ],
        );
    }
    axis
}

/// §IV-D: the self-tuner. Seeds every axis at the static tuner's guess,
/// then hill-climbs the decoupled parameter groups with micro-benchmarks:
///
/// * **phase A** — on a machine-filling workload, search the on-chip size,
///   re-tuning the Thomas switch (and trying both base-kernel variants) for
///   each candidate;
/// * **phase B** — sweep the chain stride upward to find where the strided
///   base kernel starts beating the coalesced one;
/// * **phase C** — on a single huge system, search the stage-1 target.
///
/// The phases are independent by the paper's decoupling argument, so the
/// total cost is the *sum* of the phase costs.
#[derive(Debug, Clone, Default)]
pub struct DynamicTuner {
    config: Option<TunedConfig>,
}

impl DynamicTuner {
    /// An untuned instance (falls back to the static guess until
    /// [`DynamicTuner::tune`] runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a previously saved configuration (from the tuning cache).
    pub fn from_config(config: TunedConfig) -> Self {
        Self {
            config: Some(config),
        }
    }

    /// The tuned configuration, if tuning has run.
    pub fn config(&self) -> Option<&TunedConfig> {
        self.config.as_ref()
    }

    /// Tune for one specific workload shape — what the paper's dynamic
    /// tuner does "at runtime", caching the result for future runs of the
    /// same workload class on the same GPU.
    ///
    /// Phase A (on-chip size with nested Thomas-switch/variant search) runs
    /// directly on the target shape; the stage-1 target is searched only
    /// when the workload actually engages stage 1 (too few systems).
    pub fn tune_for<T: GpuScalar>(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
    ) -> TunedConfig {
        let mut mb: Microbench<T> = Microbench::new();
        self.tune_for_with(gpu, shape, &mut mb)
    }

    /// [`DynamicTuner::tune_for`] with a caller-supplied measurement
    /// harness — lets benches compare session-reusing and per-measurement
    /// allocation behaviour, and lets callers share one harness (and its
    /// cached sessions) across tuning runs on the same device.
    pub fn tune_for_with<T: GpuScalar>(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
        mb: &mut Microbench<T>,
    ) -> TunedConfig {
        let q = gpu.spec().queryable().clone();
        let eb = elem_bytes::<T>();
        let tracer = gpu.tracer().clone();
        let evaluations_before = mb.measurements;

        let static_guess = StaticTuner.params_for(shape, &q, eb);
        let onchip_axis = pruned_onchip_axis(&q, eb, &tracer);

        let mut p1 = static_guess.stage1_target_systems;
        let mut best_t4 = std::collections::HashMap::new();
        let (onchip, _, _) =
            hill_climb_pow2_traced(onchip_axis, static_guess.onchip_size, &tracer, |s3| {
                let t4_axis = Pow2Axis::new("thomas_switch", 8.min(s3), s3);
                let (t4, cost, _) =
                    hill_climb_pow2_traced(t4_axis, StaticTuner::thomas_guess(&q), &tracer, |t4| {
                        [BaseVariant::Strided, BaseVariant::Coalesced]
                            .into_iter()
                            .map(|variant| {
                                mb.measure(
                                    &mut *gpu,
                                    shape,
                                    &SolverParams {
                                        stage1_target_systems: p1,
                                        onchip_size: s3,
                                        thomas_switch: t4,
                                        variant,
                                    },
                                )
                            })
                            .fold(f64::INFINITY, f64::min)
                    });
                best_t4.insert(s3, t4);
                cost
            });
        let thomas_switch = best_t4[&onchip];

        // Resolve the winning variant at the chosen switch points.
        let measure_variant = |mb: &mut Microbench<T>, gpu: &mut Gpu<T>, variant, p1| {
            mb.measure(
                gpu,
                shape,
                &SolverParams {
                    stage1_target_systems: p1,
                    onchip_size: onchip,
                    thomas_switch,
                    variant,
                },
            )
        };
        let t_str = measure_variant(mb, gpu, BaseVariant::Strided, p1);
        let t_coa = measure_variant(mb, gpu, BaseVariant::Coalesced, p1);
        let variant = if t_str <= t_coa {
            BaseVariant::Strided
        } else {
            BaseVariant::Coalesced
        };

        // Stage-1 target: only searched when the workload runs stage 1.
        if shape.num_systems < static_guess.stage1_target_systems {
            let p1_axis =
                Pow2Axis::new("stage1_target", 1, 4 * q.num_processors.next_power_of_two());
            let (best_p1, _, _) = hill_climb_pow2_traced(p1_axis, p1, &tracer, |cand| {
                mb.measure(
                    &mut *gpu,
                    shape,
                    &SolverParams {
                        stage1_target_systems: cand,
                        onchip_size: onchip,
                        thomas_switch,
                        variant,
                    },
                )
            });
            p1 = best_p1;
        }

        // Layout resolution: for a qualifying many-small shape, measure the
        // interleaved batched-Thomas fast path against the best staged
        // candidate at the tuned switch points and record the stage-skip
        // decision. Non-qualifying shapes never pay the extra evaluation,
        // keeping large-system tuning runs identical to the pre-layout-axis
        // search.
        let np = shape.system_size.next_power_of_two();
        let mut interleaved_below_size = 0usize;
        let mut interleaved_from_systems = 0usize;
        if shape.num_systems >= INTERLEAVED_MIN_SYSTEMS && np <= INTERLEAVED_PROBE_CEILING {
            let t_staged = t_str.min(t_coa);
            let t_inter = mb.measure(
                &mut *gpu,
                shape,
                &SolverParams {
                    stage1_target_systems: p1,
                    onchip_size: onchip,
                    thomas_switch,
                    variant: BaseVariant::Interleaved,
                },
            );
            let won = t_inter < t_staged;
            if won {
                interleaved_below_size = np;
                interleaved_from_systems = shape.num_systems;
            }
            if tracer.is_enabled() {
                tracer.instant_now(
                    "tuner",
                    "layout-select",
                    vec![
                        arg("systems", shape.num_systems),
                        arg("size", shape.system_size),
                        arg("staged_s", t_staged),
                        arg("interleaved_s", t_inter),
                        arg(
                            "layout",
                            if won {
                                BaseVariant::Interleaved.layout_name()
                            } else {
                                variant.layout_name()
                            },
                        ),
                    ],
                );
            }
        }

        let stride = shape.system_size.next_power_of_two()
            / onchip.min(shape.system_size.next_power_of_two());
        let config = TunedConfig {
            onchip_size: onchip,
            thomas_switch,
            // `variant` here is the staged winner (strided vs coalesced);
            // the interleaved decision is carried separately above.
            strided_from_stride: if variant == BaseVariant::Strided {
                stride.max(1)
            } else {
                2 * stride.max(1)
            },
            interleaved_below_size,
            interleaved_from_systems,
            stage1_target_systems: p1,
            elem_bytes: eb,
            evaluations: mb.measurements - evaluations_before,
        };
        self.trace_tuned(&tracer, &config);
        self.config = Some(config.clone());
        config
    }

    /// Phase D of the search: the many-small **layout switch**. Walk the
    /// system-size ladder (32, 64, …, `max_size`) on a `batch_systems`-deep
    /// batch, measuring the interleaved batched-Thomas fast path against
    /// the better staged variant at the tuned switch points. The recorded
    /// switch point is the largest *contiguous* winning prefix of the
    /// ladder (a gap ends the window — the fast path must not be enabled
    /// for sizes it loses at). If the fast path won anywhere, the batch
    /// floor is then found by halving the batch at the winning size until
    /// the staged pipeline takes over again.
    ///
    /// Returns `(interleaved_below_size, interleaved_from_systems)` —
    /// `(0, 0)` when the fast path never won (or the probe batch is too
    /// shallow to qualify).
    fn tune_layout_switch<T: GpuScalar>(
        &self,
        gpu: &mut Gpu<T>,
        mb: &mut Microbench<T>,
        tracer: &trisolve_obs::Tracer,
        batch_systems: usize,
        max_size: usize,
        staged: SolverParams,
    ) -> (usize, usize) {
        // Static pruning of the layout axis: a probe batch the plan
        // builder provably refuses the interleaved variant for skips the
        // whole phase without pricing a candidate.
        if !trisolve_analyze::prune_layout_axis(WorkloadShape::new(batch_systems, 32))
            .candidates
            .contains(&BaseVariant::Interleaved)
        {
            return (0, 0);
        }
        // One ladder rung: best staged variant vs interleaved on `shape`.
        let probe = |mb: &mut Microbench<T>, gpu: &mut Gpu<T>, shape: WorkloadShape| {
            let np = shape.system_size.next_power_of_two();
            let mk = |variant| SolverParams {
                thomas_switch: staged.thomas_switch.min(staged.onchip_size.min(np)),
                variant,
                ..staged
            };
            let t_staged = mb
                .measure(&mut *gpu, shape, &mk(BaseVariant::Strided))
                .min(mb.measure(&mut *gpu, shape, &mk(BaseVariant::Coalesced)));
            let t_inter = mb.measure(&mut *gpu, shape, &mk(BaseVariant::Interleaved));
            let won = t_inter < t_staged;
            if tracer.is_enabled() {
                tracer.instant_now(
                    "tuner",
                    "layout-probe",
                    vec![
                        arg("systems", shape.num_systems),
                        arg("size", shape.system_size),
                        arg("staged_s", t_staged),
                        arg("interleaved_s", t_inter),
                        arg(
                            "layout",
                            if won {
                                BaseVariant::Interleaved.layout_name()
                            } else {
                                "staged"
                            },
                        ),
                    ],
                );
            }
            won
        };

        let mut below = 0usize;
        let mut size = 32usize;
        while size <= max_size {
            if !probe(mb, gpu, WorkloadShape::new(batch_systems, size)) {
                break; // contiguous winning prefix only
            }
            below = size;
            size *= 2;
        }

        let mut from = 0usize;
        if below > 0 {
            from = batch_systems;
            while from / 2 >= INTERLEAVED_MIN_SYSTEMS
                && probe(mb, gpu, WorkloadShape::new(from / 2, below))
            {
                from /= 2;
            }
        }

        if tracer.is_enabled() {
            tracer.instant_now(
                "tuner",
                "layout-select",
                vec![
                    arg("interleaved_below_size", below),
                    arg("interleaved_from_systems", from),
                    arg(
                        "layout",
                        if below > 0 {
                            BaseVariant::Interleaved.layout_name()
                        } else {
                            "staged"
                        },
                    ),
                ],
            );
        }
        (below, from)
    }

    /// Emit the final `"tuner"/"tuned"` event summarising a tuning run.
    fn trace_tuned(&self, tracer: &trisolve_obs::Tracer, config: &TunedConfig) {
        if !tracer.is_enabled() {
            return;
        }
        tracer.instant_now(
            "tuner",
            "tuned",
            vec![
                arg("onchip_size", config.onchip_size),
                arg("thomas_switch", config.thomas_switch),
                arg("strided_from_stride", config.strided_from_stride),
                arg("interleaved_below_size", config.interleaved_below_size),
                arg("interleaved_from_systems", config.interleaved_from_systems),
                arg("stage1_target", config.stage1_target_systems),
                arg("evaluations", config.evaluations),
            ],
        );
    }

    /// Run the §IV-D tuning procedure on a device. Takes well under a
    /// simulated minute — the paper reports "less than one minute" for a
    /// real tuning run; the evaluation count is recorded in the result.
    pub fn tune<T: GpuScalar>(&mut self, gpu: &mut Gpu<T>, budget: TuningBudget) -> TunedConfig {
        let q = gpu.spec().queryable().clone();
        let eb = elem_bytes::<T>();
        let tracer = gpu.tracer().clone();
        let mut mb: Microbench<T> = Microbench::new();

        let onchip_axis = pruned_onchip_axis(&q, eb, &tracer);
        let static_guess =
            StaticTuner.params_for(WorkloadShape::new(1, budget.fill_system_size), &q, eb);

        // ---- Phase A: on-chip size with nested Thomas switch ------------
        let fill_shape = WorkloadShape::new(
            budget.fill_systems_per_sm * q.num_processors,
            budget.fill_system_size,
        );
        let mut best_t4_for_onchip = std::collections::HashMap::new();
        let mut phase_a_stats = SearchStats::default();
        let (onchip, _, stats) =
            hill_climb_pow2_traced(onchip_axis, static_guess.onchip_size, &tracer, |s3| {
                // For each candidate on-chip size, tune the Thomas switch
                // from the static guess and take the better variant.
                let t4_axis = Pow2Axis::new("thomas_switch", 8.min(s3), s3);
                let (t4, cost, t4_stats) =
                    hill_climb_pow2_traced(t4_axis, StaticTuner::thomas_guess(&q), &tracer, |t4| {
                        [BaseVariant::Strided, BaseVariant::Coalesced]
                            .into_iter()
                            .map(|variant| {
                                mb.measure(
                                    &mut *gpu,
                                    fill_shape,
                                    &SolverParams {
                                        stage1_target_systems: static_guess.stage1_target_systems,
                                        onchip_size: s3,
                                        thomas_switch: t4,
                                        variant,
                                    },
                                )
                            })
                            .fold(f64::INFINITY, f64::min)
                    });
                phase_a_stats.evaluations += t4_stats.evaluations;
                best_t4_for_onchip.insert(s3, t4);
                cost
            });
        let thomas_switch = best_t4_for_onchip[&onchip];
        let _ = stats;

        // ---- Phase B: variant crossover stride ---------------------------
        // Benchmark the base kernel at growing stride (larger parent
        // systems, same on-chip size) under both variants; record the first
        // stride where strided wins and stays winning.
        let mut strided_from = usize::MAX;
        let mut phase_b_evals = 0usize;
        let mut stride = 2usize;
        while onchip * stride <= budget.fill_system_size.max(4 * onchip) && stride <= 64 {
            let shape = WorkloadShape::new(
                (budget.fill_systems_per_sm * q.num_processors / stride).max(1),
                onchip * stride,
            );
            let mk = |variant| SolverParams {
                stage1_target_systems: static_guess.stage1_target_systems,
                onchip_size: onchip,
                thomas_switch,
                variant,
            };
            let t_str = mb.measure(&mut *gpu, shape, &mk(BaseVariant::Strided));
            let t_coa = mb.measure(&mut *gpu, shape, &mk(BaseVariant::Coalesced));
            phase_b_evals += 2;
            if t_str < t_coa {
                strided_from = strided_from.min(stride);
            } else {
                strided_from = usize::MAX; // must win from here on
            }
            stride *= 2;
        }
        if strided_from == usize::MAX {
            strided_from = stride; // never won in range: only use beyond it
        }

        // ---- Phase C: stage-1 target on one huge system ------------------
        let huge = WorkloadShape::new(1, budget.huge_system_size);
        let p1_axis = Pow2Axis::new("stage1_target", 1, 4 * q.num_processors.next_power_of_two());
        let (stage1_target, _, p1_stats) =
            hill_climb_pow2_traced(p1_axis, StaticTuner::stage1_guess(&q), &tracer, |p1| {
                mb.measure(
                    &mut *gpu,
                    huge,
                    &SolverParams {
                        stage1_target_systems: p1,
                        onchip_size: onchip,
                        thomas_switch,
                        variant: if budget.huge_system_size / onchip >= strided_from {
                            BaseVariant::Strided
                        } else {
                            BaseVariant::Coalesced
                        },
                    },
                )
            });

        // ---- Phase D: many-small layout switch ---------------------------
        let staged = SolverParams {
            stage1_target_systems: stage1_target,
            onchip_size: onchip,
            thomas_switch,
            variant: BaseVariant::Strided,
        };
        let (interleaved_below_size, interleaved_from_systems) = self.tune_layout_switch(
            gpu,
            &mut mb,
            &tracer,
            budget.many_small_systems,
            budget.many_small_max_size.min(INTERLEAVED_PROBE_CEILING),
            staged,
        );

        let config = TunedConfig {
            onchip_size: onchip,
            thomas_switch,
            strided_from_stride: strided_from,
            interleaved_below_size,
            interleaved_from_systems,
            stage1_target_systems: stage1_target,
            elem_bytes: eb,
            evaluations: mb.measurements,
        };
        let _ = (phase_a_stats, phase_b_evals, p1_stats);
        self.trace_tuned(&tracer, &config);
        self.config = Some(config.clone());
        config
    }
}

impl Tuner for DynamicTuner {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn params_for(
        &self,
        shape: WorkloadShape,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> SolverParams {
        match &self.config {
            Some(cfg) => cfg.params_for(shape),
            None => StaticTuner.params_for(shape, device, elem_bytes),
        }
    }
}

/// Ensure a parameter set is admissible for a device, degrading gracefully
/// (used by drivers when a tuned config is applied to a different device
/// than it was tuned on).
pub fn clamp_to_device(
    mut params: SolverParams,
    device: &QueryableProps,
    elem_bytes: usize,
) -> SolverParams {
    let max = SolverParams::max_onchip_size(device, elem_bytes);
    params.onchip_size = prev_power_of_two(params.onchip_size.min(max));
    params.thomas_switch = params.thomas_switch.min(params.onchip_size);
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn default_tuner_is_machine_oblivious() {
        let t = DefaultTuner;
        let shape = WorkloadShape::new(100, 1000);
        let p1 = t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4);
        let p2 = t.params_for(shape, DeviceSpec::geforce_8800_gtx().queryable(), 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.onchip_size, 256);
        assert_eq!(p1.stage1_target_systems, 16);
    }

    #[test]
    fn static_tuner_uses_device_capacity() {
        let t = StaticTuner;
        let shape = WorkloadShape::new(100, 4096);
        assert_eq!(
            t.params_for(shape, DeviceSpec::geforce_8800_gtx().queryable(), 4)
                .onchip_size,
            256
        );
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_280().queryable(), 4)
                .onchip_size,
            512
        );
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
                .onchip_size,
            1024
        );
        // T4 guess: two warps.
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
                .thomas_switch,
            64
        );
    }

    #[test]
    fn static_params_always_valid() {
        for d in DeviceSpec::paper_devices() {
            for eb in [4usize, 8] {
                let p = StaticTuner.params_for(WorkloadShape::new(10, 10_000), d.queryable(), eb);
                p.validate(d.queryable(), eb).unwrap();
            }
        }
    }

    #[test]
    fn untuned_dynamic_falls_back_to_static() {
        let d = DeviceSpec::gtx_280();
        let shape = WorkloadShape::new(10, 4096);
        let dt = DynamicTuner::new();
        assert_eq!(
            dt.params_for(shape, d.queryable(), 4),
            StaticTuner.params_for(shape, d.queryable(), 4)
        );
    }

    #[test]
    fn tuning_produces_valid_cacheable_config() {
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let mut dt = DynamicTuner::new();
        let cfg = dt.tune(&mut gpu, TuningBudget::quick());
        assert!(cfg.onchip_size.is_power_of_two());
        assert!(cfg.thomas_switch.is_power_of_two());
        assert!(cfg.evaluations > 0);
        // The resulting params validate on the device for various shapes.
        for shape in [
            WorkloadShape::new(1, 1 << 20),
            WorkloadShape::new(1000, 64),
            WorkloadShape::new(64, 4096),
        ] {
            let p = dt.params_for(shape, gpu.spec().queryable(), 4);
            p.validate(gpu.spec().queryable(), 4).unwrap();
        }
    }

    #[test]
    fn tuned_config_switches_variant_by_stride() {
        let cfg = TunedConfig {
            onchip_size: 512,
            thomas_switch: 128,
            strided_from_stride: 8,
            interleaved_below_size: 0,
            interleaved_from_systems: 0,
            stage1_target_systems: 16,
            elem_bytes: 4,
            evaluations: 0,
        };
        // 4096/512 = stride 8: strided.
        assert_eq!(
            cfg.params_for(WorkloadShape::new(10, 4096)).variant,
            BaseVariant::Strided
        );
        // 1024/512 = stride 2: coalesced.
        assert_eq!(
            cfg.params_for(WorkloadShape::new(10, 1024)).variant,
            BaseVariant::Coalesced
        );
    }

    #[test]
    fn pruned_axis_is_identical_to_the_machine_query_axis() {
        // The bit-identity guarantee: proof-derived axis bounds coincide
        // with the machine-query bounds on every device and width, so the
        // search walks exactly the same candidates as before pruning.
        let tracer = trisolve_obs::Tracer::disabled();
        for d in DeviceSpec::paper_devices() {
            let q = d.queryable();
            for eb in [4usize, 8] {
                let max = SolverParams::max_onchip_size(q, eb);
                assert_eq!(
                    pruned_onchip_axis(q, eb, &tracer),
                    Pow2Axis::new("onchip_size", 32.min(max), max),
                    "{} eb={eb}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn tuning_reports_pruned_candidate_classes() {
        // Every tuner run must report at least one statically-pruned
        // candidate class: the theoretical ceiling exceeds each device cap.
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        gpu.set_tracer(trisolve_obs::Tracer::enabled());
        let mut dt = DynamicTuner::new();
        dt.tune(&mut gpu, TuningBudget::quick());
        let counters = gpu.tracer().counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(k, _)| *k == name)
                .map_or(0, |(_, v)| *v)
        };
        assert!(get("candidates_pruned") >= 1, "{counters:?}");
        assert!(get("proofs_failed") >= 1, "{counters:?}");
    }

    #[test]
    fn tuned_config_gates_interleaved_by_shape() {
        let cfg = TunedConfig {
            onchip_size: 512,
            thomas_switch: 128,
            strided_from_stride: 8,
            interleaved_below_size: 64,
            interleaved_from_systems: 16384,
            stage1_target_systems: 16,
            elem_bytes: 4,
            evaluations: 0,
        };
        // Inside the measured window: interleaved fast path.
        assert_eq!(
            cfg.params_for(WorkloadShape::new(16384, 64)).variant,
            BaseVariant::Interleaved
        );
        assert_eq!(
            cfg.params_for(WorkloadShape::new(1 << 20, 32)).variant,
            BaseVariant::Interleaved
        );
        // Too large (65 pads to 128 > 64), too shallow, or huge systems:
        // the staged pipeline, with decisions identical to a config that
        // never had the layout axis.
        let mut legacy = cfg.clone();
        legacy.interleaved_below_size = 0;
        legacy.interleaved_from_systems = 0;
        for shape in [
            WorkloadShape::new(16384, 65),
            WorkloadShape::new(8192, 64),
            WorkloadShape::new(16384, 512),
            WorkloadShape::new(10, 4096),
            WorkloadShape::new(1, 1 << 20),
        ] {
            let p = cfg.params_for(shape);
            assert_ne!(p.variant, BaseVariant::Interleaved, "{shape:?}");
            assert_eq!(p, legacy.params_for(shape), "{shape:?}");
        }
    }

    #[test]
    fn default_tuner_gates_interleaved_on_batch_depth() {
        let t = DefaultTuner;
        let dev = DeviceSpec::gtx_280();
        let q = dev.queryable();
        let many_small = WorkloadShape::new(DEFAULT_INTERLEAVED_MIN_BATCH, 32);
        assert_eq!(
            t.params_for(many_small, q, 4).variant,
            BaseVariant::Interleaved
        );
        // Machine-oblivious: the same decision on every device.
        assert_eq!(
            t.params_for(many_small, q, 4),
            t.params_for(many_small, DeviceSpec::gtx_470().queryable(), 4)
        );
        // Shallow batches and large systems keep the paper defaults.
        for shape in [
            WorkloadShape::new(100, 32),
            WorkloadShape::new(DEFAULT_INTERLEAVED_MIN_BATCH, 1000),
        ] {
            assert_eq!(t.params_for(shape, q, 4), SolverParams::default_untuned());
        }
    }

    #[test]
    fn static_tuner_guesses_interleaved_only_for_fermi_many_small() {
        let t = StaticTuner;
        let shape = WorkloadShape::new(16384, 64);
        // 470: blocks of two warps against a 1024-thread block cap, batch
        // beyond 1K systems/SM — the machine-query gate fires.
        assert_eq!(
            t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
                .variant,
            BaseVariant::Interleaved
        );
        // Same shape on the 512-thread-cap parts: staged.
        for d in [DeviceSpec::gtx_280(), DeviceSpec::geforce_8800_gtx()] {
            assert_eq!(
                t.params_for(shape, d.queryable(), 4).variant,
                BaseVariant::Strided
            );
        }
        // On the 470 but too shallow / too large: staged.
        for shape in [WorkloadShape::new(4096, 64), WorkloadShape::new(16384, 512)] {
            assert_eq!(
                t.params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
                    .variant,
                BaseVariant::Strided
            );
        }
        // The gated guess still validates everywhere it fires.
        StaticTuner
            .params_for(shape, DeviceSpec::gtx_470().queryable(), 4)
            .validate(DeviceSpec::gtx_470().queryable(), 4)
            .unwrap();
    }

    #[test]
    fn dynamic_tuner_finds_the_interleaved_switch_on_fermi() {
        // The measured stage-skip decision: on the GTX 470 a deep batch of
        // small systems runs faster through the interleaved batched-Thomas
        // path, and phase D must find that switch point. The same budget on
        // the GTX 280 must leave the fast path disabled (it loses there).
        let budget = TuningBudget {
            many_small_systems: 16384,
            many_small_max_size: 32,
            ..TuningBudget::quick()
        };
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let mut dt = DynamicTuner::new();
        let cfg = dt.tune(&mut gpu, budget);
        assert_eq!(cfg.interleaved_below_size, 32, "{cfg:?}");
        assert!(cfg.interleaved_from_systems >= INTERLEAVED_MIN_SYSTEMS);
        assert!(cfg.interleaved_from_systems <= 16384);
        assert_eq!(
            cfg.params_for(WorkloadShape::new(16384, 32)).variant,
            BaseVariant::Interleaved
        );
        assert_ne!(
            cfg.params_for(WorkloadShape::new(16384, 2048)).variant,
            BaseVariant::Interleaved
        );

        let mut gpu280: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let cfg280 = DynamicTuner::new().tune(&mut gpu280, budget);
        assert_eq!(cfg280.interleaved_below_size, 0, "{cfg280:?}");
        assert_ne!(
            cfg280.params_for(WorkloadShape::new(16384, 32)).variant,
            BaseVariant::Interleaved
        );
    }

    #[test]
    fn tune_for_resolves_layout_only_for_qualifying_shapes() {
        // A qualifying shape where the staged pipeline wins: the layout is
        // probed (one extra evaluation) but the fast path stays disabled.
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let mut dt = DynamicTuner::new();
        let cfg = dt.tune_for(&mut gpu, WorkloadShape::new(64, 32));
        assert_eq!(cfg.interleaved_below_size, 0);
        assert_eq!(cfg.interleaved_from_systems, 0);
        // A large-system shape is never probed, so the tuning run is the
        // same search the pre-layout-axis tuner performed.
        let cfg = dt.tune_for(&mut gpu, WorkloadShape::new(16, 2048));
        assert_eq!(cfg.interleaved_below_size, 0);
        assert_ne!(
            cfg.params_for(WorkloadShape::new(16, 2048)).variant,
            BaseVariant::Interleaved
        );
    }

    #[test]
    fn layout_probes_are_visible_in_the_trace() {
        // Satellite of the layout axis: every candidate evaluation carries
        // a `layout` arg and phase D emits `layout-probe`/`layout-select`
        // events, so a trace viewer can tell the three layouts apart.
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        gpu.set_tracer(trisolve_obs::Tracer::enabled());
        let mut dt = DynamicTuner::new();
        dt.tune(
            &mut gpu,
            TuningBudget {
                many_small_systems: 2048,
                many_small_max_size: 32,
                ..TuningBudget::quick()
            },
        );
        let events = gpu.tracer().events();
        let named = |n: &str| events.iter().filter(|e| e.name == n).count();
        assert!(named("layout-probe") >= 1);
        assert!(named("layout-select") >= 1);
        let layout_args: Vec<String> = events
            .iter()
            .filter(|e| e.name == "eval")
            .map(|e| format!("{:?}", e.args))
            .collect();
        assert!(!layout_args.is_empty());
        assert!(layout_args
            .iter()
            .all(|a| a.contains("\"layout\"") || a.contains("layout")));
        assert!(
            layout_args.iter().any(|a| a.contains("interleaved")),
            "phase D must evaluate the interleaved layout at least once"
        );
    }

    #[test]
    fn clamp_to_device_degrades_gracefully() {
        let p = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 1024,
            thomas_switch: 256,
            variant: BaseVariant::Strided,
        };
        let clamped = clamp_to_device(p, DeviceSpec::geforce_8800_gtx().queryable(), 4);
        assert_eq!(clamped.onchip_size, 256);
        assert_eq!(clamped.thomas_switch, 256);
        clamped
            .validate(DeviceSpec::geforce_8800_gtx().queryable(), 4)
            .unwrap();
    }
}
