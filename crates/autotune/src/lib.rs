#![warn(missing_docs)]

//! # trisolve-autotune
//!
//! The paper's parameter-selection machinery (§IV): three strategies for
//! choosing the multi-stage solver's switch points, and the pruned-search
//! framework behind the dynamic one.
//!
//! * [`tuners::DefaultTuner`] — machine-oblivious constants that merely have
//!   to *work* on every device (§IV-B);
//! * [`tuners::StaticTuner`] — machine-query tuning from the runtime-visible
//!   device properties only (§IV-C);
//! * [`tuners::DynamicTuner`] — the self-tuner (§IV-D): seeded by the static
//!   guess, it searches the **decoupled** parameter groups with
//!   micro-benchmarks and caches the result for future runs.
//!
//! The two pruning ideas the paper contributes are first-class here:
//!
//! 1. **Decoupling** ([`space`]): independent parameter groups are searched
//!    additively (`16 + 32` evaluations) rather than jointly (`16 × 32`);
//!    the cost arithmetic is exported and asserted in tests.
//! 2. **Seeded local search** ([`search`]): hill climbing over power-of-two
//!    axes starting from the machine-query guess, which usually sits near
//!    the optimum of the (empirically near-unimodal) search space.

pub mod auto;
pub mod cache;
pub mod dispatch;
pub mod microbench;
pub mod search;
pub mod space;
pub mod tuners;

pub use auto::{ensure_tuned, solve_auto};
pub use cache::TuningCache;
pub use dispatch::{Dispatcher, Engine};
pub use microbench::Microbench;
pub use search::{
    exhaustive_pow2, exhaustive_pow2_traced, hill_climb_pow2, hill_climb_pow2_traced, SearchStats,
};
pub use space::{decoupled_evaluations, joint_evaluations, Pow2Axis};
pub use tuners::{DefaultTuner, DynamicTuner, StaticTuner, TunedConfig, Tuner, TuningBudget};
