//! CPU/GPU dispatch — the paper's closing future-work item ("extend our
//! techniques to also explore the boundary between GPU and CPU", §VII),
//! built from the pieces the reproduction already has: a tuned GPU solver
//! with a simulated stopwatch, and the calibrated MKL-class CPU model.
//!
//! Figure 8 is exactly a dispatch table: the GPU wins parallel workloads
//! 6–11×, the CPU wins the single 2M-equation system. [`Dispatcher`]
//! measures both sides per workload class (tuning the GPU side first) and
//! remembers the verdicts, so an application can just call
//! [`Dispatcher::solve`] and always get the faster engine.

use crate::microbench::Microbench;
use crate::tuners::{DynamicTuner, TunedConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trisolve_core::engine::{Backend, CpuBackend, GpuBackend};
use trisolve_core::kernels::{elem_bytes, GpuScalar};
use trisolve_core::{CoreError, SolveOutcome, SolvePlan};
use trisolve_gpu_sim::{CpuSpec, Gpu};
use trisolve_tridiag::workloads::WorkloadShape;
use trisolve_tridiag::SystemBatch;

/// Which engine a workload class should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// The multi-stage GPU solver (dynamically tuned).
    Gpu,
    /// The sequential-LU CPU solver (MKL analogue).
    Cpu,
}

/// A per-workload-class dispatch decision with the measurements behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The chosen engine.
    pub engine: Engine,
    /// Simulated GPU milliseconds (tuned).
    pub gpu_ms: f64,
    /// Simulated CPU milliseconds (model).
    pub cpu_ms: f64,
    /// The tuned GPU configuration used for the measurement.
    pub gpu_config: TunedConfig,
}

/// Chooses, per workload class, whether to solve on the (simulated) GPU or
/// the CPU — by measuring, exactly like the dynamic tuner.
#[derive(Debug, Default)]
pub struct Dispatcher {
    cpu: Option<CpuSpec>,
    verdicts: HashMap<WorkloadShape, Verdict>,
}

impl Dispatcher {
    /// Dispatcher with the paper's Core i5 CPU model.
    pub fn new() -> Self {
        Self {
            cpu: None,
            verdicts: HashMap::new(),
        }
    }

    /// Override the CPU model (defaults to the paper's Core i5).
    pub fn with_cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = Some(cpu);
        self
    }

    fn cpu_spec(&self) -> CpuSpec {
        self.cpu
            .clone()
            .unwrap_or_else(CpuSpec::core_i5_dual_3_4ghz)
    }

    /// The dispatch decision for a workload class, measuring (and tuning
    /// the GPU side) on first sight.
    pub fn decide<T: GpuScalar>(&mut self, gpu: &mut Gpu<T>, shape: WorkloadShape) -> Verdict {
        if let Some(v) = self.verdicts.get(&shape) {
            return v.clone();
        }
        let mut tuner = DynamicTuner::new();
        let config = tuner.tune_for(gpu, shape);
        let params = config.params_for(shape);
        let mut mb: Microbench<T> = Microbench::new();
        let mut gpu_ms = mb.measure(gpu, shape, &params) * 1e3;
        // Static launch validation as a dispatch gate: a plan with a launch
        // the device would reject must never be routed to the GPU, whatever
        // the measurement said.
        let device = gpu.spec().queryable();
        let plan_ok = SolvePlan::build(shape, &params, device, elem_bytes::<T>())
            .is_ok_and(|plan| !plan.validate(device, elem_bytes::<T>()).has_errors());
        if !plan_ok {
            gpu_ms = f64::INFINITY;
        }
        let (cpu_s, _) = self
            .cpu_spec()
            .time_batch_lu_auto(shape.num_systems, shape.system_size);
        let cpu_ms = cpu_s * 1e3;
        let verdict = Verdict {
            engine: if gpu_ms <= cpu_ms {
                Engine::Gpu
            } else {
                Engine::Cpu
            },
            gpu_ms,
            cpu_ms,
            gpu_config: config,
        };
        self.verdicts.insert(shape, verdict.clone());
        verdict
    }

    /// Solve on whichever engine the (cached) verdict prefers, routed
    /// through the matching [`Backend`]: the CPU path really solves on the
    /// host (sequential LU, like MKL) under the calibrated timing model,
    /// with `outcome.plan` recording what the GPU *would* have run; the GPU
    /// path runs the tuned multi-stage solver.
    pub fn solve<T: GpuScalar>(
        &mut self,
        gpu: &mut Gpu<T>,
        batch: &SystemBatch<T>,
    ) -> Result<(SolveOutcome<T>, Engine), CoreError> {
        let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
        let verdict = self.decide(gpu, shape);
        let params = verdict.gpu_config.params_for(shape);
        match verdict.engine {
            Engine::Gpu => {
                let mut backend = GpuBackend::new(gpu);
                let mut session = backend.prepare(shape, &params)?;
                let outcome = backend.solve(&mut session, batch, &params)?;
                Ok((outcome, Engine::Gpu))
            }
            Engine::Cpu => {
                let mut backend = CpuBackend::new(self.cpu_spec())
                    .with_reference_device(gpu.spec().queryable().clone());
                let mut session =
                    <CpuBackend as Backend<T>>::prepare(&mut backend, shape, &params)?;
                let outcome = backend.solve(&mut session, batch, &params)?;
                Ok((outcome, Engine::Cpu))
            }
        }
    }

    /// Verdicts accumulated so far.
    pub fn verdicts(&self) -> impl Iterator<Item = (&WorkloadShape, &Verdict)> {
        self.verdicts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::random_dominant;

    #[test]
    fn figure8_crossover_drives_dispatch_and_routing() {
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let mut d = Dispatcher::new();
        // Parallel workload: GPU wins (Figure 8: 11x) — and solving routes
        // there with a correct result.
        let gpu_shape = WorkloadShape::new(1024, 1024);
        let v = d.decide(&mut gpu, gpu_shape);
        assert_eq!(v.engine, Engine::Gpu, "gpu {} cpu {}", v.gpu_ms, v.cpu_ms);
        let batch = random_dominant::<f32>(gpu_shape, 1).unwrap();
        let (out, engine) = d.solve(&mut gpu, &batch).unwrap();
        assert_eq!(engine, Engine::Gpu);
        assert!(batch_worst_relative_residual(&batch, &out.x).unwrap() < 1e-4);

        // Single huge system: CPU wins (Figure 8: 0.7x) — the CPU path
        // really solves on the host.
        let cpu_shape = WorkloadShape::new(1, 2 * 1024 * 1024);
        let v = d.decide(&mut gpu, cpu_shape);
        assert_eq!(v.engine, Engine::Cpu, "gpu {} cpu {}", v.gpu_ms, v.cpu_ms);
        let batch = random_dominant::<f32>(cpu_shape, 2).unwrap();
        let (out, engine) = d.solve(&mut gpu, &batch).unwrap();
        assert_eq!(engine, Engine::Cpu);
        assert!(batch_worst_relative_residual(&batch, &out.x).unwrap() < 1e-3);
        assert!(out.kernel_stats.is_empty(), "CPU path launches nothing");
    }

    #[test]
    fn decisions_are_cached() {
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let mut d = Dispatcher::new();
        let shape = WorkloadShape::new(64, 1024);
        let v1 = d.decide(&mut gpu, shape);
        let launches = gpu.timeline().len();
        let v2 = d.decide(&mut gpu, shape);
        assert_eq!(v1, v2);
        assert_eq!(gpu.timeline().len(), launches, "no re-measurement");
        assert_eq!(d.verdicts().count(), 1);
    }

    #[test]
    fn slower_cpu_shifts_the_boundary() {
        // With a CPU model 20x slower, even a large single system moves to
        // the GPU side of the boundary.
        let slow_cpu = CpuSpec {
            ns_per_eq_lu: 16.2 * 20.0,
            ..CpuSpec::core_i5_dual_3_4ghz()
        };
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let mut d = Dispatcher::new().with_cpu(slow_cpu);
        let v = d.decide(&mut gpu, WorkloadShape::new(1, 1 << 20));
        assert_eq!(v.engine, Engine::Gpu);
    }
}
