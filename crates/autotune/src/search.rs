//! Seeded local search over power-of-two axes — the paper's second pruning
//! strategy: start from the machine-query guess ("we usually get very close
//! to this local minimum") and iterate over neighbours until none improves.

use crate::space::Pow2Axis;
use std::collections::HashMap;
use trisolve_obs::{arg, Tracer};

/// Bookkeeping from one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct configurations evaluated (each evaluation is a simulated
    /// micro-benchmark — the quantity the pruning strategies minimise).
    pub evaluations: usize,
    /// Hill-climbing moves accepted.
    pub moves: usize,
}

/// Hill-climb a single power-of-two axis starting at `start` (clamped onto
/// the axis). `eval` maps a value to a cost (simulated seconds); lower is
/// better. Returns `(best_value, best_cost, stats)`.
///
/// Evaluations are memoised, so the count reflects distinct probes.
///
/// ```
/// use trisolve_autotune::{hill_climb_pow2, Pow2Axis};
///
/// let axis = Pow2Axis::new("block", 32, 1024);
/// // A unimodal cost with its minimum at 256.
/// let cost = |v: usize| ((v as f64).log2() - 8.0).abs();
/// let (best, c, stats) = hill_climb_pow2(axis, 512, cost);
/// assert_eq!(best, 256);
/// assert_eq!(c, 0.0);
/// assert!(stats.evaluations <= axis.len()); // pruned vs exhaustive
/// ```
pub fn hill_climb_pow2<F>(axis: Pow2Axis, start: usize, eval: F) -> (usize, f64, SearchStats)
where
    F: FnMut(usize) -> f64,
{
    hill_climb_pow2_traced(axis, start, &Tracer::disabled(), eval)
}

/// [`hill_climb_pow2`] with search telemetry: each distinct probe, each
/// accepted move, and the final selection emit a `"tuner"` trace event
/// (`probe` / `move` / `select`) carrying the axis name, value and cost —
/// so the full search trajectory, including the neighbours probed and
/// pruned, is reconstructible from the trace. With a disabled tracer this
/// is exactly [`hill_climb_pow2`].
pub fn hill_climb_pow2_traced<F>(
    axis: Pow2Axis,
    start: usize,
    tracer: &Tracer,
    mut eval: F,
) -> (usize, f64, SearchStats)
where
    F: FnMut(usize) -> f64,
{
    let mut stats = SearchStats::default();
    let mut memo: HashMap<usize, f64> = HashMap::new();
    let mut probe = |v: usize, stats: &mut SearchStats, memo: &mut HashMap<usize, f64>| -> f64 {
        if let Some(&c) = memo.get(&v) {
            return c;
        }
        stats.evaluations += 1;
        let c = eval(v);
        memo.insert(v, c);
        if tracer.is_enabled() {
            tracer.instant_now(
                "tuner",
                "probe",
                vec![arg("axis", axis.name), arg("value", v), arg("cost_s", c)],
            );
        }
        c
    };

    let mut cur = axis.clamp(start);
    let mut cur_cost = probe(cur, &mut stats, &mut memo);
    loop {
        let mut best_neighbor: Option<(usize, f64)> = None;
        for n in axis.neighbors(cur) {
            let c = probe(n, &mut stats, &mut memo);
            if c < cur_cost && best_neighbor.is_none_or(|(_, bc)| c < bc) {
                best_neighbor = Some((n, c));
            }
        }
        match best_neighbor {
            Some((n, c)) => {
                if tracer.is_enabled() {
                    tracer.instant_now(
                        "tuner",
                        "move",
                        vec![
                            arg("axis", axis.name),
                            arg("from", cur),
                            arg("to", n),
                            arg("cost_s", c),
                        ],
                    );
                }
                cur = n;
                cur_cost = c;
                stats.moves += 1;
            }
            None => {
                if tracer.is_enabled() {
                    tracer.instant_now(
                        "tuner",
                        "select",
                        vec![
                            arg("axis", axis.name),
                            arg("value", cur),
                            arg("cost_s", cur_cost),
                            arg("evaluations", stats.evaluations),
                            arg("moves", stats.moves),
                        ],
                    );
                }
                return (cur, cur_cost, stats);
            }
        }
    }
}

/// Exhaustive search over a power-of-two axis (for optimality-gap
/// comparisons and small spaces like the variant choice).
pub fn exhaustive_pow2<F>(axis: Pow2Axis, eval: F) -> (usize, f64, SearchStats)
where
    F: FnMut(usize) -> f64,
{
    exhaustive_pow2_traced(axis, &Tracer::disabled(), eval)
}

/// [`exhaustive_pow2`] with the same search telemetry as
/// [`hill_climb_pow2_traced`]: one `probe` event per value visited plus a
/// final `select` event.
pub fn exhaustive_pow2_traced<F>(
    axis: Pow2Axis,
    tracer: &Tracer,
    mut eval: F,
) -> (usize, f64, SearchStats)
where
    F: FnMut(usize) -> f64,
{
    let mut best = (0usize, f64::INFINITY);
    let mut stats = SearchStats::default();
    for v in axis.values() {
        let c = eval(v);
        stats.evaluations += 1;
        if tracer.is_enabled() {
            tracer.instant_now(
                "tuner",
                "probe",
                vec![arg("axis", axis.name), arg("value", v), arg("cost_s", c)],
            );
        }
        if c < best.1 {
            best = (v, c);
        }
    }
    if tracer.is_enabled() {
        tracer.instant_now(
            "tuner",
            "select",
            vec![
                arg("axis", axis.name),
                arg("value", best.0),
                arg("cost_s", best.1),
                arg("evaluations", stats.evaluations),
                arg("moves", stats.moves),
            ],
        );
    }
    (best.0, best.1, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis() -> Pow2Axis {
        Pow2Axis::new("x", 16, 1024)
    }

    /// A unimodal cost with minimum at 128.
    fn vee(v: usize) -> f64 {
        ((v as f64).log2() - 7.0).abs()
    }

    #[test]
    fn climbs_to_unimodal_minimum_from_anywhere() {
        for start in [16usize, 64, 128, 512, 1024] {
            let (best, cost, _) = hill_climb_pow2(axis(), start, vee);
            assert_eq!(best, 128, "start={start}");
            assert_eq!(cost, 0.0);
        }
    }

    #[test]
    fn good_seed_needs_fewer_evaluations() {
        let (_, _, near) = hill_climb_pow2(axis(), 128, vee);
        let (_, _, far) = hill_climb_pow2(axis(), 1024, vee);
        assert!(near.evaluations < far.evaluations);
        // Seeded at the optimum: probes itself + two neighbours only.
        assert_eq!(near.evaluations, 3);
        assert_eq!(near.moves, 0);
    }

    #[test]
    fn start_clamped_onto_axis() {
        let (best, _, _) = hill_climb_pow2(axis(), 100_000, vee);
        assert_eq!(best, 128);
        let (best, _, _) = hill_climb_pow2(axis(), 1, vee);
        assert_eq!(best, 128);
    }

    #[test]
    fn memoisation_counts_distinct_probes_only() {
        let mut calls = 0usize;
        let (_, _, stats) = hill_climb_pow2(axis(), 1024, |v| {
            calls += 1;
            vee(v)
        });
        assert_eq!(calls, stats.evaluations);
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let (best, cost, stats) = exhaustive_pow2(axis(), vee);
        assert_eq!(best, 128);
        assert_eq!(cost, 0.0);
        assert_eq!(stats.evaluations, axis().len());
    }

    #[test]
    fn hill_climb_cheaper_than_exhaustive_on_good_seed() {
        let (_, _, hc) = hill_climb_pow2(axis(), 256, vee);
        let (_, _, ex) = exhaustive_pow2(axis(), vee);
        assert!(hc.evaluations < ex.evaluations);
    }

    #[test]
    fn hill_climb_stops_at_local_minimum_of_bimodal_cost() {
        // Bimodal: minima at 16 (global) and 512 (local). Seeded at 1024 the
        // climber lands in the local minimum — exactly the behaviour the
        // paper accepts in exchange for the pruned search.
        let bimodal = |v: usize| -> f64 {
            match v {
                16 => 0.0,
                32 => 2.0,
                64 => 3.0,
                128 => 2.5,
                256 => 2.0,
                512 => 1.0,
                1024 => 1.5,
                _ => 10.0,
            }
        };
        let (best, _, _) = hill_climb_pow2(axis(), 1024, bimodal);
        assert_eq!(best, 512);
        let (best, _, _) = hill_climb_pow2(axis(), 32, bimodal);
        assert_eq!(best, 16);
    }
}
