//! Micro-benchmark harness for the dynamic tuner: generates (and caches)
//! tuning workloads and measures candidate configurations on the simulated
//! device.

use std::collections::HashMap;
use trisolve_core::kernels::GpuScalar;
use trisolve_core::{solver, CoreError, SolverParams};
use trisolve_gpu_sim::Gpu;
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
use trisolve_tridiag::SystemBatch;

/// Deterministic seed for tuning workloads: tuning must be reproducible
/// run-to-run so the cache stays meaningful.
const TUNING_SEED: u64 = 0x0007_1215_017e;

/// Generates and caches tuning workloads; measures configurations.
pub struct Microbench<T: GpuScalar> {
    batches: HashMap<WorkloadShape, SystemBatch<T>>,
    /// Total configurations measured (for reporting tuning cost).
    pub measurements: usize,
}

impl<T: GpuScalar> Default for Microbench<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: GpuScalar> Microbench<T> {
    /// Fresh, empty harness.
    pub fn new() -> Self {
        Self {
            batches: HashMap::new(),
            measurements: 0,
        }
    }

    /// The (cached) tuning batch for a workload shape.
    pub fn batch(&mut self, shape: WorkloadShape) -> &SystemBatch<T> {
        self.batches
            .entry(shape)
            .or_insert_with(|| random_dominant(shape, TUNING_SEED).expect("valid tuning shape"))
    }

    /// Measure the simulated solve time of `params` on `shape`, in seconds.
    ///
    /// Configurations that cannot run (invalid on the device, numerical
    /// breakdown) cost `+inf`, so searches simply step around them.
    pub fn measure(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
        params: &SolverParams,
    ) -> f64 {
        self.measurements += 1;
        let batch = self
            .batches
            .entry(shape)
            .or_insert_with(|| random_dominant(shape, TUNING_SEED).expect("valid tuning shape"));
        match solver::measure_solve_time(gpu, batch, params) {
            Ok(t) => t,
            Err(CoreError::BadParams { .. })
            | Err(CoreError::Device(_))
            | Err(CoreError::NumericalBreakdown { .. }) => f64::INFINITY,
            Err(_) => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::BaseVariant;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn measures_and_counts() {
        let mut mb: Microbench<f32> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::gtx_470());
        let shape = WorkloadShape::new(32, 512);
        let p = SolverParams::default_untuned();
        let t1 = mb.measure(&mut gpu, shape, &p);
        let t2 = mb.measure(&mut gpu, shape, &p);
        assert!(t1.is_finite() && t1 > 0.0);
        assert_eq!(t1, t2); // deterministic
        assert_eq!(mb.measurements, 2);
    }

    #[test]
    fn invalid_configs_cost_infinity() {
        let mut mb: Microbench<f32> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let shape = WorkloadShape::new(8, 1024);
        let p = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 1024, // too large for the 8800
            thomas_switch: 64,
            variant: BaseVariant::Strided,
        };
        assert!(mb.measure(&mut gpu, shape, &p).is_infinite());
    }

    #[test]
    fn batches_are_cached() {
        let mut mb: Microbench<f32> = Microbench::new();
        let shape = WorkloadShape::new(4, 256);
        let p1 = mb.batch(shape) as *const _;
        let p2 = mb.batch(shape) as *const _;
        assert_eq!(p1, p2);
    }
}
