//! Micro-benchmark harness for the dynamic tuner: generates (and caches)
//! tuning workloads and measures candidate configurations on the simulated
//! device through reusable [`SolveSession`]s.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use trisolve_analyze::statically_rejected;
use trisolve_core::engine::SolveSession;
use trisolve_core::kernels::{elem_bytes, GpuScalar};
use trisolve_core::SolverParams;
use trisolve_gpu_sim::Gpu;
use trisolve_obs::arg;
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
use trisolve_tridiag::SystemBatch;

/// Deterministic seed for tuning workloads: tuning must be reproducible
/// run-to-run so the cache stays meaningful.
const TUNING_SEED: u64 = 0x0007_1215_017e;

/// Generates and caches tuning workloads; measures configurations.
///
/// Both the workload batch *and* a [`SolveSession`] are cached per shape,
/// so the tuner's hot loop — hundreds of measurements over a handful of
/// shapes — pays for padding, plan construction and device allocation once
/// per shape instead of once per measurement. A harness is therefore tied
/// to the first [`Gpu`] it measures each shape on (sessions hold device
/// buffers); use one harness per device, as the tuners do.
pub struct Microbench<T: GpuScalar> {
    batches: HashMap<WorkloadShape, SystemBatch<T>>,
    sessions: HashMap<WorkloadShape, SolveSession<T>>,
    reuse_sessions: bool,
    /// Total configurations measured (for reporting tuning cost).
    pub measurements: usize,
    /// Measurements that hit at least one transient device fault (see
    /// [`trisolve_gpu_sim::fault`]). Each is retried up to
    /// [`FAULT_RETRIES`] times before the candidate is written off as
    /// unrunnable — the search then steps around it instead of aborting.
    pub faulted_measurements: usize,
    /// Candidates the static analyzer proved invalid before any simulated
    /// timing (see [`trisolve_analyze::statically_rejected`]). Each still
    /// counts as a measurement and costs `+inf` — exactly what the
    /// execution engine would have returned — so pruning changes *when*
    /// the verdict is known, never the search trajectory.
    pub pruned_candidates: usize,
}

/// Transient-fault retries per measurement before a candidate costs `+inf`.
pub const FAULT_RETRIES: usize = 2;

impl<T: GpuScalar> Default for Microbench<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: GpuScalar> std::fmt::Debug for Microbench<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Microbench")
            .field("cached_batches", &self.batches.len())
            .field("cached_sessions", &self.sessions.len())
            .field("reuse_sessions", &self.reuse_sessions)
            .field("measurements", &self.measurements)
            .finish()
    }
}

impl<T: GpuScalar> Microbench<T> {
    /// Fresh, empty harness.
    pub fn new() -> Self {
        Self {
            batches: HashMap::new(),
            sessions: HashMap::new(),
            reuse_sessions: true,
            measurements: 0,
            faulted_measurements: 0,
            pruned_candidates: 0,
        }
    }

    /// A harness that builds (and drops) a fresh session per measurement —
    /// the pre-engine behaviour, kept for the `tuner_session_reuse` bench
    /// so the reuse speedup stays visible in the perf trajectory.
    pub fn without_session_reuse() -> Self {
        Self {
            reuse_sessions: false,
            ..Self::new()
        }
    }

    /// The (cached) tuning batch for a workload shape.
    pub fn batch(&mut self, shape: WorkloadShape) -> &SystemBatch<T> {
        self.batches
            .entry(shape)
            .or_insert_with(|| random_dominant(shape, TUNING_SEED).expect("valid tuning shape"))
    }

    /// Measure the simulated solve time of `params` on `shape`, in seconds.
    ///
    /// Configurations that cannot run (invalid on the device, numerical
    /// breakdown) cost `+inf`, so searches simply step around them.
    ///
    /// When the device has a tracer attached, every measurement emits one
    /// `"tuner"/"eval"` event carrying the candidate's parameters, its
    /// measured cost (`null` when unrunnable) and a `runnable` flag — the
    /// raw material for reconstructing the tuner's search tree.
    pub fn measure(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
        params: &SolverParams,
    ) -> f64 {
        let tracer = gpu.tracer().clone();
        // Static pre-check: a candidate the analyzer proves the engine
        // would reject (plan construction or launch validation) is priced
        // +inf without touching the device. `statically_rejected` mirrors
        // `SolveSession::plan_for` exactly, so the cost function — and
        // therefore the tuned output — is bit-identical to measuring it.
        let pruned = statically_rejected(shape, params, gpu.spec().queryable(), elem_bytes::<T>());
        let (cost, fault_retries) = if pruned.is_some() {
            self.measurements += 1;
            self.pruned_candidates += 1;
            (f64::INFINITY, 0)
        } else {
            self.measure_inner(gpu, shape, params)
        };
        if tracer.is_enabled() {
            tracer.instant_now(
                "tuner",
                "eval",
                vec![
                    arg("systems", shape.num_systems),
                    arg("size", shape.system_size),
                    arg("stage1_target", params.stage1_target_systems),
                    arg("onchip_size", params.onchip_size),
                    arg("thomas_switch", params.thomas_switch),
                    arg("variant", format!("{:?}", params.variant)),
                    arg("layout", params.variant.layout_name()),
                    arg("cost_s", cost),
                    arg("runnable", cost.is_finite()),
                    arg("fault_retries", fault_retries),
                    arg("pruned", pruned.is_some()),
                ],
            );
            tracer.counter_add("tuner_evals", 1);
            if pruned.is_some() {
                tracer.counter_add("candidates_pruned", 1);
                tracer.counter_add("proofs_failed", 1);
            }
        }
        cost
    }

    fn measure_inner(
        &mut self,
        gpu: &mut Gpu<T>,
        shape: WorkloadShape,
        params: &SolverParams,
    ) -> (f64, usize) {
        self.measurements += 1;
        let batch = self
            .batches
            .entry(shape)
            .or_insert_with(|| random_dominant(shape, TUNING_SEED).expect("valid tuning shape"));
        if !self.reuse_sessions {
            // Pre-engine behaviour: a full one-shot solve per measurement —
            // fresh session, re-allocation, and a result download.
            let t = SolveSession::new(gpu, shape)
                .and_then(|mut s| s.solve(gpu, batch, params))
                .map(|o| o.sim_time_s);
            return (t.unwrap_or(f64::INFINITY), 0);
        }
        let session = match self.sessions.entry(shape) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => match SolveSession::new(gpu, shape) {
                Ok(s) => v.insert(s),
                // The shape itself doesn't fit the device: every parameter
                // point is unrunnable.
                Err(_) => return (f64::INFINITY, 0),
            },
        };
        // Transient device faults (injected launch failures, timeouts) get
        // a short retry budget so one blip does not disqualify a good
        // candidate; a candidate still faulting afterwards is skipped
        // (+inf) rather than aborting the whole search.
        let mut fault_retries = 0usize;
        loop {
            match session.measure(gpu, batch, params) {
                Ok(t) => return (t, fault_retries),
                Err(e) if e.is_transient() && fault_retries < FAULT_RETRIES => {
                    if fault_retries == 0 {
                        self.faulted_measurements += 1;
                    }
                    fault_retries += 1;
                }
                // Deterministic failures (bad params, validation, algebra,
                // numerical breakdown) and transient faults past the retry
                // budget: unrunnable.
                Err(_) => return (f64::INFINITY, fault_retries),
            }
        }
    }

    /// Number of shapes with a live cached session.
    pub fn cached_sessions(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::{solver, BaseVariant};
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn measures_and_counts() {
        let mut mb: Microbench<f32> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::gtx_470());
        let shape = WorkloadShape::new(32, 512);
        let p = SolverParams::default_untuned();
        let t1 = mb.measure(&mut gpu, shape, &p);
        let t2 = mb.measure(&mut gpu, shape, &p);
        assert!(t1.is_finite() && t1 > 0.0);
        assert_eq!(t1, t2); // deterministic
        assert_eq!(mb.measurements, 2);
        assert_eq!(mb.cached_sessions(), 1);
    }

    #[test]
    fn measurements_match_one_shot_solves() {
        let mut mb: Microbench<f64> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::gtx_470());
        let shape = WorkloadShape::new(8, 1024);
        let p = SolverParams::default_untuned();
        let t_session = mb.measure(&mut gpu, shape, &p);
        let batch = random_dominant::<f64>(shape, TUNING_SEED).unwrap();
        let mut fresh: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let t_one_shot = solver::measure_solve_time(&mut fresh, &batch, &p).unwrap();
        assert_eq!(t_session, t_one_shot);
    }

    #[test]
    fn invalid_configs_cost_infinity() {
        let mut mb: Microbench<f32> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let shape = WorkloadShape::new(8, 1024);
        let p = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 1024, // too large for the 8800
            thomas_switch: 64,
            variant: BaseVariant::Strided,
        };
        assert!(mb.measure(&mut gpu, shape, &p).is_infinite());
        // The session survives the rejected point and keeps serving.
        assert!(mb
            .measure(&mut gpu, shape, &SolverParams::default_untuned())
            .is_finite());
        assert_eq!(mb.cached_sessions(), 1);
    }

    #[test]
    fn transient_faults_are_retried_not_fatal() {
        use trisolve_gpu_sim::FaultPlan;
        let mut mb: Microbench<f32> = Microbench::new();
        // One guaranteed launch failure, then a clean device: the harness
        // should absorb the fault, retry, and still produce a finite cost.
        let plan = FaultPlan::seeded(11)
            .with_launch_failures(1.0)
            .with_max_faults(1);
        let mut gpu = Gpu::with_faults(DeviceSpec::gtx_470(), plan);
        let shape = WorkloadShape::new(16, 512);
        let p = SolverParams::default_untuned();
        let t = mb.measure(&mut gpu, shape, &p);
        assert!(t.is_finite(), "fault should be retried, got {t}");
        assert_eq!(mb.faulted_measurements, 1);
        assert_eq!(mb.measurements, 1);
        // A clean follow-up measurement does not count as faulted.
        let t2 = mb.measure(&mut gpu, shape, &p);
        assert!(t2.is_finite());
        assert_eq!(mb.faulted_measurements, 1);
    }

    #[test]
    fn persistent_faults_cost_infinity() {
        use trisolve_gpu_sim::FaultPlan;
        let mut mb: Microbench<f32> = Microbench::new();
        // Unbounded guaranteed failures: the retry budget runs out and the
        // candidate is priced out of the search instead of aborting it.
        let plan = FaultPlan::seeded(3).with_launch_failures(1.0);
        let mut gpu = Gpu::with_faults(DeviceSpec::gtx_470(), plan);
        let shape = WorkloadShape::new(16, 512);
        let t = mb.measure(&mut gpu, shape, &SolverParams::default_untuned());
        assert!(t.is_infinite());
        assert_eq!(mb.faulted_measurements, 1);
    }

    #[test]
    fn statically_rejected_candidates_are_pruned_not_measured() {
        let mut mb: Microbench<f32> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let shape = WorkloadShape::new(8, 1024);
        let bad = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 1024, // provably too large for the 8800
            thomas_switch: 64,
            variant: BaseVariant::Strided,
        };
        assert!(mb.measure(&mut gpu, shape, &bad).is_infinite());
        assert_eq!(mb.pruned_candidates, 1);
        assert_eq!(mb.measurements, 1); // still counts as an evaluation
        assert_eq!(mb.cached_sessions(), 0); // the device was never touched
                                             // A runnable candidate is measured, not pruned.
        let t = mb.measure(&mut gpu, shape, &SolverParams::default_untuned());
        assert!(t.is_finite());
        assert_eq!(mb.pruned_candidates, 1);
        assert_eq!(mb.measurements, 2);
    }

    #[test]
    fn pruning_agrees_with_the_engine_verdict() {
        use trisolve_analyze::statically_rejected;
        // Exactness over a parameter sweep: a candidate is pruned iff the
        // un-pruned harness would have priced it +inf via plan rejection;
        // un-pruned candidates always measure finite on this shape.
        let mut mb: Microbench<f32> = Microbench::new();
        let mut gpu = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let shape = WorkloadShape::new(16, 2048);
        let q = gpu.spec().queryable().clone();
        for onchip in [64usize, 128, 256, 512, 1024] {
            let p = SolverParams {
                stage1_target_systems: 16,
                onchip_size: onchip,
                thomas_switch: 32,
                variant: BaseVariant::Strided,
            };
            let before = mb.pruned_candidates;
            let cost = mb.measure(&mut gpu, shape, &p);
            let pruned = mb.pruned_candidates > before;
            assert_eq!(
                pruned,
                statically_rejected(shape, &p, &q, 4).is_some(),
                "onchip={onchip}"
            );
            assert_eq!(pruned, cost.is_infinite(), "onchip={onchip}");
        }
        assert!(mb.pruned_candidates >= 1);
    }

    #[test]
    fn batches_are_cached() {
        let mut mb: Microbench<f32> = Microbench::new();
        let shape = WorkloadShape::new(4, 256);
        let p1 = mb.batch(shape) as *const _;
        let p2 = mb.batch(shape) as *const _;
        assert_eq!(p1, p2);
    }
}
