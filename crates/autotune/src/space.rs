//! Parameter-space description and the decoupling arithmetic (§IV-D).
//!
//! > "if a parameter P1 had 16 possibilities, and P2 has 32 possibilities,
//! > and we identify P1 and P2 as independent of each other, then we must
//! > test only 16+32=48 possibilities instead of 16×32=512."

use serde::{Deserialize, Serialize};

/// A power-of-two tuning axis (`min..=max`, both powers of two).
///
/// Every switch point of the multi-stage solver lives on such an axis: PCR
/// splits halve systems, so only power-of-two values are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pow2Axis {
    /// Axis name, e.g. `"onchip_size"`.
    pub name: &'static str,
    /// Smallest admissible value (inclusive, power of two).
    pub min: usize,
    /// Largest admissible value (inclusive, power of two).
    pub max: usize,
}

impl Pow2Axis {
    /// Create an axis; panics if the bounds are not powers of two or empty.
    pub fn new(name: &'static str, min: usize, max: usize) -> Self {
        assert!(
            min.is_power_of_two(),
            "{name}: min {min} not a power of two"
        );
        assert!(
            max.is_power_of_two(),
            "{name}: max {max} not a power of two"
        );
        assert!(min <= max, "{name}: empty range {min}..={max}");
        Self { name, min, max }
    }

    /// All admissible values, ascending.
    pub fn values(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut x = self.min;
        while x <= self.max {
            v.push(x);
            x *= 2;
        }
        v
    }

    /// Number of admissible values.
    pub fn len(&self) -> usize {
        (self.max.trailing_zeros() - self.min.trailing_zeros()) as usize + 1
    }

    /// True when the axis has a single value.
    pub fn is_empty(&self) -> bool {
        false // a validated axis always has at least one value
    }

    /// True if `v` lies on the axis.
    pub fn contains(&self, v: usize) -> bool {
        v.is_power_of_two() && v >= self.min && v <= self.max
    }

    /// The (up to two) neighbours of `v` on the axis.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        debug_assert!(self.contains(v));
        let mut out = Vec::with_capacity(2);
        if v / 2 >= self.min {
            out.push(v / 2);
        }
        if v * 2 <= self.max {
            out.push(v * 2);
        }
        out
    }

    /// Clamp an arbitrary value onto the axis (nearest power of two within
    /// bounds, rounding down).
    pub fn clamp(&self, v: usize) -> usize {
        let mut p = self.min;
        while p * 2 <= v && p * 2 <= self.max {
            p *= 2;
        }
        p
    }

    /// Restrict the axis to `cap` (a power of two), returning the shrunk
    /// axis and the values cut off — the second pruning strategy: axes
    /// are narrowed by *proofs* before any candidate is measured, and
    /// the pruned values are reported rather than silently never tried.
    /// `cap` below `min` collapses the axis to its single smallest value.
    pub fn restrict_max(&self, cap: usize) -> (Pow2Axis, Vec<usize>) {
        assert!(
            cap.is_power_of_two(),
            "{}: cap {cap} not a power of two",
            self.name
        );
        let max = self.max.min(cap);
        let min = self.min.min(max);
        let pruned = self.values().into_iter().filter(|&v| v > max).collect();
        (Pow2Axis::new(self.name, min, max), pruned)
    }
}

/// Evaluations needed to search several axes **jointly** (the Cartesian
/// product an untamed exhaustive tuner would face).
pub fn joint_evaluations(axes: &[Pow2Axis]) -> usize {
    axes.iter().map(Pow2Axis::len).product()
}

/// Evaluations needed when the axes are **decoupled** and searched
/// independently — the paper's first pruning strategy.
pub fn decoupled_evaluations(axes: &[Pow2Axis]) -> usize {
    axes.iter().map(Pow2Axis::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_values_and_len() {
        let a = Pow2Axis::new("t4", 16, 512);
        assert_eq!(a.values(), vec![16, 32, 64, 128, 256, 512]);
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
    }

    #[test]
    fn axis_membership_and_neighbors() {
        let a = Pow2Axis::new("s3", 128, 1024);
        assert!(a.contains(128));
        assert!(a.contains(1024));
        assert!(!a.contains(64));
        assert!(!a.contains(192));
        assert_eq!(a.neighbors(128), vec![256]);
        assert_eq!(a.neighbors(512), vec![256, 1024]);
        assert_eq!(a.neighbors(1024), vec![512]);
    }

    #[test]
    fn axis_clamp() {
        let a = Pow2Axis::new("s3", 128, 1024);
        assert_eq!(a.clamp(1), 128);
        assert_eq!(a.clamp(300), 256);
        assert_eq!(a.clamp(512), 512);
        assert_eq!(a.clamp(1 << 20), 1024);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn axis_rejects_bad_bounds() {
        Pow2Axis::new("bad", 3, 8);
    }

    #[test]
    fn paper_pruning_arithmetic() {
        // The paper's example: 16 x 32 = 512 joint vs 16 + 32 = 48 decoupled.
        let p1 = Pow2Axis::new("p1", 2, 1 << 16); // 16 values
        let p2 = Pow2Axis::new("p2", 1, 1 << 31); // 32 values
        assert_eq!(p1.len(), 16);
        assert_eq!(p2.len(), 32);
        assert_eq!(joint_evaluations(&[p1, p2]), 512);
        assert_eq!(decoupled_evaluations(&[p1, p2]), 48);
    }

    #[test]
    fn restrict_max_splits_off_the_infeasible_tail() {
        let a = Pow2Axis::new("s3", 32, 4096);
        let (shrunk, pruned) = a.restrict_max(1024);
        assert_eq!(shrunk, Pow2Axis::new("s3", 32, 1024));
        assert_eq!(pruned, vec![2048, 4096]);
        // A cap at or above max prunes nothing.
        let (same, none) = a.restrict_max(8192);
        assert_eq!(same, a);
        assert!(none.is_empty());
        // A cap below min collapses to the singleton axis at the cap.
        let (tiny, cut) = a.restrict_max(16);
        assert_eq!(tiny, Pow2Axis::new("s3", 16, 16));
        assert_eq!(cut.len(), a.len());
    }

    #[test]
    fn single_value_axis() {
        let a = Pow2Axis::new("fixed", 64, 64);
        assert_eq!(a.values(), vec![64]);
        assert!(a.neighbors(64).is_empty());
    }
}
