//! The "just solve it" convenience layer: tune-on-first-use with a
//! persistent cache, the workflow a downstream application wants.

use crate::cache::TuningCache;
use crate::tuners::{DynamicTuner, TunedConfig};
use trisolve_core::engine::{Backend, GpuBackend};
use trisolve_core::kernels::{elem_bytes, GpuScalar};
use trisolve_core::{Result, SolveOutcome};
use trisolve_gpu_sim::Gpu;
use trisolve_tridiag::workloads::WorkloadShape;
use trisolve_tridiag::SystemBatch;

/// Solve a batch with dynamically tuned parameters, tuning on first use and
/// caching the result under the device name (the paper's "save those
/// results for future runs" loop, packaged).
///
/// The cached configuration is keyed by device + element width; it is
/// refreshed when absent. Pass the same `cache` across calls (and persist
/// it with [`TuningCache::save`]) to amortise tuning completely.
pub fn solve_auto<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    batch: &SystemBatch<T>,
    cache: &mut TuningCache,
) -> Result<SolveOutcome<T>> {
    let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
    let params = ensure_tuned(gpu, shape, cache).params_for(shape);
    let mut backend = GpuBackend::new(gpu);
    let mut session = backend.prepare(shape, &params)?;
    backend.solve(&mut session, batch, &params)
}

/// Fetch the cached configuration for this device, element width and
/// workload class, or run the dynamic tuner for `shape` and cache the
/// result under the shape's class.
pub fn ensure_tuned<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    shape: WorkloadShape,
    cache: &mut TuningCache,
) -> TunedConfig {
    let name = gpu.spec().name().to_string();
    if let Some(cfg) = cache.get_for(&name, elem_bytes::<T>(), shape) {
        return cfg.clone();
    }
    let mut tuner = DynamicTuner::new();
    let cfg = tuner.tune_for(gpu, shape);
    cache.insert_for(&name, shape, cfg.clone());
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::random_dominant;

    #[test]
    fn solve_auto_tunes_once_then_reuses() {
        let shape = WorkloadShape::new(16, 2048);
        let batch = random_dominant::<f32>(shape, 3).unwrap();
        let mut cache = TuningCache::new();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());

        assert!(cache.is_empty());
        let out1 = solve_auto(&mut gpu, &batch, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        let evals_after_first = cache
            .get_for("GeForce GTX 280", 4, shape)
            .unwrap()
            .evaluations;

        // Second call: no re-tuning (cache unchanged), same result.
        let out2 = solve_auto(&mut gpu, &batch, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache
                .get_for("GeForce GTX 280", 4, shape)
                .unwrap()
                .evaluations,
            evals_after_first
        );
        assert_eq!(out1.x, out2.x);
        assert!(batch_worst_relative_residual(&batch, &out1.x).unwrap() < 1e-4);
    }

    #[test]
    fn cache_is_per_device_and_width() {
        let shape = WorkloadShape::new(8, 1024);
        let mut cache = TuningCache::new();
        let mut g32: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let mut g64: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        ensure_tuned(&mut g32, shape, &mut cache);
        ensure_tuned(&mut g64, shape, &mut cache);
        let mut g8800: Gpu<f32> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        ensure_tuned(&mut g8800, shape, &mut cache);
        assert_eq!(cache.len(), 3);
        // f64 config respects the device's f64 on-chip cap.
        let cfg64 = cache.get_for("GeForce GTX 470", 8, shape).unwrap();
        assert!(cfg64.onchip_size <= 1024);
        assert_eq!(cfg64.elem_bytes, 8);
    }
}
