//! On-disk tuning cache: "we then save this switch point parameter for
//! future runs" (§IV-D). JSON, keyed by device name + element width.

use crate::tuners::TunedConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// A persistent map from device identity to tuned configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct TuningCache {
    entries: BTreeMap<String, TunedConfig>,
}

impl TuningCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache key for a device/element-width pair.
    pub fn key(device_name: &str, elem_bytes: usize) -> String {
        format!("{device_name}/f{}", elem_bytes * 8)
    }

    /// The workload *class* of a shape: log2 buckets of system count and
    /// size. Tuned configurations transfer well within a class (the tuner's
    /// decisions depend on how the workload relates to machine capacity,
    /// which moves by powers of two), so this is the cache granularity for
    /// per-workload tuning.
    pub fn shape_class(shape: trisolve_tridiag::workloads::WorkloadShape) -> String {
        let bucket = |v: usize| v.max(1).next_power_of_two().trailing_zeros();
        format!(
            "m2^{}-n2^{}",
            bucket(shape.num_systems),
            bucket(shape.system_size)
        )
    }

    /// Cache key for a device/element-width/workload-class triple.
    pub fn key_for(
        device_name: &str,
        elem_bytes: usize,
        shape: trisolve_tridiag::workloads::WorkloadShape,
    ) -> String {
        format!(
            "{}/{}",
            Self::key(device_name, elem_bytes),
            Self::shape_class(shape)
        )
    }

    /// Store a configuration tuned for a specific workload class.
    pub fn insert_for(
        &mut self,
        device_name: &str,
        shape: trisolve_tridiag::workloads::WorkloadShape,
        config: TunedConfig,
    ) {
        self.entries
            .insert(Self::key_for(device_name, config.elem_bytes, shape), config);
    }

    /// Look up the configuration for a workload class, falling back to the
    /// device-wide entry if no class-specific one exists.
    pub fn get_for(
        &self,
        device_name: &str,
        elem_bytes: usize,
        shape: trisolve_tridiag::workloads::WorkloadShape,
    ) -> Option<&TunedConfig> {
        self.entries
            .get(&Self::key_for(device_name, elem_bytes, shape))
            .or_else(|| self.get(device_name, elem_bytes))
    }

    /// Store a tuned configuration.
    pub fn insert(&mut self, device_name: &str, config: TunedConfig) {
        self.entries
            .insert(Self::key(device_name, config.elem_bytes), config);
    }

    /// Look up a configuration.
    pub fn get(&self, device_name: &str, elem_bytes: usize) -> Option<&TunedConfig> {
        self.entries.get(&Self::key(device_name, elem_bytes))
    }

    /// Number of cached configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("cache is always serialisable")
    }

    /// Parse from a JSON string.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file; a missing file yields an empty cache.
    pub fn load(path: &Path) -> io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(s) => Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(onchip: usize, eb: usize) -> TunedConfig {
        TunedConfig {
            onchip_size: onchip,
            thomas_switch: 64,
            strided_from_stride: 8,
            interleaved_below_size: 0,
            interleaved_from_systems: 0,
            stage1_target_systems: 16,
            elem_bytes: eb,
            evaluations: 42,
        }
    }

    #[test]
    fn configs_cached_before_the_layout_axis_still_parse() {
        use trisolve_core::BaseVariant;
        use trisolve_tridiag::workloads::WorkloadShape;
        // A cache serialised before `interleaved_*` existed: the fields are
        // absent from the JSON. Deserialisation must default them to 0 —
        // fast path disabled — so old caches keep their exact behaviour.
        let old = r#"{"entries":{"GeForce GTX 470/f32":{
            "onchip_size":512,"thomas_switch":64,"strided_from_stride":8,
            "stage1_target_systems":16,"elem_bytes":4,"evaluations":42}}}"#;
        let cache = TuningCache::from_json(old).unwrap();
        let cfg = cache.get("GeForce GTX 470", 4).unwrap();
        assert_eq!(cfg.interleaved_below_size, 0);
        assert_eq!(cfg.interleaved_from_systems, 0);
        // Even a deep many-small batch stays on the staged pipeline.
        let p = cfg.params_for(WorkloadShape::new(1 << 16, 32));
        assert_ne!(p.variant, BaseVariant::Interleaved);
    }

    #[test]
    fn shape_classes_bucket_by_powers_of_two() {
        use trisolve_tridiag::workloads::WorkloadShape;
        let c = |m, n| TuningCache::shape_class(WorkloadShape::new(m, n));
        assert_eq!(c(1024, 1024), c(1000, 1024)); // 1000 rounds up to 1024
        assert_ne!(c(1024, 1024), c(1, 2 * 1024 * 1024));
        assert_eq!(c(1, 1), "m2^0-n2^0");
    }

    #[test]
    fn class_specific_entries_override_device_wide() {
        use trisolve_tridiag::workloads::WorkloadShape;
        let mut cache = TuningCache::new();
        let device_wide = cfg(256, 4);
        let per_class = cfg(512, 4);
        cache.insert("GTX 470", device_wide.clone());
        let shape = WorkloadShape::new(1, 1 << 21);
        cache.insert_for("GTX 470", shape, per_class.clone());
        // The huge-single-system class sees its own config...
        assert_eq!(cache.get_for("GTX 470", 4, shape), Some(&per_class));
        // ...other classes fall back to the device-wide entry.
        let other = WorkloadShape::new(1024, 1024);
        assert_eq!(cache.get_for("GTX 470", 4, other), Some(&device_wide));
        // ...and a device with nothing cached sees nothing.
        assert_eq!(cache.get_for("GTX 280", 4, shape), None);
    }

    #[test]
    fn insert_get_round_trip() {
        let mut cache = TuningCache::new();
        assert!(cache.is_empty());
        cache.insert("GeForce GTX 470", cfg(512, 4));
        cache.insert("GeForce GTX 470", cfg(256, 8));
        cache.insert("GeForce GTX 280", cfg(512, 4));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get("GeForce GTX 470", 4).unwrap().onchip_size, 512);
        assert_eq!(cache.get("GeForce GTX 470", 8).unwrap().onchip_size, 256);
        assert!(cache.get("GeForce 8800 GTX", 4).is_none());
    }

    #[test]
    fn json_round_trip() {
        let mut cache = TuningCache::new();
        cache.insert("GTX 470", cfg(512, 4));
        let json = cache.to_json();
        let back = TuningCache::from_json(&json).unwrap();
        assert_eq!(cache, back);
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join("trisolve-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning.json");
        let _ = std::fs::remove_file(&path);

        // Missing file: empty cache, no error.
        let empty = TuningCache::load(&path).unwrap();
        assert!(empty.is_empty());

        let mut cache = TuningCache::new();
        cache.insert("GTX 280", cfg(512, 4));
        cache.save(&path).unwrap();
        let loaded = TuningCache::load(&path).unwrap();
        assert_eq!(cache, loaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let dir = std::env::temp_dir().join("trisolve-cache-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(TuningCache::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
