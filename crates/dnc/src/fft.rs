//! Auto-tuned multi-stage FFT — the *other* divide-and-conquer algorithm
//! the paper names (§I: "a large class of divide-and-conquer problems such
//! as fast Fourier Transforms (FFT) and quicksort").
//!
//! The classic **four-step** decomposition maps exactly onto the paper's
//! stage anatomy: a transform of size `N = N1·N2` becomes
//!
//! 1. `N2` on-chip FFTs of size `N1` over stride-`N2` columns (strided
//!    gather, like the base kernel's strided variant), fused with the
//!    twiddle multiplication;
//! 2. `N1` on-chip FFTs of size `N2` over the intermediate array, scattered
//!    back to the output positions.
//!
//! Both `N1` and `N2` must fit in shared memory, so the *split point* `N1`
//! is a tunable switch with the same flavour as the solver's on-chip size:
//! bigger `N1` means fewer, larger on-chip transforms (occupancy pressure),
//! smaller `N1` means a larger strided dimension (coalescing pressure).
//! [`tune_fft`] hill-climbs it from a machine-query seed.
//!
//! Complex data travels as two separate `f64` buffers (re/im), so the
//! simulator's element model stays scalar.

use trisolve_autotune::{hill_climb_pow2, Pow2Axis};
use trisolve_gpu_sim::{Gpu, KernelStats, LaunchConfig, OutMode, QueryableProps, SimError};

/// Tunable parameters of the multi-stage FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftParams {
    /// First-dimension split `N1` (power of two). Both `N1` and `N/N1`
    /// must fit on-chip.
    pub n1: usize,
}

/// Result of a multi-stage FFT.
#[derive(Debug, Clone)]
pub struct FftOutcome {
    /// Real parts of the spectrum.
    pub re: Vec<f64>,
    /// Imaginary parts of the spectrum.
    pub im: Vec<f64>,
    /// Simulated seconds.
    pub sim_time_s: f64,
    /// Per-launch profile.
    pub kernel_stats: Vec<KernelStats>,
}

/// Largest on-chip FFT size for a device: two complex working arrays of
/// `f64` in shared memory.
pub fn max_onchip_fft(q: &QueryableProps) -> usize {
    let by_shmem = q.shared_mem_per_sm_bytes / (2 * 8);
    let by_threads = q.max_threads_per_block;
    let mut p = 1usize;
    while p * 2 <= by_shmem.min(by_threads * 2) {
        p *= 2;
    }
    p
}

/// Machine-query guess: a balanced split, clamped so both factors fit.
pub fn static_fft_params(q: &QueryableProps, n: usize) -> FftParams {
    let cap = max_onchip_fft(q);
    let mut n1 = 1usize;
    while n1 * n1 < n {
        n1 *= 2;
    }
    FftParams {
        n1: n1.min(cap).max(n.div_ceil(cap).next_power_of_two()),
    }
}

/// Forward DFT of `re/im` (length a power of two) on the simulated GPU via
/// the four-step decomposition. Lengths up to `max_onchip_fft(..)²` are
/// supported (one recursion level, like the paper's two splitting stages).
pub fn fft_on_gpu(
    gpu: &mut Gpu<f64>,
    re: &[f64],
    im: &[f64],
    params: FftParams,
) -> Result<FftOutcome, SimError> {
    let n = re.len();
    if n == 0 || !n.is_power_of_two() || im.len() != n {
        return Err(SimError::InvalidLaunch {
            detail: format!("FFT length {n} must be a nonzero power of two (re/im equal)"),
        });
    }
    let cap = max_onchip_fft(gpu.spec().queryable());

    // Small transforms: a single on-chip kernel, one block.
    if n <= cap {
        return single_stage(gpu, re, im, n);
    }

    let n1 = params.n1;
    if !n1.is_power_of_two() || n1 > cap || !n.is_multiple_of(n1) {
        return Err(SimError::InvalidLaunch {
            detail: format!("invalid split n1={n1} for n={n} (cap {cap})"),
        });
    }
    let n2 = n / n1;
    if n2 > cap {
        return Err(SimError::InvalidLaunch {
            detail: format!("n2={n2} exceeds on-chip cap {cap}; choose a larger n1"),
        });
    }

    let src_re = gpu.alloc_from(re)?;
    let src_im = gpu.alloc_from(im)?;
    let mid_re = gpu.alloc(n)?;
    let mid_im = gpu.alloc(n)?;
    let out_re = gpu.alloc(n)?;
    let out_im = gpu.alloc(n)?;
    let t0 = gpu.elapsed_s();
    let launches_before = gpu.timeline().len();

    // ---- Kernel 1: column FFTs of size n1 + twiddles ---------------------
    // Block c gathers x[j*n2 + c] (stride n2), FFTs, multiplies by
    // W_N^{j·c}, and writes the transposed intermediate A_t[c*n1 + j]
    // (contiguous chunk per block).
    let cfg = LaunchConfig::new(format!("fft_cols[{n1}x{n2}]"), n2, (n1 / 2).clamp(32, 512))
        .with_regs(20)
        .with_shared_mem(2 * n1 * 8);
    gpu.launch(
        &cfg,
        &[src_re, src_im],
        &[
            (mid_re, OutMode::Chunked { chunk: n1 }),
            (mid_im, OutMode::Chunked { chunk: n1 }),
        ],
        |ctx, io| {
            let c = ctx.block_id as usize;
            let mut lre: Vec<f64> = (0..n1).map(|j| io.inputs[0][j * n2 + c]).collect();
            let mut lim: Vec<f64> = (0..n1).map(|j| io.inputs[1][j * n2 + c]).collect();
            ctx.gmem_read(2 * n1, n2);
            fft_in_place(&mut lre, &mut lim, false);
            meter_onchip_fft(ctx, n1);
            // Twiddle W_N^{j c} = exp(-2πi·j·c/N).
            for j in 0..n1 {
                let ang = -2.0 * std::f64::consts::PI * (j as f64) * (c as f64) / n as f64;
                let (s, co) = ang.sin_cos();
                let (a, b) = (lre[j], lim[j]);
                lre[j] = a * co - b * s;
                lim[j] = a * s + b * co;
            }
            ctx.ops(6 * n1);
            io.owned[0].copy_from_slice(&lre);
            io.owned[1].copy_from_slice(&lim);
            ctx.gmem_write(2 * n1, 1);
        },
    )?;

    // ---- Kernel 2: row FFTs of size n2, scatter to output ----------------
    // Block k1 gathers A_t[c*n1 + k1] (stride n1), FFTs over c, and writes
    // X[k2*n1 + k1] (stride n1).
    let cfg = LaunchConfig::new(format!("fft_rows[{n1}x{n2}]"), n1, (n2 / 2).clamp(32, 512))
        .with_regs(20)
        .with_shared_mem(2 * n2 * 8);
    gpu.launch(
        &cfg,
        &[mid_re, mid_im],
        &[(out_re, OutMode::Scattered), (out_im, OutMode::Scattered)],
        |ctx, io| {
            let k1 = ctx.block_id as usize;
            let mut lre: Vec<f64> = (0..n2).map(|c| io.inputs[0][c * n1 + k1]).collect();
            let mut lim: Vec<f64> = (0..n2).map(|c| io.inputs[1][c * n1 + k1]).collect();
            ctx.gmem_read(2 * n2, n1);
            fft_in_place(&mut lre, &mut lim, false);
            meter_onchip_fft(ctx, n2);
            for k2 in 0..n2 {
                io.scattered[0].set(k2 * n1 + k1, lre[k2]);
                io.scattered[1].set(k2 * n1 + k1, lim[k2]);
            }
            ctx.gmem_write(2 * n2, n1);
        },
    )?;

    let sim_time_s = gpu.elapsed_s() - t0;
    let kernel_stats = gpu.timeline()[launches_before..].to_vec();
    let re_out = gpu.download(out_re)?;
    let im_out = gpu.download(out_im)?;
    for id in [src_re, src_im, mid_re, mid_im, out_re, out_im] {
        gpu.free(id)?;
    }
    Ok(FftOutcome {
        re: re_out,
        im: im_out,
        sim_time_s,
        kernel_stats,
    })
}

fn single_stage(
    gpu: &mut Gpu<f64>,
    re: &[f64],
    im: &[f64],
    n: usize,
) -> Result<FftOutcome, SimError> {
    let src_re = gpu.alloc_from(re)?;
    let src_im = gpu.alloc_from(im)?;
    let out_re = gpu.alloc(n)?;
    let out_im = gpu.alloc(n)?;
    let t0 = gpu.elapsed_s();
    let launches_before = gpu.timeline().len();
    let cfg = LaunchConfig::new(format!("fft_single[{n}]"), 1, (n / 2).clamp(1, 512))
        .with_regs(20)
        .with_shared_mem(2 * n * 8);
    gpu.launch(
        &cfg,
        &[src_re, src_im],
        &[
            (out_re, OutMode::Chunked { chunk: n }),
            (out_im, OutMode::Chunked { chunk: n }),
        ],
        |ctx, io| {
            let mut lre = io.inputs[0].to_vec();
            let mut lim = io.inputs[1].to_vec();
            ctx.gmem_read(2 * n, 1);
            fft_in_place(&mut lre, &mut lim, false);
            meter_onchip_fft(ctx, n);
            io.owned[0].copy_from_slice(&lre);
            io.owned[1].copy_from_slice(&lim);
            ctx.gmem_write(2 * n, 1);
        },
    )?;
    let sim_time_s = gpu.elapsed_s() - t0;
    let kernel_stats = gpu.timeline()[launches_before..].to_vec();
    let re_out = gpu.download(out_re)?;
    let im_out = gpu.download(out_im)?;
    for id in [src_re, src_im, out_re, out_im] {
        gpu.free(id)?;
    }
    Ok(FftOutcome {
        re: re_out,
        im: im_out,
        sim_time_s,
        kernel_stats,
    })
}

fn meter_onchip_fft(ctx: &mut trisolve_gpu_sim::BlockCtx<'_>, n: usize) {
    let stages = n.max(2).trailing_zeros() as usize;
    for _ in 0..stages {
        // One radix-2 butterfly per point pair: ~10 flops, 4 shared words.
        ctx.ops(10 * n / 2);
        ctx.smem_conflict(4 * n / 2, 2.0); // f64 on 32-bit banks
        ctx.sync();
    }
}

/// Iterative in-place radix-2 FFT (`inverse = true` for the unscaled
/// inverse transform).
pub fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 2.0 } else { -2.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * std::f64::consts::PI / len as f64;
        let (wls, wlc) = ang.sin_cos();
        let mut i = 0usize;
        while i < n {
            let (mut wr, mut wi) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * wr - vi0 * wi;
                let vi = vr0 * wi + vi0 * wr;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let (nwr, nwi) = (wr * wlc - wi * wls, wr * wls + wi * wlc);
                wr = nwr;
                wi = nwi;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Tune the four-step split `N1` for transforms of length `len` on this
/// device, hill-climbing from the balanced machine-query seed.
pub fn tune_fft(gpu: &mut Gpu<f64>, len: usize) -> (FftParams, usize) {
    assert!(len.is_power_of_two());
    let q = gpu.spec().queryable().clone();
    let cap = max_onchip_fft(&q);
    let seed = static_fft_params(&q, len);
    let min_n1 = len.div_ceil(cap).next_power_of_two().max(2);
    let max_n1 = cap.min(len);
    let axis = Pow2Axis::new("fft_n1", min_n1, max_n1);
    let re: Vec<f64> = (0..len)
        .map(|i| ((i * 37 % 256) as f64) / 128.0 - 1.0)
        .collect();
    let im = vec![0.0f64; len];
    let mut evals = 0usize;
    let (n1, _, _) = hill_climb_pow2(axis, seed.n1, |n1| {
        evals += 1;
        match fft_on_gpu(gpu, &re, &im, FftParams { n1 }) {
            Ok(out) => out.sim_time_s,
            Err(_) => f64::INFINITY,
        }
    });
    (FftParams { n1 }, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or_ = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                or_[k] += re[t] * c - im[t] * s;
                oi[k] += re[t] * s + im[t] * c;
            }
        }
        (or_, oi)
    }

    fn signal(n: usize) -> (Vec<f64>, Vec<f64>) {
        let re: Vec<f64> = (0..n)
            .map(|i| ((i * 7919 % 1000) as f64) / 500.0 - 1.0)
            .collect();
        let im: Vec<f64> = (0..n)
            .map(|i| ((i * 104729 % 1000) as f64) / 500.0 - 1.0)
            .collect();
        (re, im)
    }

    #[test]
    fn cpu_fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 16, 64, 256] {
            let (re, im) = signal(n);
            let (er, ei) = naive_dft(&re, &im);
            let mut fr = re.clone();
            let mut fi = im.clone();
            fft_in_place(&mut fr, &mut fi, false);
            for k in 0..n {
                assert!((fr[k] - er[k]).abs() < 1e-8, "n={n} k={k}");
                assert!((fi[k] - ei[k]).abs() < 1e-8, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn cpu_fft_round_trips() {
        let n = 1024;
        let (re0, im0) = signal(n);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_in_place(&mut re, &mut im, false);
        fft_in_place(&mut re, &mut im, true);
        for k in 0..n {
            assert!((re[k] / n as f64 - re0[k]).abs() < 1e-10);
            assert!((im[k] / n as f64 - im0[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn gpu_single_stage_matches_cpu() {
        let n = 512;
        let (re, im) = signal(n);
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let out = fft_on_gpu(&mut gpu, &re, &im, FftParams { n1: 1 }).unwrap();
        let mut er = re.clone();
        let mut ei = im.clone();
        fft_in_place(&mut er, &mut ei, false);
        for k in 0..n {
            assert!((out.re[k] - er[k]).abs() < 1e-9);
            assert!((out.im[k] - ei[k]).abs() < 1e-9);
        }
        assert_eq!(out.kernel_stats.len(), 1);
    }

    #[test]
    fn gpu_four_step_matches_cpu_for_various_splits() {
        let n = 1 << 14; // larger than the 16 KB devices' on-chip cap
        let (re, im) = signal(n);
        let mut er = re.clone();
        let mut ei = im.clone();
        fft_in_place(&mut er, &mut ei, false);
        for dev in [DeviceSpec::geforce_8800_gtx(), DeviceSpec::gtx_470()] {
            let cap = max_onchip_fft(dev.queryable());
            let mut n1 = (n / cap).max(32);
            while n1 <= cap.min(n) {
                let mut gpu: Gpu<f64> = Gpu::new(dev.clone());
                let out = fft_on_gpu(&mut gpu, &re, &im, FftParams { n1 }).unwrap();
                let worst = out
                    .re
                    .iter()
                    .zip(&er)
                    .chain(out.im.iter().zip(&ei))
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(worst < 1e-7, "{} n1={n1}: worst {worst:.2e}", dev.name());
                assert_eq!(gpu.allocated_bytes(), 0);
                n1 *= 4;
            }
        }
    }

    #[test]
    fn oversized_splits_rejected() {
        let n = 1 << 14;
        let (re, im) = signal(n);
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        // cap on the 8800 is 1024 (16 KB / 16 B); n1=8 leaves n2=2048 > cap.
        assert!(fft_on_gpu(&mut gpu, &re, &im, FftParams { n1: 8 }).is_err());
        assert!(fft_on_gpu(&mut gpu, &re, &im, FftParams { n1: 3 }).is_err());
    }

    #[test]
    fn tuning_picks_a_valid_fast_split() {
        let n = 1 << 16;
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let (params, evals) = tune_fft(&mut gpu, n);
        assert!(evals >= 2);
        let (re, im) = signal(n);
        let tuned = fft_on_gpu(&mut gpu, &re, &im, params).unwrap();
        // Tuned split must not lose to the balanced static seed.
        let seed = static_fft_params(gpu.spec().queryable(), n);
        let seeded = fft_on_gpu(&mut gpu, &re, &im, seed).unwrap();
        assert!(tuned.sim_time_s <= seeded.sim_time_s * 1.001);
        // And it must still be correct.
        let mut er = re.clone();
        let mut ei = im.clone();
        fft_in_place(&mut er, &mut ei, false);
        let worst = tuned
            .re
            .iter()
            .zip(&er)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-6);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 1 << 12;
        let (re, im) = signal(n);
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let out = fft_on_gpu(&mut gpu, &re, &im, FftParams { n1: 64 }).unwrap();
        let e_time: f64 = re.iter().zip(&im).map(|(a, b)| a * a + b * b).sum();
        let e_freq: f64 = out
            .re
            .iter()
            .zip(&out.im)
            .map(|(a, b)| a * a + b * b)
            .sum::<f64>()
            / n as f64;
        assert!(((e_time - e_freq) / e_time).abs() < 1e-10);
    }
}
