#![warn(missing_docs)]

//! # trisolve-dnc
//!
//! The paper's §VI-C claim, made executable: the multi-stage +
//! auto-tuning strategy "will be applicable not only for tridiagonal
//! solvers but also for a large class of divide-and-conquer problems" —
//! bottom-up merge sort being the worked example (Hagerup & Rüb's parallel
//! merge style).
//!
//! The sort has the same stage anatomy as the tridiagonal solver:
//!
//! | Tridiagonal solver | Merge sort |
//! |---|---|
//! | stage 3/4: solve subsystem in shared memory | sort a tile on-chip |
//! | stage 2: one block splits one system | one block merges one run pair |
//! | stage 1: blocks cooperate on one system | blocks cooperate on one merge (merge-path partitioning) |
//! | stage-2→3 switch (`onchip_size`) | tile size |
//! | stage-1→2 switch (`stage1_target_systems`) | cooperative-merge threshold |
//!
//! and the same tuning story: the two parameters are decoupled, so
//! [`tune_sort`] hill-climbs them independently with simulated
//! micro-benchmarks, seeded by machine-query guesses.

pub mod fft;
pub mod quicksort;
pub mod sort;
pub mod tune;

pub use fft::{fft_on_gpu, tune_fft, FftOutcome, FftParams};
pub use quicksort::{quicksort_on_gpu, tune_quicksort, QuickParams};
pub use sort::{sort_on_gpu, SortOutcome, SortParams};
pub use tune::{static_sort_params, tune_sort, SortTuneResult};
