//! Auto-tuning the multi-stage sort with the same machinery (and the same
//! decoupling argument) as the tridiagonal solver: the tile size only cares
//! about on-chip capacity and occupancy; the cooperative threshold only
//! cares about machine fill during the tail merges. Two independent
//! hill climbs, each seeded by a machine-query guess.

use crate::sort::{sort_on_gpu, SortParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use trisolve_autotune::{hill_climb_pow2, Pow2Axis};
use trisolve_gpu_sim::{Gpu, QueryableProps};

/// Outcome of a sort tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortTuneResult {
    /// The tuned parameters.
    pub params: SortParams,
    /// Micro-benchmark evaluations spent.
    pub evaluations: usize,
}

/// Machine-query guess: the largest power-of-two tile that fits in shared
/// memory, and a cooperative threshold of one run pair per processor.
pub fn static_sort_params(q: &QueryableProps) -> SortParams {
    let by_shmem = q.shared_mem_per_sm_bytes / 4; // u32 elements
    let mut tile = 64usize;
    while tile * 2 <= by_shmem && tile * 2 <= 4096 {
        tile *= 2;
    }
    SortParams {
        tile_size: tile,
        coop_threshold: q.num_processors.next_power_of_two(),
    }
}

/// Tune the sort parameters on a device by hill climbing each axis
/// independently from the machine-query seed, measuring simulated sorts of
/// `len` random `u32`s.
pub fn tune_sort(gpu: &mut Gpu<u32>, len: usize) -> SortTuneResult {
    assert!(
        len.is_power_of_two(),
        "tuning length must be a power of two"
    );
    let q = gpu.spec().queryable().clone();
    let seed = static_sort_params(&q);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
    let mut evals = 0usize;

    let max_tile = {
        let mut t = 64usize;
        while t * 2 <= q.shared_mem_per_sm_bytes / 4 && t * 2 <= 4096 && t * 2 <= len {
            t *= 2;
        }
        t
    };
    let tile_axis = Pow2Axis::new("tile_size", 64, max_tile);
    let (tile, _, _) = hill_climb_pow2(tile_axis, seed.tile_size, |tile| {
        evals += 1;
        measure(
            gpu,
            &data,
            SortParams {
                tile_size: tile,
                coop_threshold: seed.coop_threshold,
            },
        )
    });

    let coop_axis = Pow2Axis::new("coop_threshold", 1, 256);
    let (coop, _, _) = hill_climb_pow2(coop_axis, seed.coop_threshold, |coop| {
        evals += 1;
        measure(
            gpu,
            &data,
            SortParams {
                tile_size: tile,
                coop_threshold: coop,
            },
        )
    });

    SortTuneResult {
        params: SortParams {
            tile_size: tile,
            coop_threshold: coop,
        },
        evaluations: evals,
    }
}

fn measure(gpu: &mut Gpu<u32>, data: &[u32], params: SortParams) -> f64 {
    match sort_on_gpu(gpu, data, params) {
        Ok(out) => out.sim_time_s,
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn static_guess_respects_shared_memory() {
        let p = static_sort_params(DeviceSpec::geforce_8800_gtx().queryable());
        assert!(p.tile_size * 4 <= 16 * 1024);
        assert!(p.tile_size.is_power_of_two());
        let p470 = static_sort_params(DeviceSpec::gtx_470().queryable());
        assert!(p470.tile_size >= p.tile_size);
    }

    #[test]
    fn tuning_improves_or_matches_untuned_default() {
        let len = 1 << 16;
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
        let result = tune_sort(&mut gpu, len);
        assert!(result.evaluations >= 3);

        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
        let t_tuned = measure(&mut gpu, &data, result.params);
        let t_default = measure(&mut gpu, &data, SortParams::default_untuned());
        assert!(
            t_tuned <= t_default * 1.001,
            "tuned {t_tuned} vs default {t_default}"
        );
    }

    #[test]
    fn tuned_sort_still_sorts() {
        let len = 1 << 14;
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_280());
        let result = tune_sort(&mut gpu, len);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
        let out = sort_on_gpu(&mut gpu, &data, result.params).unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(out.data, expect);
    }
}
