//! Multi-stage bottom-up merge sort on the simulated GPU.

use trisolve_gpu_sim::{BufferId, Gpu, KernelStats, LaunchConfig, OutMode, SimError};

/// Threads per block used by every sort kernel.
const SORT_THREADS: usize = 256;
/// Registers per thread of the sort kernels.
const SORT_REGS: usize = 16;

/// Tunable parameters of the multi-stage sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortParams {
    /// Elements sorted on-chip per block in the tile phase (stage-2→3
    /// switch analogue). Power of two.
    pub tile_size: usize,
    /// When fewer run pairs than this remain, merge passes switch to the
    /// cooperative (multi-block, merge-path-partitioned) kernel — the
    /// stage-1→2 switch analogue.
    pub coop_threshold: usize,
}

impl SortParams {
    /// Machine-oblivious defaults (every device can hold a 512-element tile
    /// of `u32` on-chip).
    pub fn default_untuned() -> Self {
        Self {
            tile_size: 512,
            coop_threshold: 16,
        }
    }
}

/// Result of a multi-stage sort.
#[derive(Debug, Clone)]
pub struct SortOutcome {
    /// The sorted data.
    pub data: Vec<u32>,
    /// Simulated seconds.
    pub sim_time_s: f64,
    /// Per-launch profile.
    pub kernel_stats: Vec<KernelStats>,
}

/// Sort `data` (length a power of two) on the simulated GPU with the
/// multi-stage merge sort.
///
/// ```
/// use trisolve_dnc::{sort_on_gpu, SortParams};
/// use trisolve_gpu_sim::{DeviceSpec, Gpu};
///
/// let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_280());
/// let data: Vec<u32> = (0..1024u32).rev().collect();
/// let out = sort_on_gpu(&mut gpu, &data, SortParams::default_untuned())?;
/// assert!(out.data.windows(2).all(|w| w[0] <= w[1]));
/// # Ok::<(), trisolve_gpu_sim::SimError>(())
/// ```
pub fn sort_on_gpu(
    gpu: &mut Gpu<u32>,
    data: &[u32],
    params: SortParams,
) -> Result<SortOutcome, SimError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(SimError::InvalidLaunch {
            detail: format!("sort length {n} must be a nonzero power of two"),
        });
    }
    let tile = params.tile_size.min(n);

    let mut src = gpu.alloc_from(data)?;
    let mut dst = gpu.alloc(n)?;
    let t0 = gpu.elapsed_s();
    let launches_before = gpu.timeline().len();

    tile_sort(gpu, src, dst, n, tile)?;
    std::mem::swap(&mut src, &mut dst);

    let mut run = tile;
    while run < n {
        let pairs = n / (2 * run);
        if pairs >= params.coop_threshold {
            merge_pass_independent(gpu, src, dst, n, run)?;
        } else {
            merge_pass_cooperative(gpu, src, dst, n, run)?;
        }
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }

    let sim_time_s = gpu.elapsed_s() - t0;
    let kernel_stats = gpu.timeline()[launches_before..].to_vec();
    let out = gpu.download(src)?;
    gpu.free(src)?;
    gpu.free(dst)?;
    Ok(SortOutcome {
        data: out,
        sim_time_s,
        kernel_stats,
    })
}

/// Stage 3/4 analogue: each block sorts one tile in shared memory.
fn tile_sort(
    gpu: &mut Gpu<u32>,
    src: BufferId,
    dst: BufferId,
    n: usize,
    tile: usize,
) -> Result<KernelStats, SimError> {
    let grid = n / tile;
    let cfg = LaunchConfig::new(format!("tile_sort[{tile}]"), grid, SORT_THREADS.min(tile))
        .with_regs(SORT_REGS)
        .with_shared_mem(tile * 4);
    gpu.launch(
        &cfg,
        &[src],
        &[(dst, OutMode::Chunked { chunk: tile })],
        |ctx, io| {
            let b = ctx.block_id as usize;
            let mut local: Vec<u32> = io.inputs[0][b * tile..(b + 1) * tile].to_vec();
            local.sort_unstable();
            io.owned[0].copy_from_slice(&local);
            // Bitonic-style on-chip sort: log^2 passes over the tile.
            let log = tile.trailing_zeros() as usize;
            let passes = log * (log + 1) / 2;
            ctx.gmem_read(tile, 1);
            ctx.gmem_write(tile, 1);
            ctx.smem(2 * tile * passes);
            ctx.ops(tile * passes);
            for _ in 0..passes {
                ctx.sync();
            }
        },
    )
}

/// Stage-2 analogue: one block merges one pair of runs of length `run`.
fn merge_pass_independent(
    gpu: &mut Gpu<u32>,
    src: BufferId,
    dst: BufferId,
    n: usize,
    run: usize,
) -> Result<KernelStats, SimError> {
    let pairs = n / (2 * run);
    let cfg = LaunchConfig::new(format!("merge_ind[run={run}]"), pairs, SORT_THREADS)
        .with_regs(SORT_REGS);
    gpu.launch(
        &cfg,
        &[src],
        &[(dst, OutMode::Chunked { chunk: 2 * run })],
        |ctx, io| {
            let b = ctx.block_id as usize;
            let base = b * 2 * run;
            let input = io.inputs[0];
            merge_into(
                &input[base..base + run],
                &input[base + run..base + 2 * run],
                io.owned[0],
            );
            // Streaming merge: threads cooperate via merge-path splits.
            ctx.gmem_read(2 * run, 1);
            ctx.gmem_write(2 * run, 1);
            ctx.ops(2 * run + SORT_THREADS * run.trailing_zeros() as usize);
            ctx.sync();
        },
    )
}

/// Stage-1 analogue: several blocks cooperate on each merge, each producing
/// a contiguous slice of the output found by merge-path partitioning
/// (binary searches in global memory).
fn merge_pass_cooperative(
    gpu: &mut Gpu<u32>,
    src: BufferId,
    dst: BufferId,
    n: usize,
    run: usize,
) -> Result<KernelStats, SimError> {
    let pairs = n / (2 * run);
    // Enough blocks to fill the machine regardless of the pair count.
    let q = gpu.spec().queryable();
    let want_blocks = (4 * q.num_processors).next_power_of_two();
    let blocks_per_pair = (want_blocks / pairs)
        .max(1)
        .next_power_of_two()
        .min(2 * run);
    let slice = (2 * run) / blocks_per_pair;
    let grid = pairs * blocks_per_pair;
    let cfg = LaunchConfig::new(
        format!("merge_coop[run={run},bpp={blocks_per_pair}]"),
        grid,
        SORT_THREADS,
    )
    .with_regs(SORT_REGS);
    gpu.launch(
        &cfg,
        &[src],
        &[(dst, OutMode::Chunked { chunk: slice })],
        |ctx, io| {
            let gbid = ctx.block_id as usize;
            let pair = gbid / blocks_per_pair;
            let part = gbid % blocks_per_pair;
            let base = pair * 2 * run;
            let input = io.inputs[0];
            let left = &input[base..base + run];
            let right = &input[base + run..base + 2 * run];
            // Merge-path: find the (i, j) split for output offsets
            // k0 = part*slice and k1 = (part+1)*slice, then merge the
            // segment.
            let k0 = part * slice;
            let k1 = k0 + slice;
            let (i0, j0) = merge_path(left, right, k0);
            let (i1, j1) = merge_path(left, right, k1);
            merge_into(&left[i0..i1], &right[j0..j1], io.owned[0]);
            // Two binary searches in global memory (uncoalesced point
            // reads) plus the streaming merge of this slice.
            let search = 2 * (run.max(2).trailing_zeros() as usize + 1);
            ctx.gmem_read(search, 64);
            ctx.gmem_read(slice, 1);
            ctx.gmem_write(slice, 1);
            ctx.ops(slice + SORT_THREADS * run.trailing_zeros() as usize);
            ctx.sync();
        },
    )
}

/// The merge-path split: smallest `(i, j)` with `i + j == k` such that
/// merging `left[..i]` and `right[..j]` yields the first `k` outputs.
fn merge_path(left: &[u32], right: &[u32], k: usize) -> (usize, usize) {
    let mut lo = k.saturating_sub(right.len());
    let mut hi = k.min(left.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = k - i;
        if i < left.len() && j > 0 && left[i] < right[j - 1] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, k - lo)
}

/// Sequential two-way merge into an output slice.
fn merge_into(left: &[u32], right: &[u32], out: &mut [u32]) {
    debug_assert_eq!(left.len() + right.len(), out.len());
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        if i < left.len() && (j >= right.len() || left[i] <= right[j]) {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use trisolve_gpu_sim::DeviceSpec;

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn merge_path_splits_correctly() {
        let left = [1u32, 3, 5, 7];
        let right = [2u32, 4, 6, 8];
        for k in 0..=8 {
            let (i, j) = merge_path(&left, &right, k);
            assert_eq!(i + j, k);
            // Everything in the prefix is <= everything after the split.
            if i > 0 && j < right.len() {
                assert!(left[i - 1] <= right[j]);
            }
            if j > 0 && i < left.len() {
                assert!(right[j - 1] <= left[i]);
            }
        }
    }

    #[test]
    fn merge_into_is_a_merge() {
        let mut out = vec![0u32; 6];
        merge_into(&[1, 4, 9], &[2, 3, 10], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 9, 10]);
    }

    #[test]
    fn sorts_correctly_both_pass_kinds() {
        let data = random_data(1 << 14, 7);
        let mut expect = data.clone();
        expect.sort_unstable();
        for coop_threshold in [1usize, 4, 1 << 20] {
            let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
            let out = sort_on_gpu(
                &mut gpu,
                &data,
                SortParams {
                    tile_size: 256,
                    coop_threshold,
                },
            )
            .unwrap();
            assert_eq!(out.data, expect, "coop_threshold={coop_threshold}");
            assert!(out.sim_time_s > 0.0);
        }
    }

    #[test]
    fn tile_size_larger_than_input_is_clamped() {
        let data = random_data(1 << 10, 3);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_280());
        let out = sort_on_gpu(
            &mut gpu,
            &data,
            SortParams {
                tile_size: 1 << 12,
                coop_threshold: 16,
            },
        );
        // 4096-element tile needs 16 KB shared: fits the 280 exactly; the
        // tile is clamped to the input length (1024 elements).
        assert_eq!(out.unwrap().data, expect);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
        assert!(sort_on_gpu(&mut gpu, &[1, 2, 3], SortParams::default_untuned()).is_err());
        assert!(sort_on_gpu(&mut gpu, &[], SortParams::default_untuned()).is_err());
    }

    #[test]
    fn cooperative_passes_use_more_blocks() {
        let data = random_data(1 << 15, 9);
        let run = |coop: usize| {
            let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
            sort_on_gpu(
                &mut gpu,
                &data,
                SortParams {
                    tile_size: 512,
                    coop_threshold: coop,
                },
            )
            .unwrap()
        };
        let independent = run(1);
        let cooperative = run(1 << 20);
        // Last pass: 1 pair. Independent = 1 block; cooperative = many.
        let last_ind = independent.kernel_stats.last().unwrap();
        let last_coop = cooperative.kernel_stats.last().unwrap();
        assert_eq!(last_ind.grid_blocks, 1);
        assert!(last_coop.grid_blocks > 8);
        // And the cooperative final pass is faster (fills the machine).
        assert!(last_coop.total_time_s() < last_ind.total_time_s());
    }
}
