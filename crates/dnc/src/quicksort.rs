//! Auto-tuned multi-stage quicksort — the paper's closing example
//! ("particularly for multi-stage algorithms that involve multiple switch
//! points (e.g. quicksort on the GPU)", §VII).
//!
//! Like the GPU quicksorts of the era (Cederman & Tsigas), the sort runs as
//! host-driven *levels*: every level partitions the segments that are still
//! too large for shared memory, and a final kernel sorts all the remaining
//! small segments on-chip. The two switch points mirror the tridiagonal
//! solver exactly:
//!
//! * **on-chip threshold** — segments at most this long are sorted in
//!   shared memory (stage-2→3 analogue);
//! * **cooperative threshold** — when fewer large segments than this
//!   remain, partitioning switches to the cooperative two-kernel scheme
//!   (count pass + scatter pass, several blocks per segment) instead of
//!   one block per segment (stage-1↔2 analogue).
//!
//! Both are tuned by the same seeded hill climb.

use crate::sort::SortOutcome;
use trisolve_gpu_sim::{BufferId, Gpu, LaunchConfig, OutMode, SimError};

/// Threads per block of the quicksort kernels.
const QS_THREADS: usize = 256;
/// Registers per thread.
const QS_REGS: usize = 16;
/// Blocks cooperating on one segment in the cooperative partition phase.
const COOP_BLOCKS_PER_SEGMENT: usize = 16;
/// Recursion-depth safety valve: beyond this many levels the remaining
/// segments are sorted directly (guards adversarial pivot luck).
const MAX_LEVELS: usize = 64;

/// Tunable parameters of the multi-stage quicksort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuickParams {
    /// Segments at most this long are sorted on-chip. Power of two.
    pub onchip_threshold: usize,
    /// Cooperative partitioning engages when fewer large segments than
    /// this remain.
    pub coop_threshold: usize,
}

impl QuickParams {
    /// Machine-oblivious defaults (mirrors the solver's defaults: the
    /// smallest device's on-chip capacity, sixteen segments).
    pub fn default_untuned() -> Self {
        Self {
            onchip_threshold: 1024,
            coop_threshold: 16,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: usize,
    len: usize,
}

/// Sort `data` (length a power of two, for parity with the other demos —
/// the algorithm itself has no such constraint) with the multi-stage
/// quicksort.
pub fn quicksort_on_gpu(
    gpu: &mut Gpu<u32>,
    data: &[u32],
    params: QuickParams,
) -> Result<SortOutcome, SimError> {
    let n = data.len();
    if n == 0 {
        return Err(SimError::InvalidLaunch {
            detail: "cannot sort zero elements".into(),
        });
    }
    let onchip = params
        .onchip_threshold
        .min(gpu.spec().queryable().shared_mem_per_sm_bytes / 4)
        .max(32);

    // Partition levels ping-pong between two buffers; segments that have
    // shrunk below the on-chip threshold stop being copied, so each small
    // segment records *which* buffer (parity) holds its data. The final
    // on-chip pass reads both buffers and writes a third.
    let bufs = [gpu.alloc_from(data)?, gpu.alloc(n)?];
    let out_buf = gpu.alloc(n)?;
    let t0 = gpu.elapsed_s();
    let launches_before = gpu.timeline().len();

    let mut parity = 0usize;
    let mut large: Vec<Segment> = vec![Segment { start: 0, len: n }];
    let mut small: Vec<(Segment, usize)> = Vec::new();
    let mut level = 0usize;

    while !large.is_empty() && level < MAX_LEVELS {
        level += 1;
        let (src, dst) = (bufs[parity], bufs[1 - parity]);
        let splits = if large.len() < params.coop_threshold {
            partition_cooperative(gpu, src, dst, &large)?
        } else {
            partition_independent(gpu, src, dst, &large)?
        };
        parity = 1 - parity;

        let mut next = Vec::new();
        for (seg, split) in large.iter().zip(&splits) {
            for part in [
                Segment {
                    start: seg.start,
                    len: split - seg.start,
                },
                Segment {
                    start: *split,
                    len: seg.start + seg.len - split,
                },
            ] {
                if part.len == 0 {
                    continue;
                }
                if part.len <= onchip {
                    small.push((part, parity));
                } else {
                    next.push(part);
                }
            }
        }
        large = next;
    }
    // Safety valve against adversarial pivot luck: whatever is still large
    // is sorted directly by the final pass (correct; merely under-metered).
    small.extend(large.drain(..).map(|s| (s, parity)));

    onchip_sort_pass(gpu, bufs, out_buf, &small, onchip)?;

    let sim_time_s = gpu.elapsed_s() - t0;
    let kernel_stats = gpu.timeline()[launches_before..].to_vec();
    let out = gpu.download(out_buf)?;
    for id in [bufs[0], bufs[1], out_buf] {
        gpu.free(id)?;
    }
    Ok(SortOutcome {
        data: out,
        sim_time_s,
        kernel_stats,
    })
}

/// Median-of-three pivot of a segment.
fn pivot_of(input: &[u32], seg: &Segment) -> u32 {
    let a = input[seg.start];
    let b = input[seg.start + seg.len / 2];
    let c = input[seg.start + seg.len - 1];
    a.max(b).min(a.min(b).max(c)) // median(a, b, c)
}

/// Stage-2 analogue: one block partitions one segment around its pivot.
/// Returns the split position (start of the >=-pivot half) per segment.
fn partition_independent(
    gpu: &mut Gpu<u32>,
    src: BufferId,
    dst: BufferId,
    segments: &[Segment],
) -> Result<Vec<usize>, SimError> {
    let cfg = LaunchConfig::new(
        format!("qs_part_ind[{}]", segments.len()),
        segments.len(),
        QS_THREADS,
    )
    .with_regs(QS_REGS);
    let splits: Vec<std::sync::atomic::AtomicUsize> = segments
        .iter()
        .map(|_| std::sync::atomic::AtomicUsize::new(0))
        .collect();
    let segs = segments.to_vec();
    gpu.launch(&cfg, &[src], &[(dst, OutMode::Scattered)], |ctx, io| {
        let seg = segs[ctx.block_id as usize];
        let input = &io.inputs[0][seg.start..seg.start + seg.len];
        let pivot = pivot_of(io.inputs[0], &seg);
        // Three-way-free partition with a strict/equal trick that
        // guarantees progress on duplicate-heavy inputs: elements equal to
        // the pivot alternate sides by index parity.
        let mut lo = seg.start;
        let mut hi = seg.start + seg.len;
        for (i, &v) in input.iter().enumerate() {
            let left = v < pivot || (v == pivot && i % 2 == 0);
            if left {
                io.scattered[0].set(lo, v);
                lo += 1;
            } else {
                hi -= 1;
                io.scattered[0].set(hi, v);
            }
        }
        splits[ctx.block_id as usize].store(lo, std::sync::atomic::Ordering::Relaxed);
        ctx.gmem_read(seg.len, 1);
        ctx.gmem_write(seg.len, 1);
        ctx.ops(4 * seg.len);
        ctx.sync();
    })?;
    Ok(splits
        .iter()
        .map(|s| s.load(std::sync::atomic::Ordering::Relaxed))
        .collect())
}

/// Stage-1 analogue: several blocks cooperate on each segment — a counting
/// launch, a host-side prefix sum (the global synchronisation), then a
/// scatter launch.
fn partition_cooperative(
    gpu: &mut Gpu<u32>,
    src: BufferId,
    dst: BufferId,
    segments: &[Segment],
) -> Result<Vec<usize>, SimError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let bps = COOP_BLOCKS_PER_SEGMENT;
    let grid = segments.len() * bps;
    let segs = segments.to_vec();
    let pivots: Vec<u32> = {
        let input = gpu.view(src)?;
        segs.iter().map(|s| pivot_of(input, s)).collect()
    };

    // --- Launch 1: count lows per (segment, block-slice). -----------------
    let counts: Vec<AtomicUsize> = (0..grid).map(|_| AtomicUsize::new(0)).collect();
    let cfg = LaunchConfig::new(format!("qs_count[{}x{bps}]", segs.len()), grid, QS_THREADS)
        .with_regs(QS_REGS);
    {
        let segs = &segs;
        let pivots = &pivots;
        let counts = &counts;
        gpu.launch(&cfg, &[src], &[], |ctx, io| {
            let gbid = ctx.block_id as usize;
            let seg = segs[gbid / bps];
            let part = gbid % bps;
            let (lo, hi) = slice_bounds(seg.len, bps, part);
            let pivot = pivots[gbid / bps];
            let mut c = 0usize;
            for (i, &v) in io.inputs[0][seg.start + lo..seg.start + hi]
                .iter()
                .enumerate()
            {
                if v < pivot || (v == pivot && (lo + i) % 2 == 0) {
                    c += 1;
                }
            }
            counts[gbid].store(c, Ordering::Relaxed);
            ctx.gmem_read(hi - lo, 1);
            ctx.ops(2 * (hi - lo));
        })?;
    }

    // --- Host prefix sums (the per-split synchronisation cost is the two
    // launches themselves). ------------------------------------------------
    let mut lo_base = vec![0usize; grid];
    let mut hi_base = vec![0usize; grid];
    let mut splits = Vec::with_capacity(segs.len());
    for (s, seg) in segs.iter().enumerate() {
        let total_low: usize = (0..bps)
            .map(|p| counts[s * bps + p].load(Ordering::Relaxed))
            .sum();
        let mut acc_low = seg.start;
        let mut acc_high = seg.start + total_low;
        for p in 0..bps {
            lo_base[s * bps + p] = acc_low;
            acc_low += counts[s * bps + p].load(Ordering::Relaxed);
            let (lo, hi) = slice_bounds(seg.len, bps, p);
            hi_base[s * bps + p] = acc_high;
            acc_high += (hi - lo) - counts[s * bps + p].load(Ordering::Relaxed);
        }
        splits.push(seg.start + total_low);
    }

    // --- Launch 2: scatter. ------------------------------------------------
    let cfg = LaunchConfig::new(
        format!("qs_scatter[{}x{bps}]", segs.len()),
        grid,
        QS_THREADS,
    )
    .with_regs(QS_REGS);
    {
        let segs = &segs;
        let pivots = &pivots;
        gpu.launch(&cfg, &[src], &[(dst, OutMode::Scattered)], |ctx, io| {
            let gbid = ctx.block_id as usize;
            let seg = segs[gbid / bps];
            let part = gbid % bps;
            let (lo, hi) = slice_bounds(seg.len, bps, part);
            let pivot = pivots[gbid / bps];
            let mut at_lo = lo_base[gbid];
            let mut at_hi = hi_base[gbid];
            for (i, &v) in io.inputs[0][seg.start + lo..seg.start + hi]
                .iter()
                .enumerate()
            {
                if v < pivot || (v == pivot && (lo + i) % 2 == 0) {
                    io.scattered[0].set(at_lo, v);
                    at_lo += 1;
                } else {
                    io.scattered[0].set(at_hi, v);
                    at_hi += 1;
                }
            }
            ctx.gmem_read(hi - lo, 1);
            ctx.gmem_write(hi - lo, 2);
            ctx.ops(3 * (hi - lo));
            ctx.sync();
        })?;
    }
    Ok(splits)
}

fn slice_bounds(len: usize, parts: usize, part: usize) -> (usize, usize) {
    let chunk = len.div_ceil(parts);
    let lo = (part * chunk).min(len);
    let hi = ((part + 1) * chunk).min(len);
    (lo, hi)
}

/// Stage-3/4 analogue: sort every small segment in shared memory, one block
/// per segment. Each segment reads from the ping-pong buffer (`parity`)
/// that holds its data.
fn onchip_sort_pass(
    gpu: &mut Gpu<u32>,
    bufs: [BufferId; 2],
    dst: BufferId,
    segments: &[(Segment, usize)],
    onchip: usize,
) -> Result<(), SimError> {
    let segs = segments.to_vec();
    let cfg = LaunchConfig::new(
        format!("qs_onchip[{}]", segs.len()),
        segs.len(),
        QS_THREADS.min(onchip),
    )
    .with_regs(QS_REGS)
    .with_shared_mem(onchip * 4);
    gpu.launch(
        &cfg,
        &[bufs[0], bufs[1]],
        &[(dst, OutMode::Scattered)],
        |ctx, io| {
            let (seg, parity) = segs[ctx.block_id as usize];
            let mut local: Vec<u32> = io.inputs[parity][seg.start..seg.start + seg.len].to_vec();
            local.sort_unstable();
            for (i, &v) in local.iter().enumerate() {
                io.scattered[0].set(seg.start + i, v);
            }
            // Bitonic-network metering (padded to the next power of two).
            let padded = seg.len.next_power_of_two().max(2);
            let log = padded.trailing_zeros() as usize;
            let passes = log * (log + 1) / 2;
            ctx.gmem_read(seg.len, 1);
            ctx.gmem_write(seg.len, 1);
            ctx.smem(2 * padded * passes);
            ctx.ops(padded * passes);
            for _ in 0..passes {
                ctx.sync();
            }
        },
    )?;
    Ok(())
}

/// Tune the quicksort's two switch points (decoupled, seeded) on this
/// device for inputs of length `len`.
pub fn tune_quicksort(gpu: &mut Gpu<u32>, len: usize) -> (QuickParams, usize) {
    use rand::{Rng, SeedableRng};
    use trisolve_autotune::{hill_climb_pow2, Pow2Axis};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
    let mut evals = 0usize;

    let shmem_cap = gpu.spec().queryable().shared_mem_per_sm_bytes / 4;
    let max_onchip = {
        let mut p = 64usize;
        while p * 2 <= shmem_cap.min(4096) {
            p *= 2;
        }
        p
    };
    let onchip_axis = Pow2Axis::new("qs_onchip", 64, max_onchip);
    let measure = |gpu: &mut Gpu<u32>, p: QuickParams| {
        quicksort_on_gpu(gpu, &data, p).map_or(f64::INFINITY, |o| o.sim_time_s)
    };

    let coop_seed = gpu.spec().queryable().num_processors.next_power_of_two();
    let (onchip, _, _) = hill_climb_pow2(onchip_axis, max_onchip, |v| {
        evals += 1;
        measure(
            gpu,
            QuickParams {
                onchip_threshold: v,
                coop_threshold: coop_seed,
            },
        )
    });
    let coop_axis = Pow2Axis::new("qs_coop", 1, 256);
    let (coop, _, _) = hill_climb_pow2(coop_axis, coop_seed, |v| {
        evals += 1;
        measure(
            gpu,
            QuickParams {
                onchip_threshold: onchip,
                coop_threshold: v,
            },
        )
    });
    (
        QuickParams {
            onchip_threshold: onchip,
            coop_threshold: coop,
        },
        evals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use trisolve_gpu_sim::DeviceSpec;

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn check_sorts(data: &[u32], params: QuickParams) {
        let mut expect = data.to_vec();
        expect.sort_unstable();
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
        let out = quicksort_on_gpu(&mut gpu, data, params).unwrap();
        assert_eq!(out.data, expect);
        assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn sorts_random_inputs() {
        for n in [1usize, 2, 100, 4096, 1 << 16] {
            check_sorts(&random_data(n, 1), QuickParams::default_untuned());
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let n = 1 << 14;
        let sorted: Vec<u32> = (0..n as u32).collect();
        let reverse: Vec<u32> = (0..n as u32).rev().collect();
        let constant = vec![42u32; n];
        let two_values: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        for data in [sorted, reverse, constant, two_values] {
            check_sorts(&data, QuickParams::default_untuned());
        }
    }

    #[test]
    fn small_onchip_threshold_forces_deep_recursion() {
        let data = random_data(1 << 15, 3);
        check_sorts(
            &data,
            QuickParams {
                onchip_threshold: 64,
                coop_threshold: 8,
            },
        );
    }

    #[test]
    fn cooperative_levels_use_two_launches() {
        let data = random_data(1 << 15, 4);
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
        // Force cooperative partitioning for every level.
        let out = quicksort_on_gpu(
            &mut gpu,
            &data,
            QuickParams {
                onchip_threshold: 1024,
                coop_threshold: usize::MAX,
            },
        )
        .unwrap();
        let counts: Vec<_> = out
            .kernel_stats
            .iter()
            .filter(|s| s.label.starts_with("qs_count"))
            .collect();
        let scatters: Vec<_> = out
            .kernel_stats
            .iter()
            .filter(|s| s.label.starts_with("qs_scatter"))
            .collect();
        assert!(!counts.is_empty());
        assert_eq!(counts.len(), scatters.len());
    }

    #[test]
    fn tuning_beats_or_matches_defaults() {
        let len = 1 << 16;
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_280());
        let (params, evals) = tune_quicksort(&mut gpu, len);
        assert!(evals >= 3);
        let data = random_data(len, 7);
        let t_tuned = quicksort_on_gpu(&mut gpu, &data, params)
            .unwrap()
            .sim_time_s;
        let t_default = quicksort_on_gpu(&mut gpu, &data, QuickParams::default_untuned())
            .unwrap()
            .sim_time_s;
        assert!(
            t_tuned <= t_default * 1.05,
            "tuned {t_tuned:.3e} vs default {t_default:.3e}"
        );
        check_sorts(&data, params);
    }

    #[test]
    fn empty_input_rejected() {
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
        assert!(quicksort_on_gpu(&mut gpu, &[], QuickParams::default_untuned()).is_err());
    }
}
