//! Property tests for the §VI-C multi-stage merge sort: correctness for
//! arbitrary inputs and parameters, and cost-model sanity.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use trisolve_dnc::{sort_on_gpu, SortParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};

fn data(len_log2: u32, seed: u64) -> Vec<u32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..1usize << len_log2).map(|_| rng.gen()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sorts_any_input_with_any_params(
        len_log2 in 6u32..15,
        tile_log2 in 6u32..11,
        coop_log2 in 0u32..8,
        seed in any::<u64>(),
    ) {
        let input = data(len_log2, seed);
        let mut expect = input.clone();
        expect.sort_unstable();
        let params = SortParams {
            tile_size: 1 << tile_log2,
            coop_threshold: 1 << coop_log2,
        };
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
        let out = sort_on_gpu(&mut gpu, &input, params).unwrap();
        prop_assert_eq!(out.data, expect);
        prop_assert!(out.sim_time_s.is_finite() && out.sim_time_s > 0.0);
    }

    #[test]
    fn already_sorted_and_reverse_inputs(len_log2 in 6u32..13) {
        let n = 1usize << len_log2;
        let sorted: Vec<u32> = (0..n as u32).collect();
        let reverse: Vec<u32> = (0..n as u32).rev().collect();
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_280());
        for input in [sorted.clone(), reverse] {
            let out = sort_on_gpu(&mut gpu, &input, SortParams::default_untuned()).unwrap();
            prop_assert_eq!(&out.data, &sorted);
        }
    }

    #[test]
    fn duplicate_heavy_inputs(len_log2 in 6u32..13, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let input: Vec<u32> = (0..1usize << len_log2).map(|_| rng.gen_range(0..4u32)).collect();
        let mut expect = input.clone();
        expect.sort_unstable();
        let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let out = sort_on_gpu(&mut gpu, &input, SortParams::default_untuned()).unwrap();
        prop_assert_eq!(out.data, expect);
    }

    #[test]
    fn larger_inputs_never_sort_faster(len_log2 in 8u32..13, seed in any::<u64>()) {
        let params = SortParams::default_untuned();
        let time = |lg: u32| {
            let input = data(lg, seed);
            let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
            sort_on_gpu(&mut gpu, &input, params).unwrap().sim_time_s
        };
        prop_assert!(time(len_log2 + 1) >= time(len_log2));
    }
}
