//! Criterion benches of the auto-tuning machinery: how long a dynamic
//! tuning run takes (the paper reports "less than one minute" on real
//! hardware; our simulated runs should be far cheaper), and the raw search
//! primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use trisolve_autotune::{exhaustive_pow2, hill_climb_pow2, DynamicTuner, Pow2Axis};
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::WorkloadShape;

fn bench_tune_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_tune_for");
    group.sample_size(10);
    group.bench_function("gtx470_small_batch", |b| {
        b.iter(|| {
            let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
            let mut tuner = DynamicTuner::new();
            tuner.tune_for(&mut gpu, WorkloadShape::new(32, 2048))
        });
    });
    group.finish();
}

fn bench_search_primitives(c: &mut Criterion) {
    let axis = Pow2Axis::new("x", 16, 1 << 20);
    let cost = |v: usize| ((v as f64).log2() - 10.0).abs();
    c.bench_function("hill_climb_pow2_seeded", |b| {
        b.iter(|| hill_climb_pow2(axis, 2048, cost));
    });
    c.bench_function("exhaustive_pow2", |b| {
        b.iter(|| exhaustive_pow2(axis, cost));
    });
}

criterion_group!(benches, bench_tune_for, bench_search_primitives);
criterion_main!(benches);
