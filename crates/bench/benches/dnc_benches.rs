//! Criterion benches of the divide-and-conquer generalisations: simulator
//! throughput of the multi-stage merge sort, quicksort and FFT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use trisolve_dnc::{fft_on_gpu, quicksort_on_gpu, sort_on_gpu, FftParams, QuickParams, SortParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnc_sorts");
    group.sample_size(10);
    let len = 1 << 16;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
    group.throughput(Throughput::Elements(len as u64));
    group.bench_with_input(BenchmarkId::new("merge_sort", len), &data, |b, data| {
        b.iter(|| {
            let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
            sort_on_gpu(&mut gpu, data, SortParams::default_untuned()).unwrap()
        });
    });
    group.bench_with_input(BenchmarkId::new("quicksort", len), &data, |b, data| {
        b.iter(|| {
            let mut gpu: Gpu<u32> = Gpu::new(DeviceSpec::gtx_470());
            quicksort_on_gpu(&mut gpu, data, QuickParams::default_untuned()).unwrap()
        });
    });
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnc_fft");
    group.sample_size(10);
    let len = 1 << 16;
    let re: Vec<f64> = (0..len)
        .map(|i| ((i * 13 % 97) as f64) / 48.5 - 1.0)
        .collect();
    let im = vec![0.0f64; len];
    group.throughput(Throughput::Elements(len as u64));
    group.bench_function("four_step_fft_64k", |b| {
        b.iter(|| {
            let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            fft_on_gpu(&mut gpu, &re, &im, FftParams { n1: 512 }).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_fft);
criterion_main!(benches);
