//! Criterion benches of the *real* (wall-clock) CPU baseline solvers — the
//! Rust analogue of the paper's MKL runs. These are genuine measurements,
//! not simulations: the batched LU/Thomas drivers from
//! `trisolve_tridiag::cpu_batch` on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use trisolve_tridiag::cpu_batch::{
    solve_batch_parallel, solve_batch_scoped, solve_batch_sequential, BatchAlgorithm,
};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_single_thread");
    let shape = WorkloadShape::new(64, 1024);
    let batch = random_dominant::<f64>(shape, 1).unwrap();
    group.throughput(Throughput::Elements(shape.total_equations() as u64));
    for (name, algo) in [
        ("lu_gtsv_style", BatchAlgorithm::Lu),
        ("thomas", BatchAlgorithm::Thomas),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &algo, |b, &algo| {
            b.iter(|| solve_batch_sequential(&batch, algo).unwrap());
        });
    }
    group.finish();
}

fn bench_parallel_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_batch_drivers");
    group.sample_size(20);
    let shape = WorkloadShape::new(256, 1024);
    let batch = random_dominant::<f64>(shape, 2).unwrap();
    group.throughput(Throughput::Elements(shape.total_equations() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap());
    });
    group.bench_function("rayon", |b| {
        b.iter(|| solve_batch_parallel(&batch, BatchAlgorithm::Lu).unwrap());
    });
    group.bench_function("two_threads_openmp_style", |b| {
        b.iter(|| solve_batch_scoped(&batch, BatchAlgorithm::Lu, 2).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_parallel_drivers);
criterion_main!(benches);
