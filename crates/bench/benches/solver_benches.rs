//! Criterion benches of the multi-stage solver running on the simulator.
//!
//! Wall-clock time here measures the *simulator's* throughput (the
//! functional execution of the kernels); the paper-comparable numbers are
//! the *simulated* times printed by the `fig*` binaries. Keeping these under
//! `cargo bench` guards the simulation itself against performance
//! regressions — a slow simulator makes tuning runs impractical, which
//! matters because the dynamic tuner is a measurement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use trisolve_core::{solve_batch_on_gpu, BaseVariant, SolverParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

fn params(s3: usize, t4: usize) -> SolverParams {
    SolverParams {
        stage1_target_systems: 16,
        onchip_size: s3,
        thomas_switch: t4,
        variant: BaseVariant::Strided,
    }
}

fn bench_base_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_kernel_only");
    for &(m, n) in &[(256usize, 256usize), (64, 512)] {
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f32>(shape, 1).unwrap();
        group.throughput(Throughput::Elements(shape.total_equations() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.label()),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
                    solve_batch_on_gpu(&mut gpu, batch, &params(n, 64.min(n))).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_pipeline");
    group.sample_size(10);
    for &(m, n) in &[(16usize, 4096usize), (1, 1 << 16)] {
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f32>(shape, 2).unwrap();
        group.throughput(Throughput::Elements(shape.total_equations() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.label()),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
                    solve_batch_on_gpu(&mut gpu, batch, &params(512, 128)).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_variants");
    let shape = WorkloadShape::new(32, 4096);
    let batch = random_dominant::<f32>(shape, 3).unwrap();
    for variant in [BaseVariant::Strided, BaseVariant::Coalesced] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
                    let p = SolverParams {
                        variant,
                        ..params(512, 64)
                    };
                    solve_batch_on_gpu(&mut gpu, &batch, &p).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_base_kernel,
    bench_full_pipeline,
    bench_variants
);
criterion_main!(benches);
