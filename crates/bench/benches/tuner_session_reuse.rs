//! Wall-clock cost of a full dynamic tune on the GTX 470, with and without
//! [`SolveSession`] reuse in the micro-benchmark harness.
//!
//! The tuner's hot loop times dozens of candidate configurations on the
//! same workload shape. With reuse (the default engine path) the session's
//! plan cache, padded staging and device buffers persist across
//! measurements; without it every measurement re-pads, re-allocates and
//! re-uploads — the pre-engine behaviour. The gap between the two is the
//! refactor's speedup, tracked here so regressions show up in the perf
//! trajectory.
//!
//! [`SolveSession`]: trisolve_core::SolveSession

use criterion::{criterion_group, criterion_main, Criterion};
use trisolve_autotune::{DynamicTuner, Microbench};
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::WorkloadShape;

fn bench_tuner_session_reuse(c: &mut Criterion) {
    let shape = WorkloadShape::new(32, 2048);
    let mut group = c.benchmark_group("tuner_session_reuse");
    group.sample_size(10);

    group.bench_function("gtx470_full_tune_with_reuse", |b| {
        b.iter(|| {
            let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
            let mut mb: Microbench<f32> = Microbench::new();
            DynamicTuner::new().tune_for_with(&mut gpu, shape, &mut mb)
        });
    });

    group.bench_function("gtx470_full_tune_without_reuse", |b| {
        b.iter(|| {
            let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
            let mut mb: Microbench<f32> = Microbench::without_session_reuse();
            DynamicTuner::new().tune_for_with(&mut gpu, shape, &mut mb)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_tuner_session_reuse);
criterion_main!(benches);
