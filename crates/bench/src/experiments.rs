//! One function per table/figure of the paper's evaluation (§V).
//!
//! All experiments run in **single precision** (the paper's primary
//! precision) on the simulated devices of Table I. Times are simulated
//! milliseconds; the shapes — orderings, crossovers, ratios — are the
//! reproduction targets (see EXPERIMENTS.md).

use trisolve_autotune::{DefaultTuner, DynamicTuner, StaticTuner, Tuner};
use trisolve_core::engine::{Backend, GpuBackend, StageTimeline};
use trisolve_core::kernels::GpuScalar;
use trisolve_core::{solver, SolveOutcome, SolverParams};
use trisolve_gpu_sim::{CpuSpec, DeviceSpec, Gpu};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
use trisolve_tridiag::SystemBatch;

/// Seed for every experiment workload (reproducibility).
pub const EXPERIMENT_SEED: u64 = 2011;

/// Measure one configuration on one device, returning simulated
/// milliseconds (`+inf` if the configuration cannot run).
pub fn solve_ms<T: GpuScalar>(
    device: &DeviceSpec,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> f64 {
    let mut gpu: Gpu<T> = Gpu::new(device.clone());
    match solver::measure_solve_time(&mut gpu, batch, params) {
        Ok(t) => t * 1e3,
        Err(_) => f64::INFINITY,
    }
}

/// Solve one configuration on one device through the [`GpuBackend`] engine,
/// returning the full outcome (`None` if the configuration cannot run).
pub fn solve_outcome<T: GpuScalar>(
    device: &DeviceSpec,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> Option<SolveOutcome<T>> {
    let mut gpu: Gpu<T> = Gpu::new(device.clone());
    let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
    let mut backend = GpuBackend::new(&mut gpu);
    let mut session = backend.prepare(shape, params).ok()?;
    backend.solve(&mut session, batch, params).ok()
}

/// The per-stage [`StageTimeline`] of one configuration on one device
/// (`None` if the configuration cannot run).
pub fn stage_timeline<T: GpuScalar>(
    device: &DeviceSpec,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> Option<StageTimeline> {
    solve_outcome(device, batch, params).map(|o| StageTimeline::from_outcome(&o))
}

/// Chrome trace-event JSON of one traced solve on one device (`None` if
/// the configuration cannot run) — the `--trace` flag of the figure
/// binaries. Loads in Perfetto / `chrome://tracing`.
pub fn traced_chrome_trace<T: GpuScalar>(
    device: &DeviceSpec,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> Option<String> {
    let mut gpu: Gpu<T> = Gpu::new(device.clone());
    gpu.set_tracer(trisolve_obs::Tracer::enabled());
    let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
    {
        let mut backend = GpuBackend::new(&mut gpu);
        let mut session = backend.prepare(shape, params).ok()?;
        backend.solve(&mut session, batch, params).ok()?;
    }
    let tracer = gpu.tracer();
    Some(trisolve_obs::chrome_trace(
        &tracer.events(),
        &tracer.counters(),
    ))
}

// ---------------------------------------------------------------------------
// Figure 5: stage-2 -> stage-3 switch point sweep
// ---------------------------------------------------------------------------

/// One point of the Figure 5 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Candidate on-chip size (x-axis of Figure 5).
    pub onchip_size: usize,
    /// The Thomas switch re-tuned for this on-chip size (the paper re-tunes
    /// it per candidate).
    pub thomas_switch: usize,
    /// The better base-kernel memory layout at this point.
    pub variant: trisolve_core::BaseVariant,
    /// Simulated milliseconds.
    pub time_ms: f64,
    /// Performance relative to the best point (1.0 = best), the figure's
    /// y-axis.
    pub relative: f64,
}

/// Sweep the stage-2→3 switch point on one device (Figure 5).
///
/// Workload: `m` systems of `n` equations (the paper uses a machine-filling
/// batch of large systems). For every candidate on-chip size the Thomas
/// switch is re-tuned and the better memory-layout variant is taken.
pub fn fig5_sweep(device: &DeviceSpec, m: usize, n: usize) -> Vec<Fig5Point> {
    let shape = WorkloadShape::new(m, n);
    let batch: SystemBatch<f32> = random_dominant(shape, EXPERIMENT_SEED).unwrap();
    let max_onchip = SolverParams::max_onchip_size(device.queryable(), 4);

    let mut points = Vec::new();
    for s3 in [128usize, 256, 512, 1024] {
        if s3 > max_onchip || s3 > n {
            continue;
        }
        let (t4, variant, ms) = best_t4_and_time(device, &batch, s3);
        points.push(Fig5Point {
            onchip_size: s3,
            thomas_switch: t4,
            variant,
            time_ms: ms,
            relative: 0.0,
        });
    }
    let best = points
        .iter()
        .map(|p| p.time_ms)
        .fold(f64::INFINITY, f64::min);
    for p in &mut points {
        p.relative = best / p.time_ms;
    }
    points
}

/// For a fixed on-chip size, find the best (Thomas switch, variant) and
/// return it with the best time.
fn best_t4_and_time(
    device: &DeviceSpec,
    batch: &SystemBatch<f32>,
    s3: usize,
) -> (usize, trisolve_core::BaseVariant, f64) {
    use trisolve_core::BaseVariant;
    let mut best = (32usize, BaseVariant::Strided, f64::INFINITY);
    let mut t4 = 16usize;
    while t4 <= s3 {
        for variant in [BaseVariant::Strided, BaseVariant::Coalesced] {
            let p = SolverParams {
                stage1_target_systems: 16,
                onchip_size: s3,
                thomas_switch: t4,
                variant,
            };
            let ms = solve_ms(device, batch, &p);
            if ms < best.2 {
                best = (t4, variant, ms);
            }
        }
        t4 *= 2;
    }
    best
}

// ---------------------------------------------------------------------------
// Figure 6: stage-3 -> stage-4 switch point sweep
// ---------------------------------------------------------------------------

/// One point of the Figure 6 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// Subsystems handed to the Thomas phase (x-axis).
    pub thomas_switch: usize,
    /// Simulated milliseconds.
    pub time_ms: f64,
    /// Performance relative to the best point (y-axis).
    pub relative: f64,
}

/// Sweep the PCR→Thomas switch inside the base kernel (Figure 6).
///
/// Workload: a machine-filling batch of systems exactly the device's
/// on-chip size, so only the base kernel runs.
pub fn fig6_sweep(device: &DeviceSpec, systems_per_sm: usize) -> Vec<Fig6Point> {
    let n = SolverParams::max_onchip_size(device.queryable(), 4);
    let m = systems_per_sm * device.queryable().num_processors;
    let shape = WorkloadShape::new(m, n);
    let batch: SystemBatch<f32> = random_dominant(shape, EXPERIMENT_SEED).unwrap();

    let mut points = Vec::new();
    let mut t4 = 16usize;
    while t4 <= 512.min(n) {
        let p = SolverParams {
            stage1_target_systems: 16,
            onchip_size: n,
            thomas_switch: t4,
            variant: trisolve_core::BaseVariant::Strided,
        };
        points.push(Fig6Point {
            thomas_switch: t4,
            time_ms: solve_ms(device, &batch, &p),
            relative: 0.0,
        });
        t4 *= 2;
    }
    let best = points
        .iter()
        .map(|p| p.time_ms)
        .fold(f64::INFINITY, f64::min);
    for p in &mut points {
        p.relative = best / p.time_ms;
    }
    points
}

// ---------------------------------------------------------------------------
// Figure 7: untuned vs static vs dynamic over the workload grid
// ---------------------------------------------------------------------------

/// One cell of the Figure 7 grid.
#[derive(Debug, Clone)]
pub struct Fig7Cell {
    /// Device name.
    pub device: String,
    /// Workload shape.
    pub shape: WorkloadShape,
    /// Untuned (default parameters) time, ms — the numbers printed above
    /// the paper's bars.
    pub untuned_ms: f64,
    /// Statically tuned time, ms.
    pub static_ms: f64,
    /// Dynamically tuned time, ms.
    pub dynamic_ms: f64,
    /// Per-stage timeline of the dynamically tuned solve (`None` if the
    /// tuned configuration could not run).
    pub dynamic_timeline: Option<StageTimeline>,
}

/// Aggregates over the Figure 7 grid (the §V headline numbers).
#[derive(Debug, Clone, Copy)]
pub struct Fig7Summary {
    /// Mean runtime reduction of static vs untuned (paper: ~17 %).
    pub static_mean_improvement: f64,
    /// Mean runtime reduction of dynamic vs untuned (paper: ~32 %).
    pub dynamic_mean_improvement: f64,
    /// Maximum dynamic-vs-untuned speedup (paper: up to 5×).
    pub dynamic_max_speedup: f64,
    /// Maximum static-vs-untuned runtime reduction (paper: up to 60 %).
    pub static_max_improvement: f64,
}

/// Run the Figure 7 comparison for one device over a workload grid.
///
/// The dynamic tuner runs once per workload class ("at runtime", §IV-C/D)
/// and its result is reused; tuning cost is amortised exactly as the
/// paper's cached tuning results are, so only the tuned solve is timed.
pub fn fig7_device(device: &DeviceSpec, shapes: &[WorkloadShape]) -> Vec<Fig7Cell> {
    let q = device.queryable().clone();
    shapes
        .iter()
        .map(|&shape| {
            let batch: SystemBatch<f32> = random_dominant(shape, EXPERIMENT_SEED).unwrap();
            let mut dynamic = DynamicTuner::new();
            {
                let mut gpu: Gpu<f32> = Gpu::new(device.clone());
                dynamic.tune_for(&mut gpu, shape);
            }
            let tuned = |tuner: &dyn Tuner| {
                let params = tuner.params_for(shape, &q, 4);
                trisolve_autotune::tuners::clamp_to_device(params, &q, 4)
            };
            // The dynamic solve goes through the engine once so its outcome
            // also yields the per-stage timeline; the session's simulated
            // time is identical to `solve_ms` (same launches, same stats).
            let dyn_out = solve_outcome::<f32>(device, &batch, &tuned(&dynamic));
            Fig7Cell {
                device: q.name.clone(),
                shape,
                untuned_ms: solve_ms(device, &batch, &tuned(&DefaultTuner)),
                static_ms: solve_ms(device, &batch, &tuned(&StaticTuner)),
                dynamic_ms: dyn_out
                    .as_ref()
                    .map_or(f64::INFINITY, trisolve_core::SolveOutcome::sim_time_ms),
                dynamic_timeline: dyn_out.map(|o| StageTimeline::from_outcome(&o)),
            }
        })
        .collect()
}

/// Compute the §V headline aggregates from Figure 7 cells.
pub fn fig7_summary(cells: &[Fig7Cell]) -> Fig7Summary {
    let mut s_impr = Vec::new();
    let mut d_impr = Vec::new();
    let mut d_speedup: f64 = 0.0;
    for c in cells {
        s_impr.push(1.0 - c.static_ms / c.untuned_ms);
        d_impr.push(1.0 - c.dynamic_ms / c.untuned_ms);
        d_speedup = d_speedup.max(c.untuned_ms / c.dynamic_ms);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Fig7Summary {
        static_mean_improvement: mean(&s_impr),
        dynamic_mean_improvement: mean(&d_impr),
        dynamic_max_speedup: d_speedup,
        static_max_improvement: s_impr.iter().cloned().fold(f64::MIN, f64::max),
    }
}

// ---------------------------------------------------------------------------
// Figure 8: GPU (GTX 470, dynamically tuned) vs CPU (MKL model)
// ---------------------------------------------------------------------------

/// One row of the Figure 8 comparison.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Workload shape.
    pub shape: WorkloadShape,
    /// Simulated GPU milliseconds (GTX 470, dynamically tuned).
    pub gpu_ms: f64,
    /// Simulated CPU milliseconds (Core i5 MKL model).
    pub cpu_ms: f64,
    /// CPU threads used (2 for batches, 1 for a single system).
    pub cpu_threads: usize,
    /// `cpu_ms / gpu_ms` (the paper's 11×/7×/6×/0.7× labels).
    pub speedup: f64,
    /// Per-stage timeline of the tuned GPU solve (`None` if it cannot run).
    pub gpu_timeline: Option<StageTimeline>,
}

/// Run the Figure 8 comparison over a workload grid.
pub fn fig8_comparison(shapes: &[WorkloadShape]) -> Vec<Fig8Row> {
    let device = DeviceSpec::gtx_470();
    let cpu = CpuSpec::core_i5_dual_3_4ghz();
    let q = device.queryable().clone();

    shapes
        .iter()
        .map(|&shape| {
            let batch: SystemBatch<f32> = random_dominant(shape, EXPERIMENT_SEED).unwrap();
            let mut dynamic = DynamicTuner::new();
            {
                let mut gpu: Gpu<f32> = Gpu::new(device.clone());
                dynamic.tune_for(&mut gpu, shape);
            }
            let params = dynamic.params_for(shape, &q, 4);
            let out = solve_outcome::<f32>(&device, &batch, &params);
            let gpu_ms = out
                .as_ref()
                .map_or(f64::INFINITY, trisolve_core::SolveOutcome::sim_time_ms);
            let (cpu_s, threads) = cpu.time_batch_lu_auto(shape.num_systems, shape.system_size);
            let cpu_ms = cpu_s * 1e3;
            Fig8Row {
                shape,
                gpu_ms,
                cpu_ms,
                cpu_threads: threads,
                speedup: cpu_ms / gpu_ms,
                gpu_timeline: out.map(|o| StageTimeline::from_outcome(&o)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Many-small layout comparison: staged PCR vs interleaved batched-Thomas
// ---------------------------------------------------------------------------

/// One row of the many-small layout comparison: the staged pipeline's
/// best time against the interleaved batched-Thomas fast path, plus the
/// layout each of the three tuners selects for the shape.
#[derive(Debug, Clone)]
pub struct ManySmallRow {
    /// Workload shape.
    pub shape: WorkloadShape,
    /// Best staged time (strided or coalesced base kernel), ms.
    pub staged_pcr_ms: f64,
    /// Interleaved batched-Thomas time, ms.
    pub batched_thomas_ms: f64,
    /// Layout the machine-oblivious default tuner selects.
    pub untuned_variant: trisolve_core::BaseVariant,
    /// Layout the machine-query (static) tuner selects.
    pub static_variant: trisolve_core::BaseVariant,
    /// Layout the measured (dynamic) tuner selects after tuning on the
    /// device at this exact shape.
    pub dynamic_variant: trisolve_core::BaseVariant,
}

impl ManySmallRow {
    /// True when the fast path beats the staged pipeline on this row.
    pub fn interleaved_wins(&self) -> bool {
        self.batched_thomas_ms < self.staged_pcr_ms
    }
}

/// Compare the staged pipeline against the interleaved batched-Thomas
/// fast path over the many-small grid on one device.
///
/// Both sides run the static tuner's switch points so the comparison
/// isolates the layout axis; the row also records which layout each
/// tuner strategy would pick, making the snapshot show *when* the
/// selection logic agrees with the measurement.
pub fn many_small_comparison(device: &DeviceSpec, shapes: &[WorkloadShape]) -> Vec<ManySmallRow> {
    use trisolve_core::BaseVariant;
    let q = device.queryable().clone();
    shapes
        .iter()
        .map(|&shape| {
            let batch: SystemBatch<f32> = random_dominant(shape, EXPERIMENT_SEED).unwrap();
            let staged_base = trisolve_autotune::tuners::clamp_to_device(
                SolverParams {
                    variant: BaseVariant::Strided,
                    ..StaticTuner.params_for(shape, &q, 4)
                },
                &q,
                4,
            );
            let staged_pcr_ms = [BaseVariant::Strided, BaseVariant::Coalesced]
                .into_iter()
                .map(|variant| {
                    solve_ms(
                        device,
                        &batch,
                        &SolverParams {
                            variant,
                            ..staged_base
                        },
                    )
                })
                .fold(f64::INFINITY, f64::min);
            let batched_thomas_ms = solve_ms(
                device,
                &batch,
                &SolverParams {
                    variant: BaseVariant::Interleaved,
                    ..staged_base
                },
            );
            let mut dynamic = DynamicTuner::new();
            {
                let mut gpu: Gpu<f32> = Gpu::new(device.clone());
                dynamic.tune_for(&mut gpu, shape);
            }
            ManySmallRow {
                shape,
                staged_pcr_ms,
                batched_thomas_ms,
                untuned_variant: DefaultTuner.params_for(shape, &q, 4).variant,
                static_variant: StaticTuner.params_for(shape, &q, 4).variant,
                dynamic_variant: dynamic.params_for(shape, &q, 4).variant,
            }
        })
        .collect()
}

/// The many-small workload grid, batch-shrunk for quick runs: system
/// sizes stay as-is (they are already small — shrinking them would leave
/// the regime under test), while the batch keeps the interleaved plan's
/// 32-system floor.
pub fn many_small_grid(shrink: usize) -> Vec<WorkloadShape> {
    assert!(shrink >= 1);
    WorkloadShape::many_small_grid()
        .into_iter()
        .map(|s| WorkloadShape::new((s.num_systems / shrink).max(32), s.system_size))
        .collect()
}

// ---------------------------------------------------------------------------

/// The paper's Figure 7/8 workload grid, optionally scaled down by `shrink`
/// (a power of two) for fast runs: each dimension of every workload is
/// divided by `shrink`.
pub fn paper_grid(shrink: usize) -> Vec<WorkloadShape> {
    assert!(shrink >= 1);
    WorkloadShape::paper_grid()
        .into_iter()
        .map(|s| {
            WorkloadShape::new(
                (s.num_systems / shrink).max(1),
                (s.system_size / shrink).max(512),
            )
        })
        .collect()
}
