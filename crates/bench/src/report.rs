//! Plain-text report rendering: aligned tables with paper-vs-measured
//! columns, shared by every `fig*`/`table*` binary.

use std::fmt::Write as _;

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |out: &mut String, cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    line(
        &mut out,
        &headers
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if !v.is_finite() {
        "n/a".into()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio like the paper's speedup labels (`11X`, `0.7X`).
pub fn speedup(v: f64) -> String {
    if v >= 2.0 {
        format!("{v:.0}X")
    } else {
        format!("{v:.1}X")
    }
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md-style output.
pub fn compare_line(metric: &str, paper: &str, measured: &str) -> String {
    format!("{metric:<44} paper: {paper:<12} measured: {measured}")
}

/// Write a figure binary's `--trace` output to `target/<bin>_trace.json`
/// and print where it went. Best-effort: a failed write is reported on
/// stderr but never aborts the benchmark run.
pub fn write_trace_file(bin: &str, json: &str) {
    let path = format!("target/{bin}_trace.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("trace written to {path} (load in Perfetto / chrome://tracing)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-header"));
        // Every data line starts aligned.
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ms(f64::INFINITY), "n/a");
        assert_eq!(speedup(11.2), "11X");
        assert_eq!(speedup(0.71), "0.7X");
        assert_eq!(pct(0.17), "17%");
    }
}
