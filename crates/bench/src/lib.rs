#![warn(missing_docs)]

//! # trisolve-bench
//!
//! The experiment harness: one function per paper table/figure, shared by
//! the `fig*`/`table*` binaries, the calibration tests and the Criterion
//! benches. Every function returns plain data so callers can print, assert
//! or serialise it.

pub mod experiments;
pub mod report;

pub use experiments::*;
