//! Ablation for §III-A: the paper's PCR-Thomas hybrid against Zhang et
//! al.'s CR-PCR hybrid (the prior-art base kernel), in single and double
//! precision.
//!
//! The claim: "Compared to Zhang et al.'s best (CR-PCR) hybrid algorithm,
//! our work has similar performance for single-precision systems and better
//! performance for double-precision systems; our primary advantage is
//! leveraging the superior work efficiency of the Thomas algorithm."
//!
//! We compare along two axes:
//! * **work**: thread-operation counts of the two hybrids (analytic models
//!   verified by the unit tests);
//! * **simulated time**: the PCR-Thomas base kernel in f32 vs f64, showing
//!   the f64 shared-memory (bank-conflict) penalty the CR-PCR formulation
//!   suffers more from (it does more shared-memory traffic per equation).
//!
//! `cargo run --release -p trisolve-bench --bin ablation_hybrid`

use trisolve_bench::report;
use trisolve_core::kernels::GpuScalar;
use trisolve_core::{solver, SolverParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
use trisolve_tridiag::{hybrid, pcr};

fn time_base_kernel<T: GpuScalar>(device: &DeviceSpec, m: usize, n: usize, t4: usize) -> f64 {
    let batch = random_dominant::<T>(WorkloadShape::new(m, n), 11).unwrap();
    let mut gpu: Gpu<T> = Gpu::new(device.clone());
    let params = SolverParams {
        stage1_target_systems: 16,
        onchip_size: n,
        thomas_switch: t4,
        variant: trisolve_core::BaseVariant::Strided,
    };
    solver::measure_solve_time(&mut gpu, &batch, &params).unwrap() * 1e3
}

fn time_baseline<T: GpuScalar>(
    device: &DeviceSpec,
    m: usize,
    n: usize,
    algo: trisolve_core::kernels::BaselineAlgo,
) -> f64 {
    use trisolve_core::kernels::baseline_solve;
    let batch = random_dominant::<T>(WorkloadShape::new(m, n), 11).unwrap();
    let mut gpu: Gpu<T> = Gpu::new(device.clone());
    let src = [
        gpu.alloc_from(&batch.a).unwrap(),
        gpu.alloc_from(&batch.b).unwrap(),
        gpu.alloc_from(&batch.c).unwrap(),
        gpu.alloc_from(&batch.d).unwrap(),
    ];
    let x = gpu.alloc(m * n).unwrap();
    baseline_solve(&mut gpu, src, x, m, n, n, 1, algo).map_or(f64::INFINITY, |s| s.total_time_ms())
}

fn main() {
    println!("== work-efficiency comparison (thread-operations per system) ==");
    let rows: Vec<Vec<String>> = [256usize, 512, 1024, 4096]
        .iter()
        .map(|&n| {
            let pcr_thomas = hybrid::pcr_thomas_ops(n, 128.min(n));
            let cr_pcr = hybrid::cr_pcr_ops(n, 64.min(n));
            let pure_pcr = pcr::pcr_flops(n, pcr::ceil_log2(n));
            vec![
                n.to_string(),
                pcr_thomas.to_string(),
                cr_pcr.to_string(),
                pure_pcr.to_string(),
                format!("{:.2}", pure_pcr as f64 / pcr_thomas as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "operations per system",
            &[
                "n",
                "PCR-Thomas",
                "CR-PCR (Zhang)",
                "pure PCR",
                "PCR/PCR-Thomas"
            ],
            &rows
        )
    );

    println!("== precision sensitivity of the base kernel (GTX 280, 16-bank shared memory) ==");
    let dev = DeviceSpec::gtx_280();
    let rows: Vec<Vec<String>> = [(2048usize, 256usize), (4096, 512)]
        .iter()
        .map(|&(m, n)| {
            let f32_ms = time_base_kernel::<f32>(&dev, m, n, 64.min(n));
            let f64_ms = time_base_kernel::<f64>(&dev, m, n, 64.min(n));
            vec![
                format!("{m}x{n}"),
                report::ms(f32_ms),
                report::ms(f64_ms),
                format!("{:.2}x", f64_ms / f32_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "f32 vs f64 base kernel",
            &["workload", "f32 ms", "f64 ms", "penalty"],
            &rows
        )
    );

    println!("== on-chip kernels head to head (simulated ms, machine-filling batch) ==");
    use trisolve_core::kernels::BaselineAlgo;
    for dev in [DeviceSpec::gtx_280(), DeviceSpec::gtx_470()] {
        let n = SolverParams::max_onchip_size(dev.queryable(), 4);
        let m = 32 * dev.queryable().num_processors;
        let rows: Vec<Vec<String>> = [("f32", true), ("f64", false)]
            .iter()
            .map(|&(prec, single)| {
                let (ours, pcr, cr, crpcr) = if single {
                    (
                        time_base_kernel::<f32>(&dev, m, n, 128.min(n)),
                        time_baseline::<f32>(&dev, m, n, BaselineAlgo::Pcr),
                        time_baseline::<f32>(&dev, m, n, BaselineAlgo::Cr),
                        time_baseline::<f32>(&dev, m, n, BaselineAlgo::CrPcr { pcr_threshold: 64 }),
                    )
                } else {
                    let n = SolverParams::max_onchip_size(dev.queryable(), 8);
                    (
                        time_base_kernel::<f64>(&dev, m, n, 128.min(n)),
                        time_baseline::<f64>(&dev, m, n, BaselineAlgo::Pcr),
                        time_baseline::<f64>(&dev, m, n, BaselineAlgo::Cr),
                        time_baseline::<f64>(&dev, m, n, BaselineAlgo::CrPcr { pcr_threshold: 64 }),
                    )
                };
                vec![
                    prec.to_string(),
                    report::ms(ours),
                    report::ms(crpcr),
                    report::ms(pcr),
                    report::ms(cr),
                    format!("{:.2}x", crpcr / ours),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                dev.name(),
                &[
                    "precision",
                    "PCR-Thomas (ours)",
                    "CR-PCR (Zhang)",
                    "pure PCR",
                    "pure CR",
                    "Zhang/ours"
                ],
                &rows
            )
        );
    }
    println!(
        "Paper claim (SIII-A): similar performance in single precision, better in double\n\
         precision - the Thomas phase makes fewer (bank-conflicting) shared accesses."
    );
    println!(
        "The f64 penalty exceeds the 2x data-volume factor because 64-bit shared\n\
         accesses serialise on 32-bit banks — the effect that favours the\n\
         Thomas-heavy hybrid (fewer shared accesses per equation) in double\n\
         precision, as §III-A claims."
    );
}
