//! Ablation for §IV-D's two search-pruning strategies:
//!
//! 1. **decoupling** — independent parameter groups searched additively
//!    (16+32 = 48) instead of jointly (16×32 = 512);
//! 2. **seeding** — hill climbing started from the machine-query guess
//!    probes far fewer configurations than exhaustive search, and lands on
//!    (or next to) the same optimum.
//!
//! `cargo run --release -p trisolve-bench --bin ablation_search`

use trisolve_autotune::{
    decoupled_evaluations, exhaustive_pow2, hill_climb_pow2, joint_evaluations, Microbench,
    Pow2Axis, StaticTuner, Tuner,
};
use trisolve_bench::report;
use trisolve_core::{BaseVariant, SolverParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::WorkloadShape;

fn main() {
    // --- 1. The decoupling arithmetic on the real tuning axes. ----------
    let s3 = Pow2Axis::new("onchip_size", 32, 1024);
    let t4 = Pow2Axis::new("thomas_switch", 8, 1024);
    let p1 = Pow2Axis::new("stage1_target", 1, 64);
    println!("== decoupled vs joint search cost (evaluations) ==");
    let rows = vec![
        vec![
            "S3 x T4 x P1".into(),
            joint_evaluations(&[s3, t4, p1]).to_string(),
            decoupled_evaluations(&[s3, t4, p1]).to_string(),
        ],
        vec![
            "paper's example (16 x 32)".into(),
            "512".into(),
            "48".into(),
        ],
    ];
    println!(
        "{}",
        report::render_table(
            "pruning by decoupling",
            &["axes", "joint", "decoupled"],
            &rows
        )
    );

    // --- 2. Seeded hill climb vs exhaustive on a real tuning axis. ------
    println!("== seeded hill climb vs exhaustive (real measurements, GTX 470) ==");
    let device = DeviceSpec::gtx_470();
    let shape = WorkloadShape::new(224, 8192);
    let q = device.queryable().clone();
    let static_seed = StaticTuner.params_for(shape, &q, 4);

    let mut gpu: Gpu<f32> = Gpu::new(device.clone());
    let mut mb: Microbench<f32> = Microbench::new();
    let axis = Pow2Axis::new("onchip_size", 32, 1024);
    let eval = |s3: usize, mb: &mut Microbench<f32>, gpu: &mut Gpu<f32>| {
        mb.measure(
            gpu,
            shape,
            &SolverParams {
                stage1_target_systems: 16,
                onchip_size: s3,
                thomas_switch: 64.min(s3),
                variant: BaseVariant::Strided,
            },
        )
    };

    let (hc_best, hc_cost, hc_stats) = hill_climb_pow2(axis, static_seed.onchip_size, |s3| {
        eval(s3, &mut mb, &mut gpu)
    });
    let (ex_best, ex_cost, ex_stats) = exhaustive_pow2(axis, |s3| eval(s3, &mut mb, &mut gpu));

    let rows = vec![
        vec![
            "seeded hill climb".into(),
            hc_best.to_string(),
            format!("{:.3} ms", hc_cost * 1e3),
            hc_stats.evaluations.to_string(),
        ],
        vec![
            "exhaustive".into(),
            ex_best.to_string(),
            format!("{:.3} ms", ex_cost * 1e3),
            ex_stats.evaluations.to_string(),
        ],
    ];
    println!(
        "{}",
        report::render_table(
            "on-chip-size search (seed = machine-query guess)",
            &["method", "best S3", "best time", "evaluations"],
            &rows
        )
    );
    let gap = hc_cost / ex_cost - 1.0;
    println!(
        "optimality gap of the pruned search: {:.2}% with {} of {} evaluations",
        gap * 100.0,
        hc_stats.evaluations,
        ex_stats.evaluations
    );
}
