//! Regenerate paper Figure 7: non-tuned vs statically tuned vs dynamically
//! tuned execution time over the workload grid (1K×1K, 2K×2K, 4K×4K, 1×2M)
//! on all three devices, normalised to the untuned time, with the untuned
//! milliseconds printed like the numbers above the paper's bars.
//!
//! `cargo run --release -p trisolve-bench --bin fig7 [-- --quick] [-- --trace]`
//!
//! `--trace` additionally writes a Chrome trace of the statically tuned
//! GTX 470 solve of the first grid workload to `target/fig7_trace.json`.

use trisolve_bench::{experiments, report};
use trisolve_gpu_sim::DeviceSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let shrink = if quick { 4 } else { 1 };
    let grid = experiments::paper_grid(shrink);
    println!(
        "Figure 7 reproduction: workload grid {:?}, f32\n",
        grid.iter()
            .map(trisolve_tridiag::workloads::WorkloadShape::label)
            .collect::<Vec<_>>()
    );

    let mut all = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        let cells = experiments::fig7_device(&dev, &grid);
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.shape.label(),
                    report::ms(c.untuned_ms),
                    format!("{:.2}", 1.0),
                    format!("{:.2}", c.static_ms / c.untuned_ms),
                    format!("{:.2}", c.dynamic_ms / c.untuned_ms),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                dev.name(),
                &[
                    "workload",
                    "untuned ms",
                    "untuned (norm)",
                    "static (norm)",
                    "dynamic (norm)"
                ],
                &rows
            )
        );
        all.extend(cells);
    }

    println!("== per-stage timelines (dynamically tuned, serde-JSON) ==");
    for c in &all {
        if let Some(tl) = &c.dynamic_timeline {
            println!(
                "timeline-json {{\"device\":{:?},\"workload\":{:?},\"timeline\":{}}}",
                c.device,
                c.shape.label(),
                serde_json::to_string(tl).expect("timeline serialises")
            );
        }
    }
    println!();

    if trace {
        use trisolve_autotune::{StaticTuner, Tuner};
        let dev = DeviceSpec::gtx_470();
        let shape = grid[0];
        let batch = trisolve_tridiag::workloads::random_dominant::<f32>(
            shape,
            experiments::EXPERIMENT_SEED,
        )
        .unwrap();
        let params = StaticTuner.params_for(shape, dev.queryable(), 4);
        if let Some(json) = experiments::traced_chrome_trace(&dev, &batch, &params) {
            report::write_trace_file("fig7", &json);
        }
    }

    let s = experiments::fig7_summary(&all);
    println!("== headline numbers (paper §V) ==");
    println!(
        "{}",
        report::compare_line(
            "static tuning: mean runtime reduction",
            "17%",
            &report::pct(s.static_mean_improvement)
        )
    );
    println!(
        "{}",
        report::compare_line(
            "static tuning: max runtime reduction",
            "up to 60%",
            &report::pct(s.static_max_improvement)
        )
    );
    println!(
        "{}",
        report::compare_line(
            "dynamic tuning: mean runtime reduction",
            "32%",
            &report::pct(s.dynamic_mean_improvement)
        )
    );
    println!(
        "{}",
        report::compare_line(
            "dynamic tuning: max speedup",
            "5x",
            &format!("{:.1}x", s.dynamic_max_speedup)
        )
    );
}
