//! Numerical self-test: runs the full solver matrix — device × workload
//! class × precision × tuner — and prints the worst relative residual for
//! each cell. A release-gate style check that everything solves everything.
//!
//! `cargo run --release -p trisolve-bench --bin verify_numerics`

use trisolve_autotune::{DefaultTuner, StaticTuner, Tuner};
use trisolve_bench::report;
use trisolve_core::kernels::GpuScalar;
use trisolve_core::{solve_batch_on_gpu, SolverParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::norms::batch_worst_relative_residual;
use trisolve_tridiag::workloads::{self, WorkloadShape};
use trisolve_tridiag::SystemBatch;

fn residual<T: GpuScalar>(
    device: &DeviceSpec,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> f64 {
    let mut gpu: Gpu<T> = Gpu::new(device.clone());
    match solve_batch_on_gpu(&mut gpu, batch, params) {
        Ok(out) => batch_worst_relative_residual(batch, &out.x).unwrap_or(f64::INFINITY),
        Err(_) => f64::INFINITY,
    }
}

fn main() {
    let shape = WorkloadShape::new(16, 3000); // deliberately non-power-of-two
    let classes: Vec<(&str, SystemBatch<f64>)> = vec![
        ("random", workloads::random_dominant(shape, 1).unwrap()),
        ("poisson", workloads::poisson_1d(shape, 1).unwrap()),
        ("adi", workloads::adi_heat_lines(shape, 0.7).unwrap()),
        ("spline", workloads::cubic_spline(shape, 1).unwrap()),
        (
            "toeplitz",
            workloads::toeplitz(shape, -1.0, 3.0, -1.0).unwrap(),
        ),
    ];
    let classes32: Vec<(&str, SystemBatch<f32>)> = vec![
        ("random", workloads::random_dominant(shape, 1).unwrap()),
        ("poisson", workloads::poisson_1d(shape, 1).unwrap()),
        ("adi", workloads::adi_heat_lines(shape, 0.7).unwrap()),
        ("spline", workloads::cubic_spline(shape, 1).unwrap()),
        (
            "toeplitz",
            workloads::toeplitz(shape, -1.0, 3.0, -1.0).unwrap(),
        ),
    ];

    let mut failures = 0usize;
    for device in DeviceSpec::paper_devices() {
        let q = device.queryable();
        let mut rows = Vec::new();
        for (name, b64) in &classes {
            let b32 = &classes32.iter().find(|(n, _)| n == name).unwrap().1;
            let mut cells = vec![name.to_string()];
            for tuner_name in ["default", "static"] {
                let (p32, p64) = match tuner_name {
                    "default" => (
                        DefaultTuner.params_for(shape, q, 4),
                        DefaultTuner.params_for(shape, q, 8),
                    ),
                    _ => (
                        StaticTuner.params_for(shape, q, 4),
                        StaticTuner.params_for(shape, q, 8),
                    ),
                };
                let r32 = residual(&device, b32, &p32);
                let r64 = residual(&device, b64, &p64);
                if r32 > 1e-3 || r64 > 1e-10 {
                    failures += 1;
                }
                cells.push(format!("{r32:.1e}"));
                cells.push(format!("{r64:.1e}"));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            report::render_table(
                &format!("{} — worst relative residuals (16x3000)", device.name()),
                &["workload", "def f32", "def f64", "sta f32", "sta f64"],
                &rows
            )
        );
    }
    if failures == 0 {
        println!("ALL PASS: every device x workload x precision x tuner within tolerance");
    } else {
        println!("{failures} FAILURES — see table above");
        std::process::exit(1);
    }
}
