//! Regenerate paper Table II: the queryable device properties the
//! machine-query (static) tuner may use — and, for contrast, the hidden
//! quantities it cannot see (which is why dynamic tuning wins).
//!
//! `cargo run -p trisolve-bench --bin table2`

use trisolve_bench::report;
use trisolve_gpu_sim::DeviceSpec;

fn main() {
    let descriptions: [(&str, &str); 6] = [
        ("Global Mem", "Total amount of global memory available"),
        (
            "Processors",
            "Total number of processors; each has n thread processors",
        ),
        ("Constant Memory", "Total amount of constant memory"),
        (
            "Shared Memory",
            "Per-processor shared memory: limits concurrent systems and the max PCR-Thomas size",
        ),
        (
            "Register Memory",
            "Registers per processor: trades thread count against registers per thread",
        ),
        ("Grid Dimensions", "API limit on blocks per grid"),
    ];
    let rows: Vec<Vec<String>> = descriptions
        .iter()
        .map(|(k, v)| vec![k.to_string(), v.to_string()])
        .collect();
    println!(
        "{}",
        report::render_table(
            "Table II: queryable CUDA device properties",
            &["Query Parameter", "Description"],
            &rows
        )
    );

    println!("Values per device (as returned by `DeviceSpec::queryable()`):\n");
    let rows: Vec<Vec<String>> = DeviceSpec::paper_devices()
        .iter()
        .map(|d| {
            let q = d.queryable();
            vec![
                q.name.clone(),
                format!("{} MB", q.global_mem_bytes / (1024 * 1024)),
                q.num_processors.to_string(),
                format!("{} KB", q.constant_mem_bytes / 1024),
                format!("{} KB", q.shared_mem_per_sm_bytes / 1024),
                q.registers_per_sm.to_string(),
                q.max_grid_blocks.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "Queryable values",
            &["Device", "Global", "SMs", "Const", "Shared", "Regs/SM", "Max grid"],
            &rows
        )
    );

    println!(
        "NOT queryable (paper §IV-C): memory bandwidth / bus width, shared-memory bank count,\n\
         per-bank bandwidth, latency constants — the simulator keeps these in `HiddenProps`,\n\
         visible to its timing model but not to the tuners."
    );
}
