//! Ablation: the three answers to strided chains (§III-A extended) as the
//! stride grows — the paper's two base-kernel variants plus the repack
//! pipeline (tiled transpose → unit-stride base kernel → transpose back).
//!
//! The crossover structure is the point: coalesced over-fetch wins at small
//! strides, the capped-waste strided gather wins at large strides, and the
//! repack pipeline's two extra passes pay off in between / at scale —
//! a tuner-decidable three-way choice.
//!
//! `cargo run --release -p trisolve-bench --bin ablation_repack`

use trisolve_bench::report;
use trisolve_core::kernels::{base_solve, repack_chains, unpack_solution, CoeffBuffers};
use trisolve_core::BaseVariant;
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

fn coeffs(
    gpu: &mut Gpu<f32>,
    total: usize,
    batch: &trisolve_tridiag::SystemBatch<f32>,
) -> CoeffBuffers {
    let _ = total;
    [
        gpu.alloc_from(&batch.a).unwrap(),
        gpu.alloc_from(&batch.b).unwrap(),
        gpu.alloc_from(&batch.c).unwrap(),
        gpu.alloc_from(&batch.d).unwrap(),
    ]
}

fn main() {
    let device = DeviceSpec::gtx_470();
    let chain_len = 512usize;
    println!(
        "three-way layout ablation on {} (chain length {chain_len}, f32)\n",
        device.name()
    );

    let mut rows = Vec::new();
    for stride in [2usize, 4, 8, 16, 32, 64] {
        let n = chain_len * stride;
        let m = (4096 / stride).max(2);
        let total = m * n;
        let batch = random_dominant::<f32>(WorkloadShape::new(m, n), 7).unwrap();

        // Variant A: strided gather.
        let run_variant = |variant: BaseVariant| {
            let mut gpu: Gpu<f32> = Gpu::new(device.clone());
            let src = coeffs(&mut gpu, total, &batch);
            let x = gpu.alloc(total).unwrap();
            base_solve(&mut gpu, src, x, m, n, chain_len, stride, 128, variant).unwrap();
            gpu.elapsed_s() * 1e3
        };
        let t_strided = run_variant(BaseVariant::Strided);
        let t_coalesced = run_variant(BaseVariant::Coalesced);

        // Variant C: repack -> unit-stride solve -> unpack.
        let t_repack = {
            let mut gpu: Gpu<f32> = Gpu::new(device.clone());
            let src = coeffs(&mut gpu, total, &batch);
            let packed = [
                gpu.alloc(total).unwrap(),
                gpu.alloc(total).unwrap(),
                gpu.alloc(total).unwrap(),
                gpu.alloc(total).unwrap(),
            ];
            let xp = gpu.alloc(total).unwrap();
            let xo = gpu.alloc(total).unwrap();
            repack_chains(&mut gpu, src, packed, m, n, stride).unwrap();
            base_solve(
                &mut gpu,
                packed,
                xp,
                m * stride,
                chain_len,
                chain_len,
                1,
                128,
                BaseVariant::Strided,
            )
            .unwrap();
            unpack_solution(&mut gpu, xp, xo, m, n, stride).unwrap();
            gpu.elapsed_s() * 1e3
        };

        let best = t_strided.min(t_coalesced).min(t_repack);
        let winner = if best == t_strided {
            "strided"
        } else if best == t_coalesced {
            "coalesced"
        } else {
            "repack"
        };
        rows.push(vec![
            stride.to_string(),
            report::ms(t_strided),
            report::ms(t_coalesced),
            report::ms(t_repack),
            winner.into(),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            "simulated ms per full solve of the chain batch",
            &[
                "stride",
                "strided gather",
                "coalesced over-fetch",
                "repack pipeline",
                "winner"
            ],
            &rows
        )
    );
    println!(
        "The paper resolves the strided/coalesced pair empirically (§IV-D); the\n\
         repack pipeline is the natural third candidate and slots into the same\n\
         tuned decision."
    );
}
