//! Per-launch profile of one solve — the debugging/inspection tool behind
//! the calibration work. Prints every kernel launch with its simulated
//! time, limiter and residency.
//!
//! `cargo run --release -p trisolve-bench --bin profile -- [m] [n] [--trace]`
//!
//! `--trace` additionally writes a Chrome trace of the tuned GTX 470
//! solve to `target/profile_trace.json`.

use trisolve_autotune::{DynamicTuner, Tuner};
use trisolve_bench::{experiments, report};
use trisolve_core::StageTimeline;
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = args.iter().any(|a| a == "--trace");
    let m: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let n: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2 * 1024 * 1024);
    let shape = WorkloadShape::new(m, n);
    let batch = random_dominant::<f32>(shape, 2011).unwrap();

    for device in DeviceSpec::paper_devices() {
        let mut gpu: Gpu<f32> = Gpu::new(device.clone());
        let mut tuner = DynamicTuner::new();
        let cfg = tuner.tune_for(&mut gpu, shape);
        let params = tuner.params_for(shape, gpu.spec().queryable(), 4);
        let out = experiments::solve_outcome::<f32>(&device, &batch, &params).unwrap();

        println!(
            "--- {} | {} | tuned S3={} T4={} P1={} {:?} ({} evals) ---",
            device.name(),
            out.plan.summary(),
            cfg.onchip_size,
            cfg.thomas_switch,
            cfg.stage1_target_systems,
            params.variant,
            cfg.evaluations
        );
        let rows: Vec<Vec<String>> = out
            .kernel_stats
            .iter()
            .map(|s| {
                vec![
                    s.label.clone(),
                    s.grid_blocks.to_string(),
                    s.block_threads.to_string(),
                    format!("{}/{}", s.residency.blocks_per_sm, s.residency.warps_per_sm),
                    format!("{:?}", s.limited_by),
                    format!("{:.1}%", s.totals.coalescing_efficiency() * 100.0),
                    report::ms(s.exec_time_s * 1e3),
                    report::ms(s.overhead_s * 1e3),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                &format!("total {:.3} ms", out.sim_time_ms()),
                &["kernel", "grid", "thr", "res b/w", "limit", "coal", "exec ms", "ovh ms"],
                &rows
            )
        );

        // Per-stage aggregation of the same launches: stage1/stage2/base
        // totals plus the serde-JSON form for downstream tooling.
        let timeline = StageTimeline::from_outcome(&out);
        println!("{}", timeline.render_table());
        println!(
            "timeline-json {}",
            serde_json::to_string(&timeline).expect("timeline serialises")
        );

        if trace && device.name().contains("470") {
            if let Some(json) = experiments::traced_chrome_trace(&device, &batch, &params) {
                report::write_trace_file("profile", &json);
            }
        }
    }
}
