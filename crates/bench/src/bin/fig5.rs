//! Regenerate paper Figure 5: performance at various switch points from
//! stage 2 (global splitting) to stage 3 (solving in shared memory),
//! normalised to the best switch point, per device.
//!
//! `cargo run --release -p trisolve-bench --bin fig5 [-- --quick] [-- --trace]`
//!
//! `--trace` additionally writes a Chrome trace of the GTX 470 best-point
//! solve to `target/fig5_trace.json`.

use trisolve_bench::{experiments, report};
use trisolve_gpu_sim::DeviceSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let (m, n) = if quick { (256, 1024) } else { (1024, 1024) };
    println!("Figure 5 reproduction: {m} systems x {n} equations, f32\n");

    for dev in DeviceSpec::paper_devices() {
        let pts = experiments::fig5_sweep(&dev, m, n);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.onchip_size.to_string(),
                    format!("{:.3}", p.relative),
                    report::ms(p.time_ms),
                    p.thomas_switch.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                dev.name(),
                &["switch point (S3)", "relative perf", "ms", "re-tuned T4"],
                &rows
            )
        );
        let best = pts
            .iter()
            .max_by(|a, b| a.relative.total_cmp(&b.relative))
            .unwrap();
        println!("best switch point: {}", best.onchip_size);

        // Per-stage timeline of the best point (serde-JSON).
        let batch = trisolve_tridiag::workloads::random_dominant::<f32>(
            trisolve_tridiag::workloads::WorkloadShape::new(m, n),
            experiments::EXPERIMENT_SEED,
        )
        .unwrap();
        let params = trisolve_core::SolverParams {
            stage1_target_systems: 16,
            onchip_size: best.onchip_size,
            thomas_switch: best.thomas_switch,
            variant: best.variant,
        };
        if let Some(tl) = experiments::stage_timeline(&dev, &batch, &params) {
            println!(
                "timeline-json {}\n",
                serde_json::to_string(&tl).expect("timeline serialises")
            );
        }
        if trace && dev.name().contains("470") {
            if let Some(json) = experiments::traced_chrome_trace(&dev, &batch, &params) {
                report::write_trace_file("fig5", &json);
            }
        }
    }

    println!(
        "{}",
        report::compare_line("8800 GTX best S3", "256", "see above")
    );
    println!(
        "{}",
        report::compare_line("GTX 280 best S3", "512 (~256)", "see above")
    );
    println!(
        "{}",
        report::compare_line("GTX 470 best S3", "512 (beats 1024)", "see above")
    );
}
