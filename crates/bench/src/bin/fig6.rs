//! Regenerate paper Figure 6: performance of the PCR-Thomas base kernel at
//! various stage-3→4 switch points (number of subsystems handed to the
//! Thomas phase), normalised to the best, per device.
//!
//! `cargo run --release -p trisolve-bench --bin fig6 [-- --quick] [-- --trace]`
//!
//! `--trace` additionally writes a Chrome trace of the GTX 470 best-point
//! solve to `target/fig6_trace.json`.

use trisolve_bench::{experiments, report};
use trisolve_gpu_sim::DeviceSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let spm = if quick { 8 } else { 32 };
    println!("Figure 6 reproduction: machine-filling on-chip batch ({spm} systems/SM), f32\n");

    for dev in DeviceSpec::paper_devices() {
        let pts = experiments::fig6_sweep(&dev, spm);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.thomas_switch.to_string(),
                    format!("{:.3}", p.relative),
                    report::ms(p.time_ms),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                dev.name(),
                &["T4 (subsystems)", "relative perf", "ms"],
                &rows
            )
        );
        let best = pts
            .iter()
            .max_by(|a, b| a.relative.total_cmp(&b.relative))
            .unwrap();
        println!("best switch point: {}", best.thomas_switch);

        // Per-stage timeline of the best point (serde-JSON): all base-kernel
        // time by construction (the workload fits on chip).
        let n = trisolve_core::SolverParams::max_onchip_size(dev.queryable(), 4);
        let m = spm * dev.queryable().num_processors;
        let batch = trisolve_tridiag::workloads::random_dominant::<f32>(
            trisolve_tridiag::workloads::WorkloadShape::new(m, n),
            experiments::EXPERIMENT_SEED,
        )
        .unwrap();
        let params = trisolve_core::SolverParams {
            stage1_target_systems: 16,
            onchip_size: n,
            thomas_switch: best.thomas_switch,
            variant: trisolve_core::BaseVariant::Strided,
        };
        if let Some(tl) = experiments::stage_timeline(&dev, &batch, &params) {
            println!(
                "timeline-json {}\n",
                serde_json::to_string(&tl).expect("timeline serialises")
            );
        }
        if trace && dev.name().contains("470") {
            if let Some(json) = experiments::traced_chrome_trace(&dev, &batch, &params) {
                report::write_trace_file("fig6", &json);
            }
        }
    }

    println!(
        "{}",
        report::compare_line("8800 GTX best T4", "64", "see above")
    );
    println!(
        "{}",
        report::compare_line("GTX 280 best T4", "128", "see above")
    );
    println!(
        "{}",
        report::compare_line("GTX 470 best T4", "128", "see above")
    );
    println!(
        "\nNote: the static tuner always guesses 64 (2 warps), so on the 280/470\n\
         dynamic tuning improves on it — the paper's Figure 6 punchline."
    );
}
