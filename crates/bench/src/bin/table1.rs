//! Regenerate paper Table I: the GPU devices used in the tests and
//! benchmarks, with their capability differences.
//!
//! `cargo run -p trisolve-bench --bin table1`

use trisolve_bench::report;
use trisolve_gpu_sim::DeviceSpec;

fn main() {
    let rows: Vec<Vec<String>> = DeviceSpec::paper_devices()
        .iter()
        .map(|d| {
            let q = d.queryable();
            vec![
                q.name.clone(),
                format!("{:.1} GB/s", d.hidden().mem_bandwidth_gbps),
                format!("{} KB", q.shared_mem_per_sm_bytes / 1024),
                q.num_processors.to_string(),
                q.thread_procs_per_sm.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "Table I: GPU devices (paper values, verbatim)",
            &[
                "Name",
                "Global Memory Bandwidth",
                "Shared Memory Size",
                "Number of Processors",
                "Thread Processors per Processor",
            ],
            &rows,
        )
    );
    println!("Paper row 1: 8800 GTX   57.6 GB/s  16 KB  14  8");
    println!("Paper row 2: GTX 280   141.7 GB/s  16 KB  30  8");
    println!("Paper row 3: GTX 470   133.9 GB/s  48 KB  14  32");
}
