//! Calibration harness: prints the qualitative shape of every figure so the
//! hidden device constants can be validated (and, during development,
//! adjusted). See DESIGN.md §4 and EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p trisolve-bench --bin calibrate [--quick]`

use trisolve_bench::{experiments, report};
use trisolve_gpu_sim::DeviceSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m5, n5, spm6, shrink) = if quick {
        (256, 1024, 8, 4)
    } else {
        (1024, 1024, 32, 1)
    };

    println!("=== Figure 5: stage-2->3 switch sweep (m={m5}, n={n5}) ===");
    for dev in DeviceSpec::paper_devices() {
        let pts = experiments::fig5_sweep(&dev, m5, n5);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.onchip_size.to_string(),
                    p.thomas_switch.to_string(),
                    report::ms(p.time_ms),
                    format!("{:.3}", p.relative),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(dev.name(), &["S3", "bestT4", "ms", "relative"], &rows)
        );
    }

    println!("=== Figure 6: stage-3->4 switch sweep ({spm6} systems/SM) ===");
    for dev in DeviceSpec::paper_devices() {
        let pts = experiments::fig6_sweep(&dev, spm6);
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.thomas_switch.to_string(),
                    report::ms(p.time_ms),
                    format!("{:.3}", p.relative),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(dev.name(), &["T4", "ms", "relative"], &rows)
        );
    }

    println!("=== Figure 7: tuning comparison (grid shrink {shrink}) ===");
    let grid = experiments::paper_grid(shrink);
    let mut all_cells = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        let cells = experiments::fig7_device(&dev, &grid);
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.shape.label(),
                    report::ms(c.untuned_ms),
                    report::ms(c.static_ms),
                    report::ms(c.dynamic_ms),
                    format!("{:.2}", c.static_ms / c.untuned_ms),
                    format!("{:.2}", c.dynamic_ms / c.untuned_ms),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                dev.name(),
                &["workload", "untuned", "static", "dynamic", "s/u", "d/u"],
                &rows
            )
        );
        all_cells.extend(cells);
    }
    let s = experiments::fig7_summary(&all_cells);
    println!(
        "summary: static mean improvement {} (paper 17%), dynamic mean {} (paper 32%), dynamic max speedup {:.1}x (paper 5x), static max {}\n",
        report::pct(s.static_mean_improvement),
        report::pct(s.dynamic_mean_improvement),
        s.dynamic_max_speedup,
        report::pct(s.static_max_improvement),
    );

    println!("=== Figure 8: GTX 470 vs Core i5 (grid shrink {shrink}) ===");
    let rows = experiments::fig8_comparison(&grid);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.label(),
                report::ms(r.gpu_ms),
                report::ms(r.cpu_ms),
                r.cpu_threads.to_string(),
                report::speedup(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "GPU vs CPU",
            &["workload", "gpu_ms", "cpu_ms", "threads", "speedup"],
            &table
        )
    );
}
