//! §VI-C demonstration: the multi-stage + auto-tuning strategy applied to a
//! different divide-and-conquer problem — bottom-up merge sort.
//!
//! Shows, per device: the machine-query guess, the tuned parameters, and
//! the untuned/static/tuned simulated times, plus the stage-1-analogue
//! effect (cooperative merging of the final few runs).
//!
//! `cargo run --release -p trisolve-bench --bin dnc_sort`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use trisolve_bench::report;
use trisolve_dnc::{
    quicksort_on_gpu, sort_on_gpu, static_sort_params, tune_quicksort, tune_sort, SortParams,
};
use trisolve_gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let len = 1 << 20;
    let mut rng = ChaCha8Rng::seed_from_u64(2011);
    let data: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
    println!("multi-stage merge sort of {len} random u32 keys\n");

    let mut rows = Vec::new();
    for device in DeviceSpec::paper_devices() {
        let mut gpu: Gpu<u32> = Gpu::new(device.clone());

        let untuned = SortParams::default_untuned();
        let stat = static_sort_params(device.queryable());
        let tuned = tune_sort(&mut gpu, len);

        let ms = |gpu: &mut Gpu<u32>, p: SortParams| {
            let out = sort_on_gpu(gpu, &data, p).expect("sort succeeds");
            assert!(out.data.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
            out.sim_time_s * 1e3
        };
        let t_untuned = ms(&mut gpu, untuned);
        let t_static = ms(&mut gpu, stat);
        let t_tuned = ms(&mut gpu, tuned.params);

        // Quicksort, tuned with the same machinery, for comparison.
        let (qp, _) = tune_quicksort(&mut gpu, len);
        let q_out = quicksort_on_gpu(&mut gpu, &data, qp).expect("quicksort succeeds");
        assert!(q_out.data.windows(2).all(|w| w[0] <= w[1]));

        rows.push(vec![
            device.name().to_string(),
            format!("{}/{}", untuned.tile_size, untuned.coop_threshold),
            format!("{}/{}", stat.tile_size, stat.coop_threshold),
            format!("{}/{}", tuned.params.tile_size, tuned.params.coop_threshold),
            report::ms(t_untuned),
            report::ms(t_static),
            report::ms(t_tuned),
            format!("{:.2}x", t_untuned / t_tuned),
            report::ms(q_out.sim_time_s * 1e3),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            "tile/coop parameters and simulated times",
            &[
                "device",
                "default",
                "static",
                "tuned",
                "untuned ms",
                "static ms",
                "tuned ms",
                "speedup",
                "quicksort ms"
            ],
            &rows
        )
    );
    println!(
        "The same anatomy as the tridiagonal solver: an on-chip stage whose size is\n\
         capacity-limited, independent per-block work while parallelism lasts, and a\n\
         cooperative stage for the tail — with the switch points found by the same\n\
         seeded, decoupled search."
    );
}
