//! Machine-readable benchmark snapshot: per-device, per-workload solve
//! costs for all three tuners, plus tuner-evaluation counts, the
//! trace-derived launch/byte counters of the tuned solve, and the
//! many-small layout comparison (staged PCR vs interleaved
//! batched-Thomas, with the layout each tuner selects).
//!
//! Prints one JSON document to stdout; `scripts/bench_snapshot.sh` wraps
//! this into numbered `BENCH_<n>.json` files for regression comparison.
//! Deterministic: fixed [`experiments::EXPERIMENT_SEED`], simulated clock.
//!
//! `cargo run --release -p trisolve-bench --bin snapshot [-- --quick]`

use trisolve_autotune::{DefaultTuner, DynamicTuner, StaticTuner, Tuner};
use trisolve_bench::experiments;
use trisolve_core::engine::SolveSession;
use trisolve_core::ResiliencePolicy;
use trisolve_gpu_sim::{DeviceSpec, Gpu};
use trisolve_obs::Tracer;
use trisolve_tridiag::workloads::random_dominant;
use trisolve_tridiag::SystemBatch;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shrink = if quick { 4 } else { 1 };
    let grid = experiments::paper_grid(shrink);
    let many_small_grid = experiments::many_small_grid(if quick { 4 } else { 1 });

    let mut devices = Vec::new();
    for dev in DeviceSpec::paper_devices() {
        let q = dev.queryable().clone();
        let mut workloads = Vec::new();
        for &shape in &grid {
            let batch: SystemBatch<f32> =
                random_dominant(shape, experiments::EXPERIMENT_SEED).unwrap();

            let clamp = |t: &dyn Tuner| {
                let p = t.params_for(shape, &q, 4);
                trisolve_autotune::tuners::clamp_to_device(p, &q, 4)
            };
            let untuned_ms = experiments::solve_ms(&dev, &batch, &clamp(&DefaultTuner));
            let static_ms = experiments::solve_ms(&dev, &batch, &clamp(&StaticTuner));

            // The dynamic path runs traced end to end — tuning and the
            // tuned solve on the same gpu — so the snapshot can report
            // the search cost and the solve's launch/byte counters
            // straight from the trace.
            let mut gpu: Gpu<f32> = Gpu::new(dev.clone());
            gpu.set_tracer(Tracer::enabled());
            let mut tuner = DynamicTuner::new();
            let cfg = tuner.tune_for(&mut gpu, shape);
            let params = clamp(&tuner);
            let solve_begin_us = gpu.tracer().clock_us();
            // The tuned solve goes through the resilient pipeline so the
            // snapshot records the recovery counters (all zero on a clean
            // run — no fault plan is armed here; with no faults the
            // resilient path is bit-identical to the plain solve).
            let policy = ResiliencePolicy::for_elem_bytes(4);
            let mut recovered_by = String::from("unrecovered");
            let dynamic_ms = match SolveSession::new(&mut gpu, shape) {
                Ok(mut session) => session
                    .solve_resilient(&mut gpu, &batch, &params, &policy)
                    .map_or(f64::INFINITY, |r| {
                        recovered_by = r.recovered_by.to_string();
                        r.outcome.sim_time_ms()
                    }),
                Err(_) => f64::INFINITY,
            };
            let counter = |name: &str| {
                gpu.tracer()
                    .counters()
                    .iter()
                    .find(|(k, _)| *k == name)
                    .map_or(0, |(_, v)| *v)
            };
            // Launches after `solve_begin_us` belong to the tuned solve;
            // everything before is the tuner's micro-benchmarks.
            let solve_launches = gpu
                .tracer()
                .events()
                .iter()
                .filter(|e| {
                    e.cat == "gpu"
                        && e.phase == trisolve_obs::Phase::Span
                        && e.ts_us >= solve_begin_us
                })
                .count();

            workloads.push(serde_json::json!({
                "workload": shape.label(),
                "systems": shape.num_systems,
                "size": shape.system_size,
                "untuned_ms": untuned_ms,
                "static_ms": static_ms,
                "dynamic_ms": dynamic_ms,
                "tuner_evaluations": cfg.evaluations,
                "traced_tuner_evals": counter("tuner_evals"),
                "solve_launches": solve_launches,
                "total_launches": counter("launches"),
                "gmem_payload_bytes": counter("gmem_payload_bytes"),
                "candidates_pruned": counter("candidates_pruned"),
                "proofs_failed": counter("proofs_failed"),
                "recovered_by": recovered_by,
                "faults_injected": counter("faults_injected"),
                "retries": counter("retries"),
                "fallbacks": counter("fallbacks"),
                "residual_checks": counter("residual_checks"),
            }));
        }
        // The many-small regime: staged PCR vs the interleaved
        // batched-Thomas fast path, and the layout every tuner picks.
        let many_small: Vec<_> = experiments::many_small_comparison(&dev, &many_small_grid)
            .iter()
            .map(|r| {
                serde_json::json!({
                    "workload": r.shape.label(),
                    "systems": r.shape.num_systems,
                    "size": r.shape.system_size,
                    "staged_pcr_ms": r.staged_pcr_ms,
                    "batched_thomas_ms": r.batched_thomas_ms,
                    "interleaved_wins": r.interleaved_wins(),
                    "untuned_layout": r.untuned_variant.layout_name(),
                    "static_layout": r.static_variant.layout_name(),
                    "dynamic_layout": r.dynamic_variant.layout_name(),
                })
            })
            .collect();

        devices.push(serde_json::json!({
            "device": q.name,
            "workloads": workloads,
            "many_small": many_small,
        }));
    }

    let doc = serde_json::json!({
        "snapshot": "trisolve-bench",
        "seed": experiments::EXPERIMENT_SEED,
        "quick": quick,
        "precision": "f32",
        "devices": devices,
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
