//! Regenerate paper Figure 8: the dynamically tuned GTX 470 against the
//! Intel MKL tridiagonal solver on a dual-core 3.4 GHz Core i5, over the
//! workload grid — including the 1×2M case where the CPU wins.
//!
//! `cargo run --release -p trisolve-bench --bin fig8 [-- --quick] [-- --trace]`
//!
//! `--trace` additionally writes a Chrome trace of the statically tuned
//! GTX 470 solve of the first grid workload to `target/fig8_trace.json`.

use trisolve_bench::{experiments, report};

/// Paper Figure 8 values: (label, gpu_ms, cpu_ms, speedup label).
const PAPER: [(&str, f64, f64, &str); 4] = [
    ("1Kx1K", 0.96, 10.70, "11X"),
    ("2Kx2K", 5.52, 37.9, "7X"),
    ("4Kx4K", 27.92, 168.3, "6X"),
    ("1x2M", 50.40, 34.0, "0.7X"),
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let shrink = if quick { 4 } else { 1 };
    let grid = experiments::paper_grid(shrink);
    println!("Figure 8 reproduction: GTX 470 (dynamically tuned) vs Core i5 MKL model, f32\n");

    let rows = experiments::fig8_comparison(&grid);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.label(),
                report::ms(r.gpu_ms),
                report::ms(r.cpu_ms),
                r.cpu_threads.to_string(),
                report::speedup(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            "measured (simulated ms)",
            &["workload", "GPU ms", "CPU ms", "CPU threads", "GPU speedup"],
            &table
        )
    );

    println!("== per-stage timelines (GTX 470, dynamically tuned, serde-JSON) ==");
    for r in &rows {
        if let Some(tl) = &r.gpu_timeline {
            println!(
                "timeline-json {{\"workload\":{:?},\"timeline\":{}}}",
                r.shape.label(),
                serde_json::to_string(tl).expect("timeline serialises")
            );
        }
    }
    println!();

    if trace {
        use trisolve_autotune::{StaticTuner, Tuner};
        let dev = trisolve_gpu_sim::DeviceSpec::gtx_470();
        let shape = grid[0];
        let batch = trisolve_tridiag::workloads::random_dominant::<f32>(
            shape,
            experiments::EXPERIMENT_SEED,
        )
        .unwrap();
        let params = StaticTuner.params_for(shape, dev.queryable(), 4);
        if let Some(json) = experiments::traced_chrome_trace(&dev, &batch, &params) {
            report::write_trace_file("fig8", &json);
        }
    }

    if shrink == 1 {
        println!("paper values for comparison:");
        for (label, g, c, s) in PAPER {
            println!("  {label:<8} GPU {g:>6.2} ms   CPU {c:>6.1} ms   {s}");
        }
        println!(
            "\nShape checks: GPU wins 6-11x on the parallel workloads, CPU wins on the\n\
             single 2M-equation system (PCR-dominated splitting, §VI-B)."
        );
    }
}
