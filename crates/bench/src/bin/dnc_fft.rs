//! §VI-C demonstration #2: the auto-tuned multi-stage strategy applied to
//! the FFT (named alongside quicksort in the paper's introduction as a
//! divide-and-conquer target).
//!
//! Shows, per device: the on-chip FFT capacity, the machine-query split,
//! the tuned split and the simulated times, plus a sweep over splits to
//! expose the tuning tradeoff (strided gather vs. on-chip transform size).
//!
//! `cargo run --release -p trisolve-bench --bin dnc_fft`

use trisolve_bench::report;
use trisolve_dnc::fft::{fft_on_gpu, max_onchip_fft, static_fft_params, tune_fft, FftParams};
use trisolve_gpu_sim::{DeviceSpec, Gpu};

fn main() {
    let n = 1 << 18; // 256K-point transform: needs splitting everywhere
    let re: Vec<f64> = (0..n)
        .map(|i| ((i * 37 % 512) as f64) / 256.0 - 1.0)
        .collect();
    let im = vec![0.0f64; n];
    println!("multi-stage FFT of {n} complex points\n");

    for device in DeviceSpec::paper_devices() {
        let q = device.queryable().clone();
        let cap = max_onchip_fft(&q);
        let mut gpu: Gpu<f64> = Gpu::new(device.clone());

        // Sweep the split.
        let mut rows = Vec::new();
        let mut n1 = (n / cap).max(32);
        let mut best = (0usize, f64::INFINITY);
        while n1 <= cap {
            match fft_on_gpu(&mut gpu, &re, &im, FftParams { n1 }) {
                Ok(out) => {
                    let ms = out.sim_time_s * 1e3;
                    if ms < best.1 {
                        best = (n1, ms);
                    }
                    rows.push(vec![n1.to_string(), (n / n1).to_string(), report::ms(ms)]);
                }
                Err(_) => rows.push(vec![n1.to_string(), (n / n1).to_string(), "n/a".into()]),
            }
            n1 *= 2;
        }
        println!(
            "{}",
            report::render_table(
                &format!("{} (on-chip cap {cap})", device.name()),
                &["N1", "N2", "sim ms"],
                &rows
            )
        );

        let seed = static_fft_params(&q, n);
        let (tuned, evals) = tune_fft(&mut gpu, n);
        println!(
            "machine-query split N1={}, tuned split N1={} ({} probes), sweep best N1={}\n",
            seed.n1, tuned.n1, evals, best.0
        );
    }
    println!(
        "Same story as the tridiagonal solver: the best on-chip size is device-\n\
         dependent and sits below the capacity limit on wide-SM parts — found by\n\
         the same seeded hill climb."
    );
}
