//! Property tests over the tridiagonal algorithm substrate: every solver
//! agrees with every other on arbitrary diagonally dominant systems, and the
//! PCR splitting algebra preserves solutions through arbitrary schedules.

use proptest::prelude::*;
use trisolve_tridiag::system::{ChainView, TridiagonalSystem};
use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
use trisolve_tridiag::{cr, hybrid, lu, norms, pcr, rd, thomas};

/// Strategy: an arbitrary strictly diagonally dominant system.
fn dominant_system() -> impl Strategy<Value = TridiagonalSystem<f64>> {
    (1usize..300, any::<u64>()).prop_map(|(n, seed)| {
        random_dominant::<f64>(WorkloadShape::new(1, n), seed)
            .unwrap()
            .system(0)
            .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_solvers_agree(sys in dominant_system()) {
        let x_lu = lu::solve_lu(&sys).unwrap();
        let x_th = thomas::solve_thomas(&sys).unwrap();
        let x_cr = cr::solve_cr(&sys).unwrap();
        let x_pcr = pcr::solve_pcr(&sys).unwrap();
        let x_rd = rd::solve_recursive_doubling(&sys).unwrap();
        for (name, x) in [("thomas", &x_th), ("cr", &x_cr), ("pcr", &x_pcr), ("rd", &x_rd)] {
            let d = norms::max_abs_diff(x, &x_lu);
            prop_assert!(d < 1e-7, "{name} deviates from LU by {d:.3e}");
        }
    }

    #[test]
    fn hybrids_agree_for_any_switch_point(sys in dominant_system()) {
        let x_lu = lu::solve_lu(&sys).unwrap();
        let n = sys.len();
        let mut k = 1usize;
        while k <= n.next_power_of_two() {
            let x = hybrid::solve_pcr_thomas(&sys, k).unwrap();
            let d = norms::max_abs_diff(&x, &x_lu);
            prop_assert!(d < 1e-7, "pcr-thomas k={k} deviates {d:.3e}");
            k *= 4;
        }
        for t in [1usize, 8, 64] {
            let x = hybrid::solve_cr_pcr(&sys, t).unwrap();
            let d = norms::max_abs_diff(&x, &x_lu);
            prop_assert!(d < 1e-7, "cr-pcr t={t} deviates {d:.3e}");
        }
    }

    #[test]
    fn pcr_split_preserves_solution_for_any_depth(
        sys in dominant_system(),
        steps in 0u32..6,
    ) {
        let direct = thomas::solve_thomas(&sys).unwrap();
        let via_split = pcr::solve_pcr_then_thomas(&sys, steps).unwrap();
        let d = norms::max_abs_diff(&direct, &via_split);
        prop_assert!(d < 1e-7, "deviation {d:.3e} at {steps} steps");
    }

    #[test]
    fn pcr_split_chains_are_decoupled(sys in dominant_system(), steps in 1u32..5) {
        // After splitting, solving any single chain in isolation must give
        // the same values as the full solution restricted to that chain.
        let split = pcr::pcr_split(&sys, steps).unwrap();
        let full = thomas::solve_thomas(&sys).unwrap();
        let mut scratch = thomas::ChainScratch::new();
        let mut x = vec![0.0f64; sys.len()];
        for chain in split.chains() {
            thomas::solve_thomas_chain(
                &chain, &split.a, &split.b, &split.c, &split.d, &mut x, &mut scratch,
            ).unwrap();
            for i in 0..chain.len {
                let g = chain.index(i);
                prop_assert!((x[g] - full[g]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn residual_certifies_every_solver(sys in dominant_system()) {
        for x in [
            lu::solve_lu(&sys).unwrap(),
            thomas::solve_thomas(&sys).unwrap(),
            cr::solve_cr(&sys).unwrap(),
        ] {
            let r = norms::relative_residual(&sys, &x).unwrap();
            prop_assert!(r < 1e-11, "relative residual {r:.3e}");
        }
    }

    #[test]
    fn chain_views_partition_any_parent(n in 1usize..500, stride in 1usize..40) {
        let chains = ChainView::chains_of(0, n, stride);
        let mut hits = vec![0u8; n];
        for c in &chains {
            for i in 0..c.len {
                hits[c.index(i)] += 1;
            }
        }
        prop_assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn matvec_of_solution_recovers_rhs(sys in dominant_system()) {
        let x = lu::solve_lu(&sys).unwrap();
        let y = sys.matvec(&x).unwrap();
        for (yi, di) in y.iter().zip(&sys.d) {
            prop_assert!((yi - di).abs() < 1e-8);
        }
    }

    #[test]
    fn batch_solvers_match_per_system_solves(
        m in 1usize..8,
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        use trisolve_tridiag::cpu_batch::{
            solve_batch_parallel, solve_batch_scoped, solve_batch_sequential, BatchAlgorithm,
        };
        let batch = random_dominant::<f64>(WorkloadShape::new(m, n), seed).unwrap();
        let seq = solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap();
        let par = solve_batch_parallel(&batch, BatchAlgorithm::Lu).unwrap();
        let two = solve_batch_scoped(&batch, BatchAlgorithm::Lu, 2).unwrap();
        prop_assert_eq!(&seq, &par);
        prop_assert_eq!(&seq, &two);
        for s in 0..m {
            let sys = batch.system(s).unwrap();
            let x = lu::solve_lu(&sys).unwrap();
            prop_assert_eq!(&seq[s * n..(s + 1) * n], &x[..]);
        }
    }
}
