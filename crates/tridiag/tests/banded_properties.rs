//! Property tests for the banded / block-tridiagonal extension (§VII future
//! work): the banded LU must agree with the dense oracle for arbitrary
//! bandwidths — including matrices that *require* pivoting — and the block
//! Thomas solver must agree with the banded solver on assembled systems.

use proptest::prelude::*;
use trisolve_tridiag::banded::{
    solve_banded, solve_block_thomas, BandedMatrix, BlockTridiagonalSystem,
};
use trisolve_tridiag::dense::{solve_dense, DenseMatrix};

/// Strategy: a random banded matrix that is nonsingular with overwhelming
/// probability but *not* diagonally dominant (so pivoting really happens),
/// plus a right-hand side.
#[allow(clippy::type_complexity)]
fn banded_case() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<f64>)> {
    (2usize..40, 0usize..4, 0usize..4).prop_flat_map(|(n, kl, ku)| {
        let entries = n * (kl + ku + 1);
        (
            Just(n),
            Just(kl),
            Just(ku),
            prop::collection::vec(-3.0f64..3.0, entries),
            prop::collection::vec(-5.0f64..5.0, n),
        )
    })
}

fn build(n: usize, kl: usize, ku: usize, vals: &[f64]) -> BandedMatrix<f64> {
    let mut m = BandedMatrix::zeros(n, kl, ku).unwrap();
    let mut it = vals.iter();
    for i in 0..n {
        let lo = i.saturating_sub(kl);
        let hi = (i + ku).min(n - 1);
        for j in lo..=hi {
            let mut v = *it.next().unwrap();
            if i == j {
                // Nudge the diagonal away from exact singularity without
                // granting dominance.
                v += if v >= 0.0 { 0.5 } else { -0.5 };
            }
            m.set(i, j, v).unwrap();
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn banded_lu_matches_dense_oracle((n, kl, ku, vals, d) in banded_case()) {
        let m = build(n, kl, ku, &vals);
        let dense = m.to_dense();
        match (solve_banded(&m, &d), solve_dense(&dense, &d)) {
            (Ok(xb), Ok(xd)) => {
                // Compare via residuals (both backward stable; direct
                // component comparison can amplify on ill-conditioned draws).
                let rb = residual(&dense, &xb, &d);
                let rd = residual(&dense, &xd, &d);
                let scale = 1.0 + norm_inf(&xb).max(norm_inf(&xd));
                prop_assert!(rb / scale < 1e-6, "banded residual {rb:.2e}");
                prop_assert!(rd / scale < 1e-6, "dense residual {rd:.2e}");
            }
            // Both may legitimately reject a (near-)singular draw; the
            // solvers need not agree on the exact failure row.
            (Err(_), _) | (_, Err(_)) => {}
        }
    }

    #[test]
    fn banded_matvec_matches_dense((n, kl, ku, vals, x) in banded_case()) {
        let m = build(n, kl, ku, &vals);
        let yb = m.matvec(&x).unwrap();
        let yd = m.to_dense().matvec(&x);
        for (u, v) in yb.iter().zip(&yd) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn block_thomas_matches_banded(
        m in 2usize..10,
        s in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mk = |dominant: bool| {
            let mut blk = DenseMatrix::zeros(s);
            for r in 0..s {
                for c in 0..s {
                    blk[(r, c)] = rng.gen_range(-1.0..1.0);
                }
                if dominant {
                    blk[(r, r)] += 4.0 * s as f64;
                }
            }
            blk
        };
        let sys = BlockTridiagonalSystem {
            num_blocks: m,
            block: s,
            a: (0..m).map(|_| mk(false)).collect(),
            b: (0..m).map(|_| mk(true)).collect(),
            c: (0..m).map(|_| mk(false)).collect(),
            d: (0..m * s).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        };
        let x_block = solve_block_thomas(&sys).unwrap();
        let banded = sys.to_banded().unwrap();
        let x_band = solve_banded(&banded, &sys.d).unwrap();
        for (u, v) in x_block.iter().zip(&x_band) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }
}

fn residual(a: &DenseMatrix<f64>, x: &[f64], d: &[f64]) -> f64 {
    a.matvec(x)
        .iter()
        .zip(d)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0, f64::max)
}

fn norm_inf(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}
