//! Workload generators for the application classes the paper's introduction
//! motivates: ADI methods, spectral Poisson solvers, cubic spline
//! approximation, plus synthetic random/stress workloads for testing and
//! tuning.
//!
//! Every generator produces strictly diagonally dominant systems (except the
//! explicit stress generators), so the pivot-free GPU algorithms are stable —
//! the same property the paper's evaluation workloads rely on.

use crate::scalar::Scalar;
use crate::system::{SystemBatch, TridiagonalSystem};
use crate::Result;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A named workload shape `(m systems, n equations)` as used throughout the
/// paper's figures, e.g. `1K×1K` or `1×2M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct WorkloadShape {
    /// Number of independent systems (`m`).
    pub num_systems: usize,
    /// Equations per system (`n`).
    pub system_size: usize,
}

impl WorkloadShape {
    /// Construct a shape.
    pub const fn new(num_systems: usize, system_size: usize) -> Self {
        Self {
            num_systems,
            system_size,
        }
    }

    /// Total number of equations.
    pub const fn total_equations(&self) -> usize {
        self.num_systems * self.system_size
    }

    /// The paper's Figure 7/8 workload grid: 1K×1K, 2K×2K, 4K×4K, 1×2M.
    pub fn paper_grid() -> Vec<WorkloadShape> {
        vec![
            WorkloadShape::new(1024, 1024),
            WorkloadShape::new(2048, 2048),
            WorkloadShape::new(4096, 4096),
            WorkloadShape::new(1, 2 * 1024 * 1024),
        ]
    }

    /// The many-small-systems grid motivating the interleaved
    /// batched-Thomas fast path: deep batches (16K–64K systems) of
    /// one-to-four-warp systems (32–128 unknowns), the shape an ADI
    /// half-step over a large 2-D grid or a per-scanline spline fit
    /// produces. Used by the fig-style sweeps alongside
    /// [`Self::paper_grid`].
    pub fn many_small_grid() -> Vec<WorkloadShape> {
        vec![
            WorkloadShape::new(16 * 1024, 64),
            WorkloadShape::new(64 * 1024, 32),
            WorkloadShape::new(64 * 1024, 64),
            WorkloadShape::new(64 * 1024, 128),
        ]
    }

    /// Short label in the paper's notation (`1Kx1K`, `1x2M`, …).
    pub fn label(&self) -> String {
        fn fmt(v: usize) -> String {
            if v >= 1024 * 1024 && v.is_multiple_of(1024 * 1024) {
                format!("{}M", v / (1024 * 1024))
            } else if v >= 1024 && v.is_multiple_of(1024) {
                format!("{}K", v / 1024)
            } else {
                v.to_string()
            }
        }
        format!("{}x{}", fmt(self.num_systems), fmt(self.system_size))
    }
}

/// Generate a batch of strictly diagonally dominant systems with uniformly
/// random off-diagonals and right-hand sides. The default tuning/testing
/// workload.
pub fn random_dominant<T: Scalar>(shape: WorkloadShape, seed: u64) -> Result<SystemBatch<T>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let off = Uniform::new(-1.0f64, 1.0);
    let rhs = Uniform::new(-10.0f64, 10.0);
    let total = shape.total_equations();
    let n = shape.system_size;

    let mut a = vec![T::ZERO; total];
    let mut b = vec![T::ZERO; total];
    let mut c = vec![T::ZERO; total];
    let mut d = vec![T::ZERO; total];
    for s in 0..shape.num_systems {
        for i in 0..n {
            let idx = s * n + i;
            let av = if i == 0 { 0.0 } else { off.sample(&mut rng) };
            let cv = if i == n - 1 {
                0.0
            } else {
                off.sample(&mut rng)
            };
            // Strict dominance with a comfortable margin.
            let bv = (av.abs() + cv.abs() + 1.0) * if idx.is_multiple_of(2) { 1.0 } else { -1.0 };
            a[idx] = T::from_f64(av);
            b[idx] = T::from_f64(bv);
            c[idx] = T::from_f64(cv);
            d[idx] = T::from_f64(rhs.sample(&mut rng));
        }
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// 1-D Poisson equation `−u'' = f` on `[0,1]` with Dirichlet boundaries,
/// discretised with second-order central differences: the classic
/// `[−1, 2, −1]` matrix (scaled), one system per right-hand side. This is the
/// kernel of the spectral Poisson solvers the paper cites (Hockney).
pub fn poisson_1d<T: Scalar>(shape: WorkloadShape, seed: u64) -> Result<SystemBatch<T>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let f = Uniform::new(-1.0f64, 1.0);
    let n = shape.system_size;
    let h = 1.0 / (n as f64 + 1.0);
    let total = shape.total_equations();

    let mut a = vec![T::ZERO; total];
    let mut b = vec![T::ZERO; total];
    let mut c = vec![T::ZERO; total];
    let mut d = vec![T::ZERO; total];
    // A small diagonal shift keeps the matrix strictly dominant, as a
    // Helmholtz-shifted Poisson operator (−u'' + σu = f) would.
    let sigma = 1.0;
    for s in 0..shape.num_systems {
        for i in 0..n {
            let idx = s * n + i;
            a[idx] = if i == 0 { T::ZERO } else { T::from_f64(-1.0) };
            c[idx] = if i == n - 1 {
                T::ZERO
            } else {
                T::from_f64(-1.0)
            };
            b[idx] = T::from_f64(2.0 + sigma * h * h);
            d[idx] = T::from_f64(f.sample(&mut rng) * h * h);
        }
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// Line systems from one implicit half-step of an ADI (alternating direction
/// implicit) scheme for the 2-D heat equation on an `n×m` grid: `m` systems of
/// `n` equations, coefficients `[−r, 1+2r, −r]` (Crank–Nicolson style), RHS
/// from a smooth initial temperature field. The paper's headline motivating
/// application (Ho & Johnsson; Sakharnykh).
pub fn adi_heat_lines<T: Scalar>(shape: WorkloadShape, diffusion_r: f64) -> Result<SystemBatch<T>> {
    assert!(diffusion_r > 0.0, "diffusion number must be positive");
    let n = shape.system_size;
    let m = shape.num_systems;
    let total = shape.total_equations();

    let mut a = vec![T::ZERO; total];
    let mut b = vec![T::ZERO; total];
    let mut c = vec![T::ZERO; total];
    let mut d = vec![T::ZERO; total];
    for line in 0..m {
        let y = (line as f64 + 0.5) / m as f64;
        for i in 0..n {
            let idx = line * n + i;
            let x = (i as f64 + 0.5) / n as f64;
            a[idx] = if i == 0 {
                T::ZERO
            } else {
                T::from_f64(-diffusion_r)
            };
            c[idx] = if i == n - 1 {
                T::ZERO
            } else {
                T::from_f64(-diffusion_r)
            };
            b[idx] = T::from_f64(1.0 + 2.0 * diffusion_r);
            // Smooth hot-spot initial condition.
            let u0 = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            d[idx] = T::from_f64(u0);
        }
    }
    SystemBatch::new(m, n, a, b, c, d)
}

/// Natural cubic spline interpolation systems: `[1, 4, 1]` matrices with
/// second-derivative right-hand sides from random sample points.
pub fn cubic_spline<T: Scalar>(shape: WorkloadShape, seed: u64) -> Result<SystemBatch<T>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pts = Uniform::new(-5.0f64, 5.0);
    let n = shape.system_size;
    let total = shape.total_equations();

    let mut a = vec![T::ZERO; total];
    let mut b = vec![T::ZERO; total];
    let mut c = vec![T::ZERO; total];
    let mut d = vec![T::ZERO; total];
    for s in 0..shape.num_systems {
        // Random sample values y_0..y_{n+1}; the spline system solves for the
        // interior second derivatives.
        let y: Vec<f64> = (0..n + 2).map(|_| pts.sample(&mut rng)).collect();
        for i in 0..n {
            let idx = s * n + i;
            a[idx] = if i == 0 { T::ZERO } else { T::ONE };
            c[idx] = if i == n - 1 { T::ZERO } else { T::ONE };
            b[idx] = T::from_f64(4.0);
            d[idx] = T::from_f64(6.0 * (y[i] - 2.0 * y[i + 1] + y[i + 2]));
        }
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// Constant-coefficient Toeplitz systems `[lo, diag, hi]` — useful for
/// analytic checks because eigenvalues are known in closed form.
pub fn toeplitz<T: Scalar>(
    shape: WorkloadShape,
    lo: f64,
    diag: f64,
    hi: f64,
) -> Result<SystemBatch<T>> {
    let n = shape.system_size;
    let total = shape.total_equations();
    let mut a = vec![T::from_f64(lo); total];
    let mut c = vec![T::from_f64(hi); total];
    let b = vec![T::from_f64(diag); total];
    let d = (0..total)
        .map(|i| T::from_f64(((i % 97) as f64) / 97.0 - 0.5))
        .collect();
    for s in 0..shape.num_systems {
        a[s * n] = T::ZERO;
        c[s * n + n - 1] = T::ZERO;
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// Nearly-singular stress systems: dominance margin shrinks to `eps`.
/// Used by failure-injection tests; pivot-free algorithms lose accuracy here
/// and the LU baseline must still succeed.
pub fn near_singular<T: Scalar>(shape: WorkloadShape, eps: f64) -> Result<SystemBatch<T>> {
    let n = shape.system_size;
    let total = shape.total_equations();
    let mut a = vec![T::from_f64(-1.0); total];
    let mut c = vec![T::from_f64(-1.0); total];
    let b = vec![T::from_f64(2.0 + eps); total];
    let d = vec![T::ONE; total];
    for s in 0..shape.num_systems {
        a[s * n] = T::ZERO;
        c[s * n + n - 1] = T::ZERO;
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// Ill-conditioned random systems with a tunable dominance `margin`.
///
/// Off-diagonals are uniformly random in `(-1, 1)` and each diagonal is
/// `±(|a| + |c|)·(1 + margin)` — strictly dominant for any `margin > 0`, but
/// only barely: the dominance excess shrinks with `margin`, and the condition
/// number grows roughly like `O(1/margin)` (for the constant-coefficient
/// analogue, `κ∞ ≈ 2/margin` as `margin → 0`). Typical chaos-testing values:
///
/// * `margin = 1.0` — comfortable, comparable to [`random_dominant`];
/// * `margin = 1e-3` — `κ` in the thousands, f32 solves start losing digits;
/// * `margin = 1e-6` — near the f32 cliff; f64 still resolves it.
///
/// Used by the chaos campaign to make residual verification do real work:
/// a bit flip on a well-conditioned system can vanish into the noise floor,
/// while here it is amplified by the conditioning.
pub fn ill_conditioned<T: Scalar>(
    shape: WorkloadShape,
    seed: u64,
    margin: f64,
) -> Result<SystemBatch<T>> {
    assert!(
        margin > 0.0 && margin.is_finite(),
        "dominance margin must be positive and finite"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let off = Uniform::new(-1.0f64, 1.0);
    let rhs = Uniform::new(-1.0f64, 1.0);
    let total = shape.total_equations();
    let n = shape.system_size;

    let mut a = vec![T::ZERO; total];
    let mut b = vec![T::ZERO; total];
    let mut c = vec![T::ZERO; total];
    let mut d = vec![T::ZERO; total];
    for s in 0..shape.num_systems {
        for i in 0..n {
            let idx = s * n + i;
            let av = if i == 0 { 0.0 } else { off.sample(&mut rng) };
            let cv = if i == n - 1 {
                0.0
            } else {
                off.sample(&mut rng)
            };
            let sign = if idx.is_multiple_of(2) { 1.0 } else { -1.0 };
            let bv = sign * (av.abs() + cv.abs()) * (1.0 + margin);
            a[idx] = T::from_f64(av);
            b[idx] = T::from_f64(bv);
            c[idx] = T::from_f64(cv);
            d[idx] = T::from_f64(rhs.sample(&mut rng));
        }
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// Random systems that deliberately *break* diagonal dominance.
///
/// Each diagonal is `±dominance·(|a| + |c|)`; `dominance < 1` makes every
/// interior row non-dominant, so the pivot-free GPU stages can amplify
/// rounding error or break down outright, while the pivoting CPU LU baseline
/// still solves the system. `dominance ≥ 1` degenerates to (weak) dominance;
/// the interesting chaos-testing range is roughly `0.5 ≤ dominance < 1`,
/// below which systems become so wild that even f64 residual checks against
/// the LU reference get noisy.
pub fn non_dominant<T: Scalar>(
    shape: WorkloadShape,
    seed: u64,
    dominance: f64,
) -> Result<SystemBatch<T>> {
    assert!(
        dominance > 0.0 && dominance.is_finite(),
        "dominance ratio must be positive and finite"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let off = Uniform::new(0.5f64, 1.0);
    let rhs = Uniform::new(-1.0f64, 1.0);
    let total = shape.total_equations();
    let n = shape.system_size;

    let mut a = vec![T::ZERO; total];
    let mut b = vec![T::ZERO; total];
    let mut c = vec![T::ZERO; total];
    let mut d = vec![T::ZERO; total];
    for s in 0..shape.num_systems {
        for i in 0..n {
            let idx = s * n + i;
            // Off-diagonals bounded away from zero so `dominance` really is
            // the row-wise ratio |b| / (|a| + |c|), not a vacuous bound.
            let av = if i == 0 { 0.0 } else { off.sample(&mut rng) };
            let cv = if i == n - 1 {
                0.0
            } else {
                off.sample(&mut rng)
            };
            let sign = if idx.is_multiple_of(2) { 1.0 } else { -1.0 };
            let bv = sign * dominance * (av.abs() + cv.abs());
            a[idx] = T::from_f64(av);
            b[idx] = T::from_f64(bv);
            c[idx] = T::from_f64(cv);
            d[idx] = T::from_f64(rhs.sample(&mut rng));
        }
    }
    SystemBatch::new(shape.num_systems, n, a, b, c, d)
}

/// Extract a single [`TridiagonalSystem`] convenience generator (system 0 of a
/// one-system batch) for examples and docs.
pub fn single_random_dominant<T: Scalar>(n: usize, seed: u64) -> Result<TridiagonalSystem<T>> {
    random_dominant(WorkloadShape::new(1, n), seed)?.system(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_labels_match_paper_notation() {
        assert_eq!(WorkloadShape::new(1024, 1024).label(), "1Kx1K");
        assert_eq!(WorkloadShape::new(4096, 4096).label(), "4Kx4K");
        assert_eq!(WorkloadShape::new(1, 2 * 1024 * 1024).label(), "1x2M");
        assert_eq!(WorkloadShape::new(3, 100).label(), "3x100");
    }

    #[test]
    fn paper_grid_is_the_figure7_grid() {
        let grid = WorkloadShape::paper_grid();
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[3].total_equations(), 2 * 1024 * 1024);
    }

    #[test]
    fn many_small_grid_is_deep_batches_of_small_systems() {
        let grid = WorkloadShape::many_small_grid();
        assert!(!grid.is_empty());
        for s in &grid {
            assert!(s.num_systems >= 16 * 1024, "{s:?} not a deep batch");
            assert!(s.system_size <= 128, "{s:?} not a small system");
        }
        assert!(grid.contains(&WorkloadShape::new(64 * 1024, 32)));
        assert_eq!(WorkloadShape::new(64 * 1024, 32).label(), "64Kx32");
    }

    #[test]
    fn random_dominant_is_dominant_and_reproducible() {
        let shape = WorkloadShape::new(4, 64);
        let b1: SystemBatch<f64> = random_dominant(shape, 42).unwrap();
        let b2: SystemBatch<f64> = random_dominant(shape, 42).unwrap();
        let b3: SystemBatch<f64> = random_dominant(shape, 43).unwrap();
        assert!(b1.is_diagonally_dominant());
        assert_eq!(b1, b2);
        assert_ne!(b1, b3);
    }

    #[test]
    fn all_generators_produce_valid_dominant_batches() {
        let shape = WorkloadShape::new(3, 33);
        let gens: Vec<SystemBatch<f64>> = vec![
            random_dominant(shape, 1).unwrap(),
            poisson_1d(shape, 1).unwrap(),
            adi_heat_lines(shape, 0.5).unwrap(),
            cubic_spline(shape, 1).unwrap(),
            toeplitz(shape, -1.0, 3.0, -1.0).unwrap(),
        ];
        for (i, b) in gens.iter().enumerate() {
            assert!(b.is_diagonally_dominant(), "generator {i} not dominant");
            assert_eq!(b.num_systems, 3);
            assert_eq!(b.system_size, 33);
            // All systems individually valid.
            for s in 0..b.num_systems {
                b.system(s).unwrap();
            }
        }
    }

    #[test]
    fn near_singular_is_weakly_dominant_only() {
        let b: SystemBatch<f64> = near_singular(WorkloadShape::new(1, 16), 0.0).unwrap();
        assert!(!b.is_diagonally_dominant()); // strict dominance fails
        let b: SystemBatch<f64> = near_singular(WorkloadShape::new(1, 16), 0.5).unwrap();
        assert!(b.is_diagonally_dominant()); // a healthy margin restores it
    }

    #[test]
    fn ill_conditioned_is_barely_dominant_and_reproducible() {
        let shape = WorkloadShape::new(3, 48);
        let b1: SystemBatch<f64> = ill_conditioned(shape, 9, 1e-3).unwrap();
        let b2: SystemBatch<f64> = ill_conditioned(shape, 9, 1e-3).unwrap();
        assert_eq!(b1, b2);
        assert!(b1.is_diagonally_dominant(), "margin > 0 keeps dominance");
        // The dominance excess really is tiny: every interior row's
        // |b| / (|a| + |c|) sits at exactly 1 + margin.
        let sys = b1.system(0).unwrap();
        for i in 1..sys.len() - 1 {
            let ratio = sys.b[i].abs() / (sys.a[i].abs() + sys.c[i].abs());
            assert!((ratio - 1.001).abs() < 1e-9, "row {i} ratio {ratio}");
        }
    }

    #[test]
    fn non_dominant_breaks_dominance_below_one() {
        let shape = WorkloadShape::new(2, 32);
        let b: SystemBatch<f64> = non_dominant(shape, 4, 0.8).unwrap();
        assert!(!b.is_diagonally_dominant());
        let sys = b.system(0).unwrap();
        for i in 1..sys.len() - 1 {
            let ratio = sys.b[i].abs() / (sys.a[i].abs() + sys.c[i].abs());
            assert!((ratio - 0.8).abs() < 1e-9, "row {i} ratio {ratio}");
        }
        // Reproducible per seed.
        let b2: SystemBatch<f64> = non_dominant(shape, 4, 0.8).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn stress_generators_reject_bad_knobs() {
        let shape = WorkloadShape::new(1, 8);
        assert!(std::panic::catch_unwind(|| ill_conditioned::<f64>(shape, 0, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| non_dominant::<f64>(shape, 0, -1.0)).is_err());
    }

    #[test]
    fn poisson_solves_to_smooth_solution() {
        let b: SystemBatch<f64> = poisson_1d(WorkloadShape::new(1, 127), 7).unwrap();
        let sys = b.system(0).unwrap();
        let x = crate::thomas::solve_thomas(&sys).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn adi_requires_positive_r() {
        let result =
            std::panic::catch_unwind(|| adi_heat_lines::<f64>(WorkloadShape::new(1, 8), -0.1));
        assert!(result.is_err());
    }

    #[test]
    fn f32_generation_works() {
        let b: SystemBatch<f32> = random_dominant(WorkloadShape::new(2, 16), 5).unwrap();
        assert!(b.is_diagonally_dominant());
    }
}
