//! Batched CPU solving — the Figure 8 baseline.
//!
//! The paper's CPU comparison runs the sequential MKL `gtsv` solver over many
//! systems, parallelised at the *system* level with OpenMP (two threads on
//! the Core i5). The analogues here:
//!
//! * [`solve_batch_sequential`] — one thread, LU per system (MKL 1-thread);
//! * [`solve_batch_parallel`] — Rayon over systems (OpenMP analogue);
//! * [`solve_batch_scoped`] — fixed thread count via crossbeam scoped
//!   threads, matching the paper's "two-threaded implementation on two CPU
//!   cores" precisely.
//!
//! These produce *real* wall-clock numbers; the simulated-time CPU model used
//! for Figure 8 lives in `trisolve-gpu-sim::cpu`.

use crate::lu::{self, LuWorkspace};
use crate::scalar::Scalar;
use crate::system::SystemBatch;
use crate::thomas;
use crate::Result;
use rayon::prelude::*;

/// Which per-system algorithm the batch drivers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchAlgorithm {
    /// LU with partial pivoting (the MKL `gtsv` analogue). Default.
    #[default]
    Lu,
    /// Thomas (fastest, requires dominance).
    Thomas,
}

/// Solve every system of a batch sequentially on the calling thread.
pub fn solve_batch_sequential<T: Scalar>(
    batch: &SystemBatch<T>,
    algo: BatchAlgorithm,
) -> Result<Vec<T>> {
    let n = batch.system_size;
    let mut x = vec![T::ZERO; batch.total_equations()];
    let mut work = LuWorkspace::with_capacity(n);
    let mut cp = vec![T::ZERO; n];
    let mut dp = vec![T::ZERO; n];
    for s in 0..batch.num_systems {
        let r = s * n..(s + 1) * n;
        match algo {
            BatchAlgorithm::Lu => {
                let sys = batch.system(s)?;
                lu::solve_lu_with(&sys, &mut work)?;
                x[r].copy_from_slice(&work.x);
            }
            BatchAlgorithm::Thomas => {
                thomas::solve_thomas_into(
                    &batch.a[r.clone()],
                    &batch.b[r.clone()],
                    &batch.c[r.clone()],
                    &batch.d[r.clone()],
                    &mut cp,
                    &mut dp,
                )?;
                x[r].copy_from_slice(&dp);
            }
        }
    }
    Ok(x)
}

/// Solve every system of a batch in parallel with Rayon (system-level
/// parallelism, like the paper's OpenMP driver).
pub fn solve_batch_parallel<T: Scalar>(
    batch: &SystemBatch<T>,
    algo: BatchAlgorithm,
) -> Result<Vec<T>> {
    let n = batch.system_size;
    let mut x = vec![T::ZERO; batch.total_equations()];
    let results: Vec<Result<()>> = x
        .par_chunks_mut(n)
        .enumerate()
        .map(|(s, out)| solve_one_into(batch, s, algo, out))
        .collect();
    for r in results {
        r?;
    }
    Ok(x)
}

/// Solve with exactly `threads` OS threads via crossbeam's scoped threads —
/// the precise analogue of the paper's two-thread OpenMP setup.
pub fn solve_batch_scoped<T: Scalar>(
    batch: &SystemBatch<T>,
    algo: BatchAlgorithm,
    threads: usize,
) -> Result<Vec<T>> {
    assert!(threads >= 1, "need at least one thread");
    let n = batch.system_size;
    let mut x = vec![T::ZERO; batch.total_equations()];
    let chunk_systems = batch.num_systems.div_ceil(threads);
    let chunk_len = chunk_systems * n;

    let errors: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, out) in x.chunks_mut(chunk_len).enumerate() {
            handles.push(scope.spawn(move |_| -> Result<()> {
                let first = t * chunk_systems;
                for (k, chunk) in out.chunks_mut(n).enumerate() {
                    solve_one_into(batch, first + k, algo, chunk)?;
                }
                Ok(())
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("scoped threads panicked");
    for e in errors {
        e?;
    }
    Ok(x)
}

fn solve_one_into<T: Scalar>(
    batch: &SystemBatch<T>,
    s: usize,
    algo: BatchAlgorithm,
    out: &mut [T],
) -> Result<()> {
    let n = batch.system_size;
    let r = s * n..(s + 1) * n;
    match algo {
        BatchAlgorithm::Lu => {
            let sys = batch.system(s)?;
            let mut work = LuWorkspace::with_capacity(n);
            lu::solve_lu_with(&sys, &mut work)?;
            out.copy_from_slice(&work.x);
        }
        BatchAlgorithm::Thomas => {
            let mut cp = vec![T::ZERO; n];
            let mut dp = vec![T::ZERO; n];
            thomas::solve_thomas_into(
                &batch.a[r.clone()],
                &batch.b[r.clone()],
                &batch.c[r.clone()],
                &batch.d[r],
                &mut cp,
                &mut dp,
            )?;
            out.copy_from_slice(&dp);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::batch_worst_relative_residual;
    use crate::workloads::{random_dominant, WorkloadShape};

    fn batch() -> SystemBatch<f64> {
        random_dominant(WorkloadShape::new(13, 47), 99).unwrap()
    }

    #[test]
    fn sequential_lu_solves_batch() {
        let b = batch();
        let x = solve_batch_sequential(&b, BatchAlgorithm::Lu).unwrap();
        assert!(batch_worst_relative_residual(&b, &x).unwrap() < 1e-10);
    }

    #[test]
    fn sequential_thomas_solves_batch() {
        let b = batch();
        let x = solve_batch_sequential(&b, BatchAlgorithm::Thomas).unwrap();
        assert!(batch_worst_relative_residual(&b, &x).unwrap() < 1e-10);
    }

    #[test]
    fn parallel_matches_sequential() {
        let b = batch();
        let xs = solve_batch_sequential(&b, BatchAlgorithm::Lu).unwrap();
        let xp = solve_batch_parallel(&b, BatchAlgorithm::Lu).unwrap();
        assert_eq!(xs, xp); // identical algorithm & order per system
    }

    #[test]
    fn scoped_two_threads_matches_sequential() {
        let b = batch();
        let xs = solve_batch_sequential(&b, BatchAlgorithm::Lu).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let xt = solve_batch_scoped(&b, BatchAlgorithm::Lu, threads).unwrap();
            assert_eq!(xs, xt, "threads={threads}");
        }
    }

    #[test]
    fn scoped_handles_more_threads_than_systems() {
        let b = random_dominant::<f64>(WorkloadShape::new(2, 8), 1).unwrap();
        let x = solve_batch_scoped(&b, BatchAlgorithm::Thomas, 16).unwrap();
        assert!(batch_worst_relative_residual(&b, &x).unwrap() < 1e-10);
    }
}
