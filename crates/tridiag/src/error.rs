//! Error type shared by every solver in the workspace.

use std::fmt;

/// Errors produced by tridiagonal solvers and the surrounding machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The four coefficient arrays do not have matching lengths.
    DimensionMismatch {
        /// Human-readable description of what mismatched.
        detail: String,
    },
    /// A system of zero equations was supplied where at least one is needed.
    EmptySystem,
    /// `a[0]` or `c[n-1]` was nonzero, violating the storage convention.
    MalformedBoundary {
        /// Which end of the system is malformed.
        detail: String,
    },
    /// Elimination hit a pivot too small to divide by (matrix singular or
    /// nearly so for the pivot-free algorithm in use).
    ZeroPivot {
        /// Row index at which elimination broke down.
        row: usize,
        /// Magnitude of the offending pivot.
        magnitude: f64,
    },
    /// A non-finite value (NaN/inf) appeared in the inputs.
    NonFiniteInput {
        /// Index of the first offending element.
        index: usize,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the violated constraint.
        detail: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            SolverError::EmptySystem => write!(f, "system has zero equations"),
            SolverError::MalformedBoundary { detail } => {
                write!(f, "malformed boundary coefficients: {detail}")
            }
            SolverError::ZeroPivot { row, magnitude } => write!(
                f,
                "zero (or near-zero) pivot at row {row} (|pivot| = {magnitude:.3e})"
            ),
            SolverError::NonFiniteInput { index } => {
                write!(f, "non-finite input value at index {index}")
            }
            SolverError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SolverError::ZeroPivot {
            row: 7,
            magnitude: 1e-30,
        };
        let s = e.to_string();
        assert!(s.contains("row 7"));
        assert!(s.contains("pivot"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SolverError::EmptySystem, SolverError::EmptySystem);
        assert_ne!(
            SolverError::EmptySystem,
            SolverError::NonFiniteInput { index: 0 }
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SolverError::EmptySystem);
        assert!(e.to_string().contains("zero equations"));
    }
}
