//! Parallel cyclic reduction (PCR) — the splitting workhorse of every stage
//! of the multi-stage solver.
//!
//! One PCR step at stride `s` eliminates, for every equation `i`, the
//! couplings to `x[i−s]` and `x[i+s]` by combining equation `i` with its two
//! stride-`s` neighbours. After the step every equation couples to `x[i−2s]`
//! and `x[i+2s]` instead, so each step doubles the number of independent
//! interleaved subsystems ("chains"). `log2(n)` steps solve the system
//! outright; `j < log2(n)` steps split it into `2^j` chains, each of which is
//! an ordinary tridiagonal system at stride `2^j`.
//!
//! Out-of-range neighbours are treated as identity rows (`b = 1`, others 0),
//! which is exact because equation `i` provably has a zero stride-`s`
//! sub-coefficient whenever `i < s` (and symmetrically at the top) — the
//! invariant is checked in the tests.

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::system::{ChainView, TridiagonalSystem};
use crate::thomas;
use crate::Result;

/// Apply one PCR step at stride `stride` to the system stored in the `src`
/// slices, writing the transformed system into the `dst` slices.
///
/// All slices must have the same length `n` (the system size). `src` and
/// `dst` must be distinct buffers (double buffering), mirroring the
/// read-old/write-new discipline a GPU kernel needs.
#[allow(clippy::too_many_arguments)]
pub fn pcr_step<T: Scalar>(
    stride: usize,
    src_a: &[T],
    src_b: &[T],
    src_c: &[T],
    src_d: &[T],
    dst_a: &mut [T],
    dst_b: &mut [T],
    dst_c: &mut [T],
    dst_d: &mut [T],
) {
    let n = src_b.len();
    debug_assert!(stride >= 1);
    for i in 0..n {
        let (row_m, row_p) = neighbor_rows(i, stride, n, src_a, src_b, src_c, src_d);
        let (am, bm, cm, dm) = row_m;
        let (ap, bp, cp, dp) = row_p;

        let alpha = -src_a[i] / bm;
        let gamma = -src_c[i] / bp;

        dst_a[i] = alpha * am;
        dst_b[i] = src_b[i] + alpha * cm + gamma * ap;
        dst_c[i] = gamma * cp;
        dst_d[i] = src_d[i] + alpha * dm + gamma * dp;
    }
}

#[inline]
#[allow(clippy::type_complexity)]
fn neighbor_rows<T: Scalar>(
    i: usize,
    stride: usize,
    n: usize,
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
) -> ((T, T, T, T), (T, T, T, T)) {
    let identity = (T::ZERO, T::ONE, T::ZERO, T::ZERO);
    let row_m = if i >= stride {
        let j = i - stride;
        (a[j], b[j], c[j], d[j])
    } else {
        identity
    };
    let row_p = if i + stride < n {
        let j = i + stride;
        (a[j], b[j], c[j], d[j])
    } else {
        identity
    };
    (row_m, row_p)
}

/// The result of PCR-splitting a system: transformed coefficients plus the
/// final stride (`2^steps`), whose chains are independent subsystems.
#[derive(Debug, Clone)]
pub struct PcrSplit<T: Scalar> {
    /// Transformed sub-diagonal (couples at distance `stride`).
    pub a: Vec<T>,
    /// Transformed main diagonal.
    pub b: Vec<T>,
    /// Transformed super-diagonal (couples at distance `stride`).
    pub c: Vec<T>,
    /// Transformed right-hand side.
    pub d: Vec<T>,
    /// Final coupling distance = number of independent chains.
    pub stride: usize,
}

impl<T: Scalar> PcrSplit<T> {
    /// The independent chains of the split system.
    pub fn chains(&self) -> Vec<ChainView> {
        ChainView::chains_of(0, self.b.len(), self.stride)
    }
}

/// Run `steps` PCR steps on a system, returning the transformed coefficients.
pub fn pcr_split<T: Scalar>(sys: &TridiagonalSystem<T>, steps: u32) -> Result<PcrSplit<T>> {
    let n = sys.len();
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }
    let mut cur = (sys.a.clone(), sys.b.clone(), sys.c.clone(), sys.d.clone());
    let mut next = (
        vec![T::ZERO; n],
        vec![T::ZERO; n],
        vec![T::ZERO; n],
        vec![T::ZERO; n],
    );
    let mut stride = 1usize;
    for _ in 0..steps {
        pcr_step(
            stride,
            &cur.0,
            &cur.1,
            &cur.2,
            &cur.3,
            &mut next.0,
            &mut next.1,
            &mut next.2,
            &mut next.3,
        );
        std::mem::swap(&mut cur, &mut next);
        stride *= 2;
    }
    Ok(PcrSplit {
        a: cur.0,
        b: cur.1,
        c: cur.2,
        d: cur.3,
        stride,
    })
}

/// Solve a system with pure PCR: split until every chain has length 1, then
/// divide. `O(n log n)` work, `O(log n)` steps.
pub fn solve_pcr<T: Scalar>(sys: &TridiagonalSystem<T>) -> Result<Vec<T>> {
    let n = sys.len();
    let steps = ceil_log2(n);
    let split = pcr_split(sys, steps)?;
    let mut x = vec![T::ZERO; n];
    for (i, xi) in x.iter_mut().enumerate() {
        let mag = split.b[i].abs().to_f64();
        if !mag.is_finite() || mag == 0.0 {
            return Err(SolverError::ZeroPivot {
                row: i,
                magnitude: mag,
            });
        }
        *xi = split.d[i] / split.b[i];
    }
    Ok(x)
}

/// Solve by `steps` PCR splits followed by a Thomas solve of every chain —
/// the algorithmic core of the paper's base kernel, on the CPU.
pub fn solve_pcr_then_thomas<T: Scalar>(sys: &TridiagonalSystem<T>, steps: u32) -> Result<Vec<T>> {
    let n = sys.len();
    let split = pcr_split(sys, steps)?;
    let mut x = vec![T::ZERO; n];
    let mut scratch = thomas::ChainScratch::new();
    for chain in split.chains() {
        thomas::solve_thomas_chain(
            &chain,
            &split.a,
            &split.b,
            &split.c,
            &split.d,
            &mut x,
            &mut scratch,
        )?;
    }
    Ok(x)
}

/// Smallest number of PCR steps after which every chain of an `n`-equation
/// system has length 1 (i.e. `ceil(log2(n))`).
pub fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

/// Number of PCR steps needed to split an `n`-equation system into chains of
/// at most `target` equations.
pub fn steps_to_reach(n: usize, target: usize) -> u32 {
    assert!(target >= 1);
    let mut steps = 0u32;
    let mut len = n;
    while len > target {
        len = len.div_ceil(2);
        steps += 1;
    }
    steps
}

/// Per-equation floating-point cost of one PCR step (cost models).
pub const PCR_FLOPS_PER_EQ: usize = 12;

/// Total floating-point cost of `steps` PCR steps over `n` equations.
pub fn pcr_flops(n: usize, steps: u32) -> usize {
    n * PCR_FLOPS_PER_EQ * steps as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas::solve_thomas;

    fn dominant(n: usize, scale: f64) -> TridiagonalSystem<f64> {
        let mut a = vec![-1.0; n];
        let b = vec![3.0 * scale; n];
        let mut c = vec![-1.2; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        TridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn steps_to_reach_values() {
        assert_eq!(steps_to_reach(1024, 256), 2);
        assert_eq!(steps_to_reach(1024, 1024), 0);
        assert_eq!(steps_to_reach(1000, 256), 2);
        assert_eq!(steps_to_reach(2_000_000, 256), 13);
        assert_eq!(steps_to_reach(1, 1), 0);
    }

    #[test]
    fn boundary_subcoefficients_vanish() {
        // Invariant: after j steps at stride 2^j, a[i] == 0 for i < 2^j and
        // c[i] == 0 for i >= n - 2^j.
        let sys = dominant(37, 1.0);
        for steps in 0..=6u32 {
            let split = pcr_split(&sys, steps).unwrap();
            let s = split.stride.min(37);
            for i in 0..s {
                assert!(
                    split.a[i].abs() < 1e-12,
                    "steps={steps} a[{i}]={}",
                    split.a[i]
                );
            }
            for i in 37 - s..37 {
                assert!(
                    split.c[i].abs() < 1e-12,
                    "steps={steps} c[{i}]={}",
                    split.c[i]
                );
            }
        }
    }

    #[test]
    fn split_chains_preserve_solution() {
        // Solving each chain of the split system must reproduce the direct
        // solution of the original.
        for n in [8usize, 16, 33, 100, 257] {
            let sys = dominant(n, 1.0);
            let direct = solve_thomas(&sys).unwrap();
            for steps in 0..=4u32 {
                let x = solve_pcr_then_thomas(&sys, steps).unwrap();
                for (u, v) in direct.iter().zip(&x) {
                    assert!((u - v).abs() < 1e-8, "n={n} steps={steps}");
                }
            }
        }
    }

    #[test]
    fn pure_pcr_matches_thomas() {
        for n in [1usize, 2, 7, 64, 129, 500] {
            let sys = dominant(n, 1.0);
            let direct = solve_thomas(&sys).unwrap();
            let x = solve_pcr(&sys).unwrap();
            for (u, v) in direct.iter().zip(&x) {
                assert!((u - v).abs() < 1e-7, "n={n}");
            }
        }
    }

    #[test]
    fn zero_steps_is_identity() {
        let sys = dominant(12, 1.0);
        let split = pcr_split(&sys, 0).unwrap();
        assert_eq!(split.a, sys.a);
        assert_eq!(split.b, sys.b);
        assert_eq!(split.stride, 1);
    }

    #[test]
    fn split_systems_stay_dominant() {
        // PCR preserves diagonal dominance (each step is a convex-like
        // combination); verify empirically on a dominant system.
        let sys = dominant(128, 1.0);
        let split = pcr_split(&sys, 4).unwrap();
        for i in 0..128 {
            assert!(
                split.b[i].abs() > split.a[i].abs() + split.c[i].abs() - 1e-12,
                "row {i} lost dominance"
            );
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [3usize, 5, 9, 17, 31, 1000, 1023] {
            let sys = dominant(n, 1.0);
            let direct = solve_thomas(&sys).unwrap();
            let x = solve_pcr_then_thomas(&sys, 3.min(ceil_log2(n))).unwrap();
            for (u, v) in direct.iter().zip(&x) {
                assert!((u - v).abs() < 1e-7, "n={n}");
            }
        }
    }

    #[test]
    fn flops_model_scales() {
        assert_eq!(pcr_flops(100, 0), 0);
        assert_eq!(pcr_flops(100, 2), 2400);
    }

    #[test]
    fn singular_after_split_detected() {
        // An all-zero diagonal system cannot be solved by PCR's final divide.
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        // PCR step: alpha = -a/bm etc. — with zero diagonals the divide at
        // the end must fail rather than return NaN silently.
        assert!(solve_pcr(&sys).is_err() || solve_pcr(&sys).unwrap().iter().all(|v| v.is_finite()));
    }
}
