#![warn(missing_docs)]

//! # trisolve-tridiag
//!
//! Tridiagonal algebra substrate for the `trisolve` workspace: system
//! representations, classic CPU solution algorithms (Thomas, LU with partial
//! pivoting, cyclic reduction, parallel cyclic reduction and the hybrids
//! built from them), workload generators, and error norms.
//!
//! Everything in this crate is hardware-agnostic. The GPU-simulated solver in
//! `trisolve-core` re-implements the same algebra as metered kernels; this
//! crate is both the reference those kernels are verified against and the
//! CPU baseline (the Intel-MKL-`gtsv` analogue of the paper's Figure 8).
//!
//! ## Conventions
//!
//! A tridiagonal system of `n` equations is stored as four arrays
//! `a, b, c, d` of length `n`:
//!
//! ```text
//! a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]
//! ```
//!
//! with `a[0] == 0` and `c[n-1] == 0` by definition. Batches of `m` systems
//! are stored system-major (system `s` occupies `s*n .. (s+1)*n` in each
//! array), matching the contiguous layout the GPU kernels stream.

pub mod banded;
pub mod cpu_batch;
pub mod cr;
pub mod dense;
pub mod error;
pub mod hybrid;
pub mod lu;
pub mod norms;
pub mod pcr;
pub mod rd;
pub mod scalar;
pub mod system;
pub mod thomas;
pub mod workloads;

pub use error::SolverError;
pub use scalar::Scalar;
pub use system::{SystemBatch, TridiagonalSystem};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SolverError>;
