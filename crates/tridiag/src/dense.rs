//! Small dense linear algebra: row-major matrices with LU decomposition and
//! partial pivoting. Used as the block kernel of the block-tridiagonal
//! solver and as the brute-force oracle the banded solvers are tested
//! against. Deliberately simple — block sizes in block-tridiagonal systems
//! are tiny (2–16), so `O(n³)` with good constants is the right tool.

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::Result;

/// A small dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T: Scalar> {
    /// Rows (= columns; only square matrices are supported).
    pub n: usize,
    /// Row-major storage, length `n * n`.
    pub data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![T::ZERO; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a row-major slice.
    pub fn from_rows(n: usize, data: &[T]) -> Result<Self> {
        if data.len() != n * n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("dense {n}x{n} needs {} entries, got {}", n * n, data.len()),
            });
        }
        Ok(Self {
            n,
            data: data.to_vec(),
        })
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![T::ZERO; self.n];
        for i in 0..self.n {
            let mut acc = T::ZERO;
            for j in 0..self.n {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    pub fn matmul(&self, other: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = DenseMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self[(i, k)];
                for j in 0..n {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.n + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.n + j]
    }
}

/// An LU factorisation with partial pivoting of a small dense matrix.
#[derive(Debug, Clone)]
pub struct DenseLu<T: Scalar> {
    lu: DenseMatrix<T>,
    pivots: Vec<usize>,
}

impl<T: Scalar> DenseLu<T> {
    /// Factor `a` (consumed). Fails on singular matrices.
    pub fn factor(mut a: DenseMatrix<T>) -> Result<Self> {
        let n = a.n;
        let mut pivots = vec![0usize; n];
        for k in 0..n {
            // Pivot search in column k.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            let mag = best.to_f64();
            if !mag.is_finite() || mag == 0.0 {
                return Err(SolverError::ZeroPivot {
                    row: k,
                    magnitude: mag,
                });
            }
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
            }
            let pivot = a[(k, k)];
            for i in k + 1..n {
                let m = a[(i, k)] / pivot;
                a[(i, k)] = m;
                for j in k + 1..n {
                    let akj = a[(k, j)];
                    a[(i, j)] -= m * akj;
                }
            }
        }
        Ok(Self { lu: a, pivots })
    }

    /// Solve `A·x = b` using the factorisation; `b` is overwritten with `x`.
    pub fn solve_in_place(&self, b: &mut [T]) {
        let n = self.lu.n;
        assert_eq!(b.len(), n);
        // The stored L carries every row swap that happened after its
        // column was formed (A = P·L·U), so the permutation must be applied
        // to `b` in full before the triangular solves — interleaving the
        // swaps with the lower solve would pair post-swap multipliers with
        // pre-swap values.
        for k in 0..n {
            b.swap(k, self.pivots[k]);
        }
        for k in 0..n {
            for i in k + 1..n {
                let bk = b[k];
                b[i] -= self.lu[(i, k)] * bk;
            }
        }
        #[allow(clippy::needless_range_loop)] // b is mutated at i below
        for i in (0..n).rev() {
            let mut acc = b[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * b[j];
            }
            b[i] = acc / self.lu[(i, i)];
        }
    }

    /// Solve for a matrix right-hand side: `A·X = B` column by column,
    /// overwriting `B` with `X` (both row-major dense).
    pub fn solve_matrix(&self, b: &mut DenseMatrix<T>) {
        let n = self.lu.n;
        let mut col = vec![T::ZERO; n];
        for j in 0..b.n {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_in_place(&mut col);
            for i in 0..n {
                b[(i, j)] = col[i];
            }
        }
    }
}

/// Solve a general dense system by LU with partial pivoting — the oracle
/// the banded and block solvers are verified against.
pub fn solve_dense<T: Scalar>(a: &DenseMatrix<T>, b: &[T]) -> Result<Vec<T>> {
    let lu = DenseLu::factor(a.clone())?;
    let mut x = b.to_vec();
    lu.solve_in_place(&mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(3, &[2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]).unwrap()
    }

    #[test]
    fn solves_known_system() {
        // Classic example: solution (2, 3, -1).
        let a = example();
        let x = solve_dense(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_is_identity() {
        let i = DenseMatrix::<f64>::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve_dense(&i, &b).unwrap(), b);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve_dense(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_rejected() {
        let a = DenseMatrix::from_rows(2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            solve_dense(&a, &[1.0, 2.0]),
            Err(SolverError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn residual_small_on_random_matrix() {
        let n = 12;
        let mut a = DenseMatrix::<f64>::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = (((i * 31 + j * 17 + 3) % 13) as f64) - 6.0;
            }
            a[(i, i)] += 20.0; // keep it comfortably nonsingular
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve_dense(&a, &b).unwrap();
        let y = a.matvec(&x);
        for (u, v) in y.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_and_matvec_consistent() {
        let a = example();
        let i = DenseMatrix::<f64>::identity(3);
        assert_eq!(a.matmul(&i), a);
        let x = vec![1.0, -1.0, 2.0];
        let via_mat = a.matmul(
            &DenseMatrix::from_rows(3, &{
                // column vector embedded in a matrix for the test
                let mut m = vec![0.0; 9];
                for (k, &v) in x.iter().enumerate() {
                    m[k * 3] = v;
                }
                m
            })
            .unwrap(),
        );
        let direct = a.matvec(&x);
        for k in 0..3 {
            assert!((via_mat[(k, 0)] - direct[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_inverts() {
        let a = example();
        let lu = DenseLu::factor(a.clone()).unwrap();
        let mut inv = DenseMatrix::<f64>::identity(3);
        lu.solve_matrix(&mut inv);
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }
}
