//! Minimal floating-point abstraction so every algorithm in the workspace is
//! generic over `f32` (the paper's primary precision) and `f64` (used for the
//! double-precision hybrid comparison in §III-A).
//!
//! We deliberately avoid pulling in `num-traits`: the handful of operations
//! the solvers need is small and fixed.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type usable by every solver in the workspace.
pub trait Scalar:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Sum
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of the element in bytes (used by the simulator's traffic model).
    const BYTES: usize;
    /// Human-readable precision name ("f32" / "f64").
    const NAME: &'static str;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (used by norms only).
    fn sqrt(self) -> Self;
    /// Lossy conversion from `f64` (workload generation).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (norms, reporting).
    fn to_f64(self) -> f64;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;

    /// `max` that is total on non-NaN inputs.
    fn max_s(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }

    /// `min` that is total on non-NaN inputs.
    fn min_s(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const BYTES: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32, "f32");
impl_scalar!(f64, "f64");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_type() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
    }

    #[test]
    fn conversions_round_trip() {
        let v = 3.25f64;
        assert_eq!(f64::from_f64(v), v);
        assert_eq!(f32::from_f64(v).to_f64(), v); // 3.25 exactly representable
    }

    #[test]
    fn abs_and_sqrt() {
        assert_eq!((-2.0f32).abs(), 2.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
    }

    #[test]
    fn max_min_total_on_non_nan() {
        assert_eq!(1.0f64.max_s(2.0), 2.0);
        assert_eq!(1.0f64.min_s(2.0), 1.0);
        assert_eq!(2.0f32.max_s(1.0), 2.0);
    }

    #[test]
    fn finiteness() {
        assert!(1.0f32.is_finite());
        assert!(!(f64::INFINITY).is_finite());
        assert!(!(f32::NAN).is_finite());
    }
}
