//! Cyclic reduction (CR) — forward reduction to a tiny system followed by
//! back substitution. `O(n)` work, `2·log2(n)` steps, half the threads going
//! idle at every level (the work-efficiency/step-efficiency tradeoff the
//! paper discusses relative to PCR).
//!
//! Included both as an algorithm in its own right and as the front half of
//! Zhang et al.'s CR-PCR hybrid, the prior-art baseline the paper's base
//! kernel is compared against (§III-A).

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::Result;

/// The four coefficient arrays of one CR level.
type Level<T> = (Vec<T>, Vec<T>, Vec<T>, Vec<T>);

/// One level of CR forward reduction. Given the current system, produce the
/// half-size system over the odd-indexed equations.
pub(crate) fn cr_reduce_level<T: Scalar>(a: &[T], b: &[T], c: &[T], d: &[T]) -> Result<Level<T>> {
    let n = b.len();
    let m = n / 2;
    let mut ra = vec![T::ZERO; m];
    let mut rb = vec![T::ZERO; m];
    let mut rc = vec![T::ZERO; m];
    let mut rd = vec![T::ZERO; m];
    for (j, i) in (1..n).step_by(2).enumerate() {
        let bm = b[i - 1];
        check_nonzero(bm, i - 1)?;
        let k1 = a[i] / bm;
        let (k2, ap, cp, dp, bp_ok) = if i + 1 < n {
            let bp = b[i + 1];
            check_nonzero(bp, i + 1)?;
            (c[i] / bp, a[i + 1], c[i + 1], d[i + 1], true)
        } else {
            (T::ZERO, T::ZERO, T::ZERO, T::ZERO, false)
        };
        ra[j] = -(a[i - 1] * k1);
        rb[j] = b[i] - c[i - 1] * k1 - if bp_ok { ap * k2 } else { T::ZERO };
        rc[j] = if bp_ok { -(cp * k2) } else { T::ZERO };
        rd[j] = d[i] - d[i - 1] * k1 - if bp_ok { dp * k2 } else { T::ZERO };
    }
    Ok((ra, rb, rc, rd))
}

/// Back-substitute one CR level: given the solutions of the odd-indexed
/// equations (`x_half`), recover all `n` unknowns of the current level.
pub(crate) fn cr_back_substitute<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
    x_half: &[T],
) -> Result<Vec<T>> {
    let n = b.len();
    let mut x = vec![T::ZERO; n];
    for (j, i) in (1..n).step_by(2).enumerate() {
        x[i] = x_half[j];
    }
    for i in (0..n).step_by(2) {
        check_nonzero(b[i], i)?;
        let mut num = d[i];
        if i > 0 {
            num -= a[i] * x[i - 1];
        }
        if i + 1 < n {
            num -= c[i] * x[i + 1];
        }
        x[i] = num / b[i];
    }
    Ok(x)
}

/// Solve a tridiagonal system with full cyclic reduction.
pub fn solve_cr<T: Scalar>(sys: &TridiagonalSystem<T>) -> Result<Vec<T>> {
    solve_cr_until(sys, 1, |a, b, _c, d, x| {
        // Base case: systems of size <= 1 are a plain divide.
        debug_assert!(b.len() <= 1);
        if b.len() == 1 {
            check_nonzero(b[0], 0)?;
            x[0] = d[0] / b[0];
        }
        let _ = a;
        Ok(())
    })
}

/// CR forward-reduce until the remaining system has at most `threshold`
/// equations, solve it with `base_solver`, then back-substitute.
///
/// This is the skeleton shared by full CR and the CR-PCR hybrid.
pub fn solve_cr_until<T, F>(
    sys: &TridiagonalSystem<T>,
    threshold: usize,
    base_solver: F,
) -> Result<Vec<T>>
where
    T: Scalar,
    F: Fn(&[T], &[T], &[T], &[T], &mut [T]) -> Result<()>,
{
    if threshold == 0 {
        return Err(SolverError::InvalidParameter {
            name: "threshold",
            detail: "must be >= 1".into(),
        });
    }
    let n = sys.len();
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }

    // Record every level's coefficients for the back-substitution pass.
    let mut levels: Vec<Level<T>> =
        vec![(sys.a.clone(), sys.b.clone(), sys.c.clone(), sys.d.clone())];
    while levels.last().unwrap().1.len() > threshold {
        let (a, b, c, d) = levels.last().unwrap();
        let reduced = cr_reduce_level(a, b, c, d)?;
        if reduced.1.is_empty() {
            break; // n == 1 at this level; base solver handles it.
        }
        levels.push(reduced);
    }

    // Solve the smallest level with the provided base solver.
    let (la, lb, lc, ld) = levels.last().unwrap();
    let mut x = vec![T::ZERO; lb.len()];
    base_solver(la, lb, lc, ld, &mut x)?;

    // Walk back up.
    for lvl in (0..levels.len() - 1).rev() {
        let (a, b, c, d) = &levels[lvl];
        x = cr_back_substitute(a, b, c, d, &x)?;
    }
    Ok(x)
}

#[inline]
fn check_nonzero<T: Scalar>(v: T, row: usize) -> Result<()> {
    let mag = v.abs().to_f64();
    if !mag.is_finite() || mag == 0.0 {
        return Err(SolverError::ZeroPivot {
            row,
            magnitude: mag,
        });
    }
    Ok(())
}

/// Floating-point cost of full CR on `n` equations (cost models): the
/// reduction touches `n/2 + n/4 + …` rows at ~12 flops and back substitution
/// ~5 flops per row.
pub fn cr_flops(n: usize) -> usize {
    17 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas::solve_thomas;

    fn dominant(n: usize) -> TridiagonalSystem<f64> {
        let mut a = vec![-0.9; n];
        let b = vec![2.5; n];
        let mut c = vec![-1.1; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.3 - 1.0).collect();
        TridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn matches_thomas_power_of_two() {
        for n in [2usize, 4, 8, 64, 256, 1024] {
            let sys = dominant(n);
            let xt = solve_thomas(&sys).unwrap();
            let xc = solve_cr(&sys).unwrap();
            for (u, v) in xt.iter().zip(&xc) {
                assert!((u - v).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn matches_thomas_odd_sizes() {
        for n in [1usize, 3, 5, 7, 17, 33, 100, 333, 1001] {
            let sys = dominant(n);
            let xt = solve_thomas(&sys).unwrap();
            let xc = solve_cr(&sys).unwrap();
            for (u, v) in xt.iter().zip(&xc) {
                assert!((u - v).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn threshold_variants_agree() {
        let sys = dominant(512);
        let xt = solve_thomas(&sys).unwrap();
        for threshold in [1usize, 2, 8, 32, 512] {
            let x = solve_cr_until(&sys, threshold, |a, b, c, d, x| {
                // Use Thomas as the base solver for the reduced system.
                let sub = TridiagonalSystem::new(a.to_vec(), b.to_vec(), c.to_vec(), d.to_vec())?;
                let sol = solve_thomas(&sub)?;
                x.copy_from_slice(&sol);
                Ok(())
            })
            .unwrap();
            for (u, v) in xt.iter().zip(&x) {
                assert!((u - v).abs() < 1e-8, "threshold={threshold}");
            }
        }
    }

    #[test]
    fn zero_threshold_rejected() {
        let sys = dominant(8);
        assert!(matches!(
            solve_cr_until(&sys, 0, |_, _, _, _, _| Ok(())),
            Err(SolverError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn singular_rejected() {
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(solve_cr(&sys).is_err());
    }

    #[test]
    fn flops_model() {
        assert_eq!(cr_flops(0), 0);
        assert!(cr_flops(1024) < crate::pcr::pcr_flops(1024, 10));
    }
}
