//! System representations: a single tridiagonal system and a contiguous batch
//! of equally-sized systems, plus the strided *chain* views produced by PCR
//! splitting.

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::Result;

/// A single tridiagonal system `a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]`.
///
/// Storage convention: `a[0] == 0`, `c[n-1] == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalSystem<T: Scalar> {
    /// Sub-diagonal (`a[0]` must be zero).
    pub a: Vec<T>,
    /// Main diagonal.
    pub b: Vec<T>,
    /// Super-diagonal (`c[n-1]` must be zero).
    pub c: Vec<T>,
    /// Right-hand side.
    pub d: Vec<T>,
}

impl<T: Scalar> TridiagonalSystem<T> {
    /// Build a system from the four coefficient arrays, validating shape and
    /// boundary conventions.
    pub fn new(a: Vec<T>, b: Vec<T>, c: Vec<T>, d: Vec<T>) -> Result<Self> {
        let n = b.len();
        if n == 0 {
            return Err(SolverError::EmptySystem);
        }
        if a.len() != n || c.len() != n || d.len() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "a={}, b={}, c={}, d={} (all must match)",
                    a.len(),
                    b.len(),
                    c.len(),
                    d.len()
                ),
            });
        }
        if a[0] != T::ZERO {
            return Err(SolverError::MalformedBoundary {
                detail: "a[0] must be 0".into(),
            });
        }
        if c[n - 1] != T::ZERO {
            return Err(SolverError::MalformedBoundary {
                detail: "c[n-1] must be 0".into(),
            });
        }
        Ok(Self { a, b, c, d })
    }

    /// Number of equations.
    pub fn len(&self) -> usize {
        self.b.len()
    }

    /// True if the system has zero equations (never true for a validated
    /// system; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.b.is_empty()
    }

    /// Check every coefficient is finite.
    pub fn check_finite(&self) -> Result<()> {
        for (i, v) in self
            .a
            .iter()
            .chain(&self.b)
            .chain(&self.c)
            .chain(&self.d)
            .enumerate()
        {
            if !v.is_finite() {
                return Err(SolverError::NonFiniteInput {
                    index: i % self.len(),
                });
            }
        }
        Ok(())
    }

    /// Strict row diagonal dominance: `|b[i]| > |a[i]| + |c[i]|` for all `i`.
    ///
    /// Diagonal dominance guarantees the pivot-free algorithms (Thomas, CR,
    /// PCR) are numerically stable; the workload generators used throughout
    /// the paper's evaluation all produce dominant systems.
    pub fn is_diagonally_dominant(&self) -> bool {
        self.a
            .iter()
            .zip(&self.b)
            .zip(&self.c)
            .all(|((&a, &b), &c)| b.abs() > a.abs() + c.abs())
    }

    /// Multiply the matrix by a candidate solution: `y = A·x`.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>> {
        let n = self.len();
        if x.len() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("x has {} entries, system has {n}", x.len()),
            });
        }
        let mut y = vec![T::ZERO; n];
        for i in 0..n {
            let mut acc = self.b[i] * x[i];
            if i > 0 {
                acc += self.a[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.c[i] * x[i + 1];
            }
            y[i] = acc;
        }
        Ok(y)
    }
}

/// A batch of `m` tridiagonal systems, each of `n` equations, stored
/// system-major (`system s` occupies `s*n .. (s+1)*n` of each array).
///
/// This is the layout the GPU kernels stream from global memory, and the unit
/// of work for every stage of the multi-stage solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBatch<T: Scalar> {
    /// Number of systems.
    pub num_systems: usize,
    /// Equations per system.
    pub system_size: usize,
    /// Sub-diagonals, length `num_systems * system_size`.
    pub a: Vec<T>,
    /// Main diagonals.
    pub b: Vec<T>,
    /// Super-diagonals.
    pub c: Vec<T>,
    /// Right-hand sides.
    pub d: Vec<T>,
}

impl<T: Scalar> SystemBatch<T> {
    /// Build a batch from flat arrays, validating shape and per-system
    /// boundary conventions.
    pub fn new(
        num_systems: usize,
        system_size: usize,
        a: Vec<T>,
        b: Vec<T>,
        c: Vec<T>,
        d: Vec<T>,
    ) -> Result<Self> {
        if num_systems == 0 || system_size == 0 {
            return Err(SolverError::EmptySystem);
        }
        let total = num_systems * system_size;
        if a.len() != total || b.len() != total || c.len() != total || d.len() != total {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "expected {total} entries per array, got a={}, b={}, c={}, d={}",
                    a.len(),
                    b.len(),
                    c.len(),
                    d.len()
                ),
            });
        }
        for s in 0..num_systems {
            if a[s * system_size] != T::ZERO {
                return Err(SolverError::MalformedBoundary {
                    detail: format!("a[0] of system {s} must be 0"),
                });
            }
            if c[s * system_size + system_size - 1] != T::ZERO {
                return Err(SolverError::MalformedBoundary {
                    detail: format!("c[n-1] of system {s} must be 0"),
                });
            }
        }
        Ok(Self {
            num_systems,
            system_size,
            a,
            b,
            c,
            d,
        })
    }

    /// Build a batch of `m` copies of one system.
    pub fn replicate(sys: &TridiagonalSystem<T>, m: usize) -> Result<Self> {
        if m == 0 {
            return Err(SolverError::EmptySystem);
        }
        let n = sys.len();
        let rep = |v: &[T]| {
            let mut out = Vec::with_capacity(m * n);
            for _ in 0..m {
                out.extend_from_slice(v);
            }
            out
        };
        Self::new(m, n, rep(&sys.a), rep(&sys.b), rep(&sys.c), rep(&sys.d))
    }

    /// Assemble a batch from individual systems (all must share a size).
    pub fn from_systems(systems: &[TridiagonalSystem<T>]) -> Result<Self> {
        let m = systems.len();
        if m == 0 {
            return Err(SolverError::EmptySystem);
        }
        let n = systems[0].len();
        let total = m * n;
        let mut a = Vec::with_capacity(total);
        let mut b = Vec::with_capacity(total);
        let mut c = Vec::with_capacity(total);
        let mut d = Vec::with_capacity(total);
        for (i, s) in systems.iter().enumerate() {
            if s.len() != n {
                return Err(SolverError::DimensionMismatch {
                    detail: format!("system {i} has size {}, expected {n}", s.len()),
                });
            }
            a.extend_from_slice(&s.a);
            b.extend_from_slice(&s.b);
            c.extend_from_slice(&s.c);
            d.extend_from_slice(&s.d);
        }
        Self::new(m, n, a, b, c, d)
    }

    /// Total number of equations across the batch.
    pub fn total_equations(&self) -> usize {
        self.num_systems * self.system_size
    }

    /// Bytes occupied by the four coefficient arrays (the global-memory
    /// footprint of the unsolved batch).
    pub fn coefficient_bytes(&self) -> usize {
        4 * self.total_equations() * T::BYTES
    }

    /// Extract system `s` as an owned [`TridiagonalSystem`].
    pub fn system(&self, s: usize) -> Result<TridiagonalSystem<T>> {
        if s >= self.num_systems {
            return Err(SolverError::InvalidParameter {
                name: "s",
                detail: format!("system index {s} out of range ({})", self.num_systems),
            });
        }
        let r = s * self.system_size..(s + 1) * self.system_size;
        TridiagonalSystem::new(
            self.a[r.clone()].to_vec(),
            self.b[r.clone()].to_vec(),
            self.c[r.clone()].to_vec(),
            self.d[r].to_vec(),
        )
    }

    /// True if every system in the batch is strictly diagonally dominant.
    pub fn is_diagonally_dominant(&self) -> bool {
        self.a
            .iter()
            .zip(&self.b)
            .zip(&self.c)
            .all(|((&a, &b), &c)| b.abs() > a.abs() + c.abs())
    }
}

/// A strided *chain* inside a larger system: the independent subsystem made of
/// equations `offset, offset+stride, offset+2·stride, …` after PCR has split a
/// system `stride` ways.
///
/// A chain is itself a tridiagonal system whose neighbour couplings are at
/// distance `stride` in the parent arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainView {
    /// First parent index of the chain.
    pub offset: usize,
    /// Distance between consecutive chain elements in the parent.
    pub stride: usize,
    /// Number of equations in the chain.
    pub len: usize,
}

impl ChainView {
    /// Enumerate the `stride` chains covering a parent system of `n`
    /// equations starting at parent offset `base`.
    pub fn chains_of(base: usize, n: usize, stride: usize) -> Vec<ChainView> {
        assert!(stride >= 1, "stride must be >= 1");
        (0..stride.min(n))
            .map(|r| ChainView {
                offset: base + r,
                stride,
                len: (n - r).div_ceil(stride),
            })
            .collect()
    }

    /// Parent index of chain element `i`.
    #[inline]
    pub fn index(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        self.offset + i * self.stride
    }

    /// Gather the chain's elements from a parent array into a contiguous
    /// vector.
    pub fn gather<T: Scalar>(&self, parent: &[T]) -> Vec<T> {
        (0..self.len).map(|i| parent[self.index(i)]).collect()
    }

    /// Scatter contiguous values back into a parent array.
    pub fn scatter<T: Scalar>(&self, values: &[T], parent: &mut [T]) {
        assert_eq!(values.len(), self.len);
        for (i, &v) in values.iter().enumerate() {
            parent[self.index(i)] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sys() -> TridiagonalSystem<f64> {
        TridiagonalSystem::new(
            vec![0.0, -1.0, -1.0, -1.0],
            vec![4.0, 4.0, 4.0, 4.0],
            vec![-1.0, -1.0, -1.0, 0.0],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let err = TridiagonalSystem::new(vec![0.0f64], vec![1.0, 2.0], vec![0.0], vec![1.0]);
        assert!(matches!(err, Err(SolverError::DimensionMismatch { .. })));
    }

    #[test]
    fn new_rejects_empty() {
        let err = TridiagonalSystem::<f64>::new(vec![], vec![], vec![], vec![]);
        assert_eq!(err, Err(SolverError::EmptySystem));
    }

    #[test]
    fn new_rejects_bad_boundaries() {
        let err = TridiagonalSystem::new(
            vec![1.0f64, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        );
        assert!(matches!(err, Err(SolverError::MalformedBoundary { .. })));
        let err = TridiagonalSystem::new(
            vec![0.0f64, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
        );
        assert!(matches!(err, Err(SolverError::MalformedBoundary { .. })));
    }

    #[test]
    fn dominance_detection() {
        let sys = small_sys();
        assert!(sys.is_diagonally_dominant());
        let weak = TridiagonalSystem::new(
            vec![0.0, -2.0],
            vec![2.0, 2.0],
            vec![-2.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(!weak.is_diagonally_dominant());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let sys = small_sys();
        let y = sys.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        let sys = small_sys();
        assert!(sys.matvec(&[1.0]).is_err());
    }

    #[test]
    fn check_finite_catches_nan() {
        let mut sys = small_sys();
        sys.d[2] = f64::NAN;
        assert!(sys.check_finite().is_err());
        assert!(small_sys().check_finite().is_ok());
    }

    #[test]
    fn batch_replicate_and_extract() {
        let sys = small_sys();
        let batch = SystemBatch::replicate(&sys, 3).unwrap();
        assert_eq!(batch.num_systems, 3);
        assert_eq!(batch.system_size, 4);
        assert_eq!(batch.total_equations(), 12);
        for s in 0..3 {
            assert_eq!(batch.system(s).unwrap(), sys);
        }
        assert!(batch.system(3).is_err());
    }

    #[test]
    fn batch_from_systems_requires_uniform_size() {
        let s1 = small_sys();
        let s2 = TridiagonalSystem::new(vec![0.0], vec![1.0], vec![0.0], vec![1.0]).unwrap();
        assert!(SystemBatch::from_systems(&[s1, s2]).is_err());
    }

    #[test]
    fn batch_validates_interior_boundaries() {
        // A flat array where system 1's a[0] is nonzero must be rejected.
        let a = vec![0.0f64, -1.0, 0.5, -1.0];
        let b = vec![4.0; 4];
        let c = vec![-1.0, 0.0, -1.0, 0.0];
        let d = vec![1.0; 4];
        assert!(SystemBatch::new(2, 2, a, b, c, d).is_err());
    }

    #[test]
    fn batch_coefficient_bytes() {
        let sys = small_sys();
        let batch = SystemBatch::replicate(&sys, 2).unwrap();
        assert_eq!(batch.coefficient_bytes(), 4 * 8 * 8);
    }

    #[test]
    fn chain_views_cover_parent_exactly_once() {
        for n in [1usize, 5, 8, 13] {
            for stride in [1usize, 2, 4, 8] {
                let chains = ChainView::chains_of(0, n, stride);
                let mut seen = vec![0u32; n];
                for ch in &chains {
                    for i in 0..ch.len {
                        seen[ch.index(i)] += 1;
                    }
                }
                assert!(seen.iter().all(|&s| s == 1), "n={n} stride={stride}");
            }
        }
    }

    #[test]
    fn chain_gather_scatter_round_trip() {
        let parent: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let chains = ChainView::chains_of(0, 10, 4);
        let mut rebuilt = vec![0.0f64; 10];
        for ch in &chains {
            let vals = ch.gather(&parent);
            ch.scatter(&vals, &mut rebuilt);
        }
        assert_eq!(parent, rebuilt);
    }

    #[test]
    fn chain_lens_sum_to_parent() {
        for n in [3usize, 7, 16, 31] {
            for k in [1usize, 2, 3, 8, 16] {
                let chains = ChainView::chains_of(0, n, k);
                let total: usize = chains.iter().map(|c| c.len).sum();
                assert_eq!(total, n);
            }
        }
    }
}
