//! Hybrid solvers: the paper's **PCR-Thomas** (reference formulation of the
//! base kernel, §III-A) and Zhang et al.'s **CR-PCR** (the prior-art hybrid
//! the paper compares against).
//!
//! Both trade step efficiency against work efficiency:
//!
//! | Algorithm  | Work          | Steps        |
//! |------------|---------------|--------------|
//! | Thomas     | `O(n)`        | `O(n)`       |
//! | CR         | `O(n)`        | `2·log2 n`   |
//! | PCR        | `O(n log n)`  | `log2 n`     |
//! | PCR-Thomas | `O(n log k + n²/k · k) = O(n log k + n)` | `log2 k + n/k` |
//! | CR-PCR     | `O(n)`-ish    | between CR and PCR |

use crate::cr;
use crate::error::SolverError;
use crate::pcr;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::thomas;
use crate::Result;

/// Solve with the paper's hybrid: PCR-split into `num_chains` independent
/// subsystems (must be a power of two), then solve each chain with Thomas.
///
/// `num_chains` is exactly the paper's *stage-3→stage-4 switch point* — the
/// number of subsystems handed to the Thomas phase (Figure 6's x-axis).
pub fn solve_pcr_thomas<T: Scalar>(
    sys: &TridiagonalSystem<T>,
    num_chains: usize,
) -> Result<Vec<T>> {
    if num_chains == 0 || !num_chains.is_power_of_two() {
        return Err(SolverError::InvalidParameter {
            name: "num_chains",
            detail: format!("{num_chains} must be a nonzero power of two"),
        });
    }
    let steps = num_chains.trailing_zeros();
    pcr::solve_pcr_then_thomas(sys, steps)
}

/// Solve with Zhang et al.'s hybrid: CR forward reduction until the system
/// has at most `pcr_threshold` equations, pure PCR on the reduced system,
/// then CR back substitution.
pub fn solve_cr_pcr<T: Scalar>(sys: &TridiagonalSystem<T>, pcr_threshold: usize) -> Result<Vec<T>> {
    cr::solve_cr_until(sys, pcr_threshold, |a, b, c, d, x| {
        let sub = TridiagonalSystem::new(a.to_vec(), b.to_vec(), c.to_vec(), d.to_vec())?;
        let sol = pcr::solve_pcr(&sub)?;
        x.copy_from_slice(&sol);
        Ok(())
    })
}

/// Work model (thread-operations) of a PCR-Thomas solve of `n` equations
/// switching at `num_chains` subsystems. Used by the on-chip stage of the
/// GPU cost model and by the ablation bench.
pub fn pcr_thomas_ops(n: usize, num_chains: usize) -> usize {
    let steps = num_chains.trailing_zeros();
    let chain_len = n.div_ceil(num_chains.max(1));
    pcr::pcr_flops(n, steps) + num_chains * thomas::thomas_flops(chain_len)
}

/// Work model of Zhang's CR-PCR on `n` equations with PCR threshold `t`.
pub fn cr_pcr_ops(n: usize, t: usize) -> usize {
    // CR reduction/back-substitution over the levels above the threshold,
    // then O(t log t) PCR work on the reduced system.
    let mut ops = 0usize;
    let mut len = n;
    while len > t {
        ops += 17 * len / 2; // reduce + back-sub contributions at this level
        len /= 2;
    }
    ops + pcr::pcr_flops(len, pcr::ceil_log2(len.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas::solve_thomas;

    fn dominant_f64(n: usize) -> TridiagonalSystem<f64> {
        let mut a = vec![-1.0; n];
        let b = vec![3.1; n];
        let mut c = vec![-1.3; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        TridiagonalSystem::new(a, b, c, d).unwrap()
    }

    fn dominant_f32(n: usize) -> TridiagonalSystem<f32> {
        let s = dominant_f64(n);
        TridiagonalSystem::new(
            s.a.iter().map(|&v| v as f32).collect(),
            s.b.iter().map(|&v| v as f32).collect(),
            s.c.iter().map(|&v| v as f32).collect(),
            s.d.iter().map(|&v| v as f32).collect(),
        )
        .unwrap()
    }

    #[test]
    fn pcr_thomas_matches_thomas_all_switch_points() {
        let sys = dominant_f64(256);
        let xt = solve_thomas(&sys).unwrap();
        for k in [1usize, 2, 4, 16, 64, 128, 256] {
            let x = solve_pcr_thomas(&sys, k).unwrap();
            for (u, v) in xt.iter().zip(&x) {
                assert!((u - v).abs() < 1e-8, "k={k}");
            }
        }
    }

    #[test]
    fn pcr_thomas_rejects_non_power_of_two() {
        let sys = dominant_f64(64);
        assert!(solve_pcr_thomas(&sys, 0).is_err());
        assert!(solve_pcr_thomas(&sys, 3).is_err());
        assert!(solve_pcr_thomas(&sys, 48).is_err());
    }

    #[test]
    fn cr_pcr_matches_thomas() {
        for n in [16usize, 64, 100, 512] {
            let sys = dominant_f64(n);
            let xt = solve_thomas(&sys).unwrap();
            for t in [1usize, 4, 16, 64] {
                let x = solve_cr_pcr(&sys, t).unwrap();
                for (u, v) in xt.iter().zip(&x) {
                    assert!((u - v).abs() < 1e-8, "n={n} t={t}");
                }
            }
        }
    }

    #[test]
    fn single_precision_accuracy_is_acceptable() {
        // f32 hybrid solve on a dominant system keeps ~5 digits.
        let sys = dominant_f32(512);
        let x = solve_pcr_thomas(&sys, 64).unwrap();
        let y = sys.matvec(&x).unwrap();
        for (yi, di) in y.iter().zip(&sys.d) {
            assert!((yi - di).abs() < 1e-2, "f32 residual too large");
        }
    }

    #[test]
    fn work_model_monotone_in_chains() {
        // More chains = more PCR steps = more work (the Figure 6 tradeoff).
        let w64 = pcr_thomas_ops(1024, 64);
        let w128 = pcr_thomas_ops(1024, 128);
        let w256 = pcr_thomas_ops(1024, 256);
        assert!(w64 < w128 && w128 < w256);
    }

    #[test]
    fn pcr_thomas_cheaper_than_pure_pcr() {
        let full_pcr = pcr::pcr_flops(1024, 10);
        assert!(pcr_thomas_ops(1024, 64) < full_pcr);
    }

    #[test]
    fn cr_pcr_work_between_cr_and_pcr() {
        let n = 4096;
        let cr_only = cr::cr_flops(n);
        let pcr_only = pcr::pcr_flops(n, pcr::ceil_log2(n));
        let hybrid = cr_pcr_ops(n, 64);
        assert!(hybrid >= cr_only / 2, "hybrid {hybrid} vs cr {cr_only}");
        assert!(hybrid < pcr_only, "hybrid {hybrid} vs pcr {pcr_only}");
    }
}
