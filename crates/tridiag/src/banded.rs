//! General banded and block-tridiagonal solvers — the paper's §VII future
//! work ("the next challenge in this specific application domain is
//! high-performance blocked tridiagonal solvers and optimized banded
//! solvers"), provided here as CPU reference implementations.
//!
//! * [`BandedMatrix`] + [`solve_banded`] — LAPACK-`gbsv`-style banded LU
//!   with partial pivoting (fill-in bounded by `kl` extra superdiagonals);
//! * [`solve_pentadiagonal`] — the five-diagonal convenience wrapper;
//! * [`BlockTridiagonalSystem`] + [`solve_block_thomas`] — block Thomas
//!   with small dense LU block kernels.

use crate::dense::{DenseLu, DenseMatrix};
use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::Result;

/// A square banded matrix with `kl` sub-diagonals and `ku` super-diagonals,
/// stored by row windows.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix<T: Scalar> {
    /// Dimension.
    pub n: usize,
    /// Sub-diagonals.
    pub kl: usize,
    /// Super-diagonals.
    pub ku: usize,
    /// Row-window storage: row `i` occupies `width()` slots covering columns
    /// `i-kl ..= i+ku` (out-of-matrix slots are zero).
    data: Vec<T>,
}

impl<T: Scalar> BandedMatrix<T> {
    /// Zero banded matrix.
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Result<Self> {
        if n == 0 {
            return Err(SolverError::EmptySystem);
        }
        Ok(Self {
            n,
            kl,
            ku,
            data: vec![T::ZERO; n * (kl + ku + 1)],
        })
    }

    /// Stored band width per row.
    pub fn width(&self) -> usize {
        self.kl + self.ku + 1
    }

    #[inline]
    fn slot(&self, i: usize, j: usize) -> Option<usize> {
        let lo = i.saturating_sub(self.kl);
        let hi = (i + self.ku).min(self.n - 1);
        if j < lo || j > hi {
            None
        } else {
            Some(i * self.width() + (j + self.kl - i))
        }
    }

    /// Entry `(i, j)` (zero outside the band).
    pub fn get(&self, i: usize, j: usize) -> T {
        self.slot(i, j).map_or(T::ZERO, |s| self.data[s])
    }

    /// Set entry `(i, j)`. Fails if outside the band.
    pub fn set(&mut self, i: usize, j: usize, v: T) -> Result<()> {
        match self.slot(i, j) {
            Some(s) => {
                self.data[s] = v;
                Ok(())
            }
            None => Err(SolverError::InvalidParameter {
                name: "(i, j)",
                detail: format!(
                    "({i}, {j}) outside the band of a {}x{} kl={} ku={} matrix",
                    self.n, self.n, self.kl, self.ku
                ),
            }),
        }
    }

    /// Lift a tridiagonal system's matrix into banded form (`kl = ku = 1`).
    pub fn from_tridiagonal(sys: &TridiagonalSystem<T>) -> Result<Self> {
        let n = sys.len();
        let mut m = Self::zeros(n, 1, 1)?;
        for i in 0..n {
            if i > 0 {
                m.set(i, i - 1, sys.a[i])?;
            }
            m.set(i, i, sys.b[i])?;
            if i + 1 < n {
                m.set(i, i + 1, sys.c[i])?;
            }
        }
        Ok(m)
    }

    /// Banded matrix–vector product.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>> {
        if x.len() != self.n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("x has {} entries, matrix is {}", x.len(), self.n),
            });
        }
        let mut y = vec![T::ZERO; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = i.saturating_sub(self.kl);
            let hi = (i + self.ku).min(self.n - 1);
            let mut acc = T::ZERO;
            for (j, xj) in x.iter().enumerate().take(hi + 1).skip(lo) {
                acc += self.get(i, j) * *xj;
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Densify (test oracle; `O(n²)` memory).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.n);
        for i in 0..self.n {
            let lo = i.saturating_sub(self.kl);
            let hi = (i + self.ku).min(self.n - 1);
            for j in lo..=hi {
                d[(i, j)] = self.get(i, j);
            }
        }
        d
    }
}

/// Solve `A·x = d` for a banded `A` by LU with partial pivoting
/// (LAPACK-`gbsv` style: the factorisation carries `kl` fill-in
/// superdiagonals, and pivoting searches the `kl` rows below the diagonal).
///
/// ```
/// use trisolve_tridiag::banded::{solve_banded, BandedMatrix};
///
/// // A small pentadiagonal system with a known diagonal solve.
/// let mut a = BandedMatrix::zeros(4, 2, 2)?;
/// for i in 0..4 {
///     a.set(i, i, 2.0)?;
/// }
/// let x = solve_banded(&a, &[2.0, 4.0, 6.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
/// # Ok::<(), trisolve_tridiag::SolverError>(())
/// ```
pub fn solve_banded<T: Scalar>(a: &BandedMatrix<T>, d: &[T]) -> Result<Vec<T>> {
    let n = a.n;
    if d.len() != n {
        return Err(SolverError::DimensionMismatch {
            detail: format!("rhs has {} entries, matrix is {n}", d.len()),
        });
    }
    let (kl, ku) = (a.kl, a.ku);
    // Working band in column-window storage: column j holds rows
    // j-ku-kl ..= j+kl at positions (i - j + ku + kl).
    let wh = 2 * kl + ku + 1;
    let mut ab = vec![T::ZERO; wh * n];
    let idx = |i: usize, j: usize| -> usize { j * wh + (i + ku + kl - j) };
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let lo = i.saturating_sub(kl);
        let hi = (i + ku).min(n - 1);
        for j in lo..=hi {
            ab[idx(i, j)] = a.get(i, j);
        }
    }
    let mut x = d.to_vec();

    for k in 0..n {
        // Pivot among rows k ..= min(k+kl, n-1) in column k.
        let last = (k + kl).min(n - 1);
        let mut p = k;
        let mut best = ab[idx(k, k)].abs();
        for i in k + 1..=last {
            let v = ab[idx(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        let mag = best.to_f64();
        if !mag.is_finite() || mag == 0.0 {
            return Err(SolverError::ZeroPivot {
                row: k,
                magnitude: mag,
            });
        }
        let jmax = (k + ku + kl).min(n - 1);
        if p != k {
            for j in k..=jmax {
                ab.swap(idx(k, j), idx(p, j));
            }
            x.swap(k, p);
        }
        let pivot = ab[idx(k, k)];
        for i in k + 1..=last {
            let m = ab[idx(i, k)] / pivot;
            if m != T::ZERO {
                for j in k + 1..=jmax {
                    let ukj = ab[idx(k, j)];
                    ab[idx(i, j)] -= m * ukj;
                }
                let xk = x[k];
                x[i] -= m * xk;
            }
        }
    }

    // Back substitution against U (bandwidth ku + kl).
    for i in (0..n).rev() {
        let hi = (i + ku + kl).min(n - 1);
        let mut acc = x[i];
        for j in i + 1..=hi {
            acc -= ab[idx(i, j)] * x[j];
        }
        x[i] = acc / ab[idx(i, i)];
    }
    Ok(x)
}

/// Solve a pentadiagonal system given its five diagonals
/// (`a2` second sub, `a1` first sub, `b` main, `c1` first super, `c2`
/// second super; out-of-range leading/trailing entries must be zero).
pub fn solve_pentadiagonal<T: Scalar>(
    a2: &[T],
    a1: &[T],
    b: &[T],
    c1: &[T],
    c2: &[T],
    d: &[T],
) -> Result<Vec<T>> {
    let n = b.len();
    let mut m = BandedMatrix::zeros(n, 2, 2)?;
    for i in 0..n {
        if i >= 2 {
            m.set(i, i - 2, a2[i])?;
        }
        if i >= 1 {
            m.set(i, i - 1, a1[i])?;
        }
        m.set(i, i, b[i])?;
        if i + 1 < n {
            m.set(i, i + 1, c1[i])?;
        }
        if i + 2 < n {
            m.set(i, i + 2, c2[i])?;
        }
    }
    solve_banded(&m, d)
}

// ---------------------------------------------------------------------------
// Block tridiagonal
// ---------------------------------------------------------------------------

/// A block-tridiagonal system: `num_blocks` diagonal blocks of size
/// `block × block`, with sub-/super-diagonal coupling blocks.
///
/// `A[i]·X[i-1] + B[i]·X[i] + C[i]·X[i+1] = D[i]` with `A[0]` and
/// `C[last]` ignored.
#[derive(Debug, Clone)]
pub struct BlockTridiagonalSystem<T: Scalar> {
    /// Number of block rows.
    pub num_blocks: usize,
    /// Block dimension.
    pub block: usize,
    /// Sub-diagonal blocks (`a[0]` unused).
    pub a: Vec<DenseMatrix<T>>,
    /// Diagonal blocks.
    pub b: Vec<DenseMatrix<T>>,
    /// Super-diagonal blocks (`c[last]` unused).
    pub c: Vec<DenseMatrix<T>>,
    /// Right-hand side, length `num_blocks * block`.
    pub d: Vec<T>,
}

impl<T: Scalar> BlockTridiagonalSystem<T> {
    /// Validate shapes.
    pub fn validate(&self) -> Result<()> {
        let (m, s) = (self.num_blocks, self.block);
        if m == 0 || s == 0 {
            return Err(SolverError::EmptySystem);
        }
        if self.a.len() != m || self.b.len() != m || self.c.len() != m {
            return Err(SolverError::DimensionMismatch {
                detail: "block diagonals must all have num_blocks entries".into(),
            });
        }
        if self.d.len() != m * s {
            return Err(SolverError::DimensionMismatch {
                detail: format!("rhs has {} entries, expected {}", self.d.len(), m * s),
            });
        }
        for blk in self.a.iter().chain(&self.b).chain(&self.c) {
            if blk.n != s {
                return Err(SolverError::DimensionMismatch {
                    detail: format!("block of size {} in a block-{s} system", blk.n),
                });
            }
        }
        Ok(())
    }

    /// Assemble into a banded matrix (bandwidth `2·block − 1` each side) —
    /// the oracle the block solver is verified against.
    pub fn to_banded(&self) -> Result<BandedMatrix<T>> {
        self.validate()?;
        let (m, s) = (self.num_blocks, self.block);
        let band = 2 * s - 1;
        let mut out = BandedMatrix::zeros(m * s, band, band)?;
        for blk in 0..m {
            for r in 0..s {
                for cidx in 0..s {
                    let i = blk * s + r;
                    out.set(i, blk * s + cidx, self.b[blk][(r, cidx)])?;
                    if blk > 0 {
                        let v = self.a[blk][(r, cidx)];
                        if v != T::ZERO {
                            out.set(i, (blk - 1) * s + cidx, v)?;
                        }
                    }
                    if blk + 1 < m {
                        let v = self.c[blk][(r, cidx)];
                        if v != T::ZERO {
                            out.set(i, (blk + 1) * s + cidx, v)?;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Solve a block-tridiagonal system with block Thomas (block forward
/// elimination + back substitution, dense LU per diagonal block).
pub fn solve_block_thomas<T: Scalar>(sys: &BlockTridiagonalSystem<T>) -> Result<Vec<T>> {
    sys.validate()?;
    let (m, s) = (sys.num_blocks, sys.block);

    // Forward sweep: cp[i] = (B[i] - A[i]·cp[i-1])⁻¹ · C[i]
    //                dp[i] = (B[i] - A[i]·cp[i-1])⁻¹ · (D[i] - A[i]·dp[i-1])
    let mut cp: Vec<DenseMatrix<T>> = Vec::with_capacity(m);
    let mut dp: Vec<Vec<T>> = Vec::with_capacity(m);
    for i in 0..m {
        let mut beta = sys.b[i].clone();
        let mut rhs = sys.d[i * s..(i + 1) * s].to_vec();
        if i > 0 {
            // beta -= A[i]·cp[i-1]; rhs -= A[i]·dp[i-1]
            let prod = sys.a[i].matmul(&cp[i - 1]);
            for k in 0..s * s {
                beta.data[k] -= prod.data[k];
            }
            let adp = sys.a[i].matvec(&dp[i - 1]);
            for k in 0..s {
                rhs[k] -= adp[k];
            }
        }
        let lu = DenseLu::factor(beta)?;
        let mut cnew = if i + 1 < m {
            sys.c[i].clone()
        } else {
            DenseMatrix::zeros(s)
        };
        lu.solve_matrix(&mut cnew);
        lu.solve_in_place(&mut rhs);
        cp.push(cnew);
        dp.push(rhs);
    }

    // Back substitution: X[i] = dp[i] - cp[i]·X[i+1].
    let mut x = vec![T::ZERO; m * s];
    x[(m - 1) * s..].copy_from_slice(&dp[m - 1]);
    for i in (0..m - 1).rev() {
        let xnext = x[(i + 1) * s..(i + 2) * s].to_vec();
        let corr = cp[i].matvec(&xnext);
        for k in 0..s {
            x[i * s + k] = dp[i][k] - corr[k];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::solve_dense;
    use crate::lu::solve_lu;
    use crate::workloads::{random_dominant, WorkloadShape};
    use rand::distributions::{Distribution, Uniform};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let u = Uniform::new(-1.0f64, 1.0);
        let mut m = BandedMatrix::zeros(n, kl, ku).unwrap();
        for i in 0..n {
            let lo = i.saturating_sub(kl);
            let hi = (i + ku).min(n - 1);
            for j in lo..=hi {
                let v = if i == j {
                    u.sample(&mut rng) + (kl + ku + 2) as f64 // dominant-ish
                } else {
                    u.sample(&mut rng)
                };
                m.set(i, j, v).unwrap();
            }
        }
        m
    }

    #[test]
    fn get_set_respect_band() {
        let mut m = BandedMatrix::<f64>::zeros(6, 1, 2).unwrap();
        m.set(2, 1, 5.0).unwrap();
        m.set(2, 4, 7.0).unwrap();
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(2, 4), 7.0);
        assert_eq!(m.get(2, 0), 0.0); // outside band reads zero
        assert!(m.set(2, 0, 1.0).is_err()); // ... and cannot be written
        assert!(m.set(0, 3, 1.0).is_err());
    }

    #[test]
    fn banded_matches_dense_oracle() {
        for (n, kl, ku, seed) in [(8usize, 1usize, 1usize, 1u64), (20, 2, 3, 2), (50, 4, 2, 3)] {
            let m = random_banded(n, kl, ku, seed);
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
            let x_band = solve_banded(&m, &d).unwrap();
            let x_dense = solve_dense(&m.to_dense(), &d).unwrap();
            for (u, v) in x_band.iter().zip(&x_dense) {
                assert!((u - v).abs() < 1e-9, "n={n} kl={kl} ku={ku}");
            }
        }
    }

    #[test]
    fn tridiagonal_case_matches_gtsv() {
        let batch = random_dominant::<f64>(WorkloadShape::new(1, 64), 9).unwrap();
        let sys = batch.system(0).unwrap();
        let banded = BandedMatrix::from_tridiagonal(&sys).unwrap();
        let x_band = solve_banded(&banded, &sys.d).unwrap();
        let x_lu = solve_lu(&sys).unwrap();
        for (u, v) in x_band.iter().zip(&x_lu) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_required_case() {
        // Zero leading diagonal entry: unpivoted elimination would die.
        let mut m = BandedMatrix::<f64>::zeros(3, 1, 1).unwrap();
        m.set(0, 0, 0.0).unwrap();
        m.set(0, 1, 1.0).unwrap();
        m.set(1, 0, 2.0).unwrap();
        m.set(1, 1, 1.0).unwrap();
        m.set(1, 2, 1.0).unwrap();
        m.set(2, 1, 1.0).unwrap();
        m.set(2, 2, 3.0).unwrap();
        let d = vec![1.0, 2.0, 3.0];
        let x = solve_banded(&m, &d).unwrap();
        let y = m.matvec(&x).unwrap();
        for (u, v) in y.iter().zip(&d) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_banded_rejected() {
        let mut m = BandedMatrix::<f64>::zeros(2, 1, 1).unwrap();
        m.set(0, 0, 1.0).unwrap();
        m.set(0, 1, 1.0).unwrap();
        m.set(1, 0, 1.0).unwrap();
        m.set(1, 1, 1.0).unwrap();
        assert!(matches!(
            solve_banded(&m, &[1.0, 1.0]),
            Err(SolverError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn pentadiagonal_biharmonic() {
        // The 1-D biharmonic stencil [1, -4, 6, -4, 1] + shift: a classic
        // pentadiagonal system (fourth-order operator).
        let n = 64;
        let mut a2 = vec![1.0; n];
        let mut a1 = vec![-4.0; n];
        let b = vec![6.5; n];
        let mut c1 = vec![-4.0; n];
        let mut c2 = vec![1.0; n];
        a2[0] = 0.0;
        a2[1] = 0.0;
        a1[0] = 0.0;
        c1[n - 1] = 0.0;
        c2[n - 1] = 0.0;
        c2[n - 2] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let x = solve_pentadiagonal(&a2, &a1, &b, &c1, &c2, &d).unwrap();

        // Verify via the banded matvec.
        let mut m = BandedMatrix::zeros(n, 2, 2).unwrap();
        for i in 0..n {
            if i >= 2 {
                m.set(i, i - 2, a2[i]).unwrap();
            }
            if i >= 1 {
                m.set(i, i - 1, a1[i]).unwrap();
            }
            m.set(i, i, b[i]).unwrap();
            if i + 1 < n {
                m.set(i, i + 1, c1[i]).unwrap();
            }
            if i + 2 < n {
                m.set(i, i + 2, c2[i]).unwrap();
            }
        }
        let y = m.matvec(&x).unwrap();
        for (u, v) in y.iter().zip(&d) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    fn random_block_system(m: usize, s: usize, seed: u64) -> BlockTridiagonalSystem<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let u = Uniform::new(-1.0f64, 1.0);
        let mut mk = |dominant: bool| {
            let mut blk = DenseMatrix::zeros(s);
            for r in 0..s {
                for c in 0..s {
                    blk[(r, c)] = u.sample(&mut rng);
                }
                if dominant {
                    blk[(r, r)] += 4.0 * s as f64;
                }
            }
            blk
        };
        let a: Vec<_> = (0..m).map(|_| mk(false)).collect();
        let b: Vec<_> = (0..m).map(|_| mk(true)).collect();
        let c: Vec<_> = (0..m).map(|_| mk(false)).collect();
        let d: Vec<f64> = (0..m * s).map(|_| u.sample(&mut rng)).collect();
        BlockTridiagonalSystem {
            num_blocks: m,
            block: s,
            a,
            b,
            c,
            d,
        }
    }

    #[test]
    fn block_thomas_matches_banded_oracle() {
        for (m, s, seed) in [(4usize, 2usize, 1u64), (8, 3, 2), (16, 4, 3)] {
            let sys = random_block_system(m, s, seed);
            let x_block = solve_block_thomas(&sys).unwrap();
            let banded = sys.to_banded().unwrap();
            let x_band = solve_banded(&banded, &sys.d).unwrap();
            for (u, v) in x_block.iter().zip(&x_band) {
                assert!((u - v).abs() < 1e-8, "m={m} s={s}");
            }
        }
    }

    #[test]
    fn block_size_one_reduces_to_scalar_thomas() {
        let batch = random_dominant::<f64>(WorkloadShape::new(1, 32), 4).unwrap();
        let t = batch.system(0).unwrap();
        let n = t.len();
        let scalar = |v: f64| DenseMatrix::from_rows(1, &[v]).unwrap();
        let sys = BlockTridiagonalSystem {
            num_blocks: n,
            block: 1,
            a: t.a.iter().map(|&v| scalar(v)).collect(),
            b: t.b.iter().map(|&v| scalar(v)).collect(),
            c: t.c.iter().map(|&v| scalar(v)).collect(),
            d: t.d.clone(),
        };
        let x_block = solve_block_thomas(&sys).unwrap();
        let x_ref = crate::thomas::solve_thomas(&t).unwrap();
        for (u, v) in x_block.iter().zip(&x_ref) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn block_validation_catches_shape_errors() {
        let mut sys = random_block_system(4, 2, 7);
        sys.d.pop();
        assert!(sys.validate().is_err());
        let mut sys = random_block_system(4, 2, 7);
        sys.b[2] = DenseMatrix::zeros(3);
        assert!(sys.validate().is_err());
    }
}
