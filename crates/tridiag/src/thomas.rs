//! The Thomas algorithm: serial Gaussian elimination specialised to
//! tridiagonal systems. `O(n)` work, `O(n)` sequential steps, no pivoting.
//!
//! In the paper this is **stage 4**: once PCR has produced enough independent
//! subsystems, each GPU thread runs Thomas over its own (strided) chain. The
//! strided variant here mirrors that access pattern exactly and is the
//! reference the base kernels are verified against.

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::system::{ChainView, TridiagonalSystem};
use crate::Result;

/// Relative pivot threshold: pivots smaller than `PIVOT_REL_TOL * max|b|`
/// are treated as breakdown.
const PIVOT_REL_TOL: f64 = 1e-30;

/// Solve a tridiagonal system with the Thomas algorithm.
///
/// Returns the solution vector. Fails with [`SolverError::ZeroPivot`] if
/// elimination breaks down (the matrix is singular or requires pivoting; use
/// [`crate::lu::solve_lu`] for such systems).
///
/// ```
/// use trisolve_tridiag::{thomas::solve_thomas, TridiagonalSystem};
///
/// // [2 1; 1 3] x = [5; 10]  =>  x = (1, 3)
/// let sys = TridiagonalSystem::new(
///     vec![0.0f64, 1.0],
///     vec![2.0, 3.0],
///     vec![1.0, 0.0],
///     vec![5.0, 10.0],
/// )?;
/// let x = solve_thomas(&sys)?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), trisolve_tridiag::SolverError>(())
/// ```
pub fn solve_thomas<T: Scalar>(sys: &TridiagonalSystem<T>) -> Result<Vec<T>> {
    let n = sys.len();
    let mut cp = vec![T::ZERO; n];
    let mut dp = vec![T::ZERO; n];
    solve_thomas_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut cp, &mut dp)?;
    Ok(dp)
}

/// Thomas over explicit coefficient slices; `cp`/`dp` are scratch buffers of
/// length `n`, and the solution is written into `dp`.
pub fn solve_thomas_into<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
    cp: &mut [T],
    dp: &mut [T],
) -> Result<()> {
    let n = b.len();
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }

    let mut beta = b[0];
    check_pivot(beta, 0)?;
    cp[0] = c[0] / beta;
    dp[0] = d[0] / beta;
    for i in 1..n {
        beta = b[i] - a[i] * cp[i - 1];
        check_pivot(beta, i)?;
        cp[i] = c[i] / beta;
        dp[i] = (d[i] - a[i] * dp[i - 1]) / beta;
    }
    for i in (0..n - 1).rev() {
        let next = dp[i + 1];
        dp[i] -= cp[i] * next;
    }
    Ok(())
}

/// Thomas over a strided [`ChainView`] inside flat parent arrays, writing the
/// chain's solution into `x` at the chain's parent positions.
///
/// This is the exact memory access pattern of a stage-4 GPU thread solving
/// one post-PCR chain: coefficients live `stride` apart in the parent arrays.
pub fn solve_thomas_chain<T: Scalar>(
    chain: &ChainView,
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
    x: &mut [T],
    scratch: &mut ChainScratch<T>,
) -> Result<()> {
    let n = chain.len;
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }
    scratch.resize(n);
    let cp = &mut scratch.cp;
    let dp = &mut scratch.dp;

    let i0 = chain.index(0);
    let mut beta = b[i0];
    check_pivot(beta, i0)?;
    cp[0] = c[i0] / beta;
    dp[0] = d[i0] / beta;
    for k in 1..n {
        let i = chain.index(k);
        beta = b[i] - a[i] * cp[k - 1];
        check_pivot(beta, i)?;
        cp[k] = c[i] / beta;
        dp[k] = (d[i] - a[i] * dp[k - 1]) / beta;
    }
    for k in (0..n - 1).rev() {
        let next = dp[k + 1];
        dp[k] -= cp[k] * next;
    }
    for k in 0..n {
        x[chain.index(k)] = dp[k];
    }
    Ok(())
}

/// Reusable scratch space for [`solve_thomas_chain`], so per-chain solves in
/// a hot loop do not allocate ("workhorse collection" pattern).
#[derive(Debug, Default, Clone)]
pub struct ChainScratch<T: Scalar> {
    cp: Vec<T>,
    dp: Vec<T>,
}

impl<T: Scalar> ChainScratch<T> {
    /// Create empty scratch; it grows on first use.
    pub fn new() -> Self {
        Self {
            cp: Vec::new(),
            dp: Vec::new(),
        }
    }

    fn resize(&mut self, n: usize) {
        self.cp.clear();
        self.cp.resize(n, T::ZERO);
        self.dp.clear();
        self.dp.resize(n, T::ZERO);
    }
}

#[inline]
fn check_pivot<T: Scalar>(beta: T, row: usize) -> Result<()> {
    let mag = beta.abs().to_f64();
    if !mag.is_finite() || mag < PIVOT_REL_TOL {
        return Err(SolverError::ZeroPivot {
            row,
            magnitude: mag,
        });
    }
    Ok(())
}

/// Floating-point operation count of a Thomas solve of `n` equations
/// (used by the CPU/GPU cost models).
pub fn thomas_flops(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    // Forward sweep: 2 divs + 3 mul/add per row (first row cheaper),
    // back substitution: 2 ops per row.
    8 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TridiagonalSystem;

    fn poisson(n: usize) -> TridiagonalSystem<f64> {
        let mut a = vec![-1.0; n];
        let b = vec![2.5; n];
        let mut c = vec![-1.0; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
        TridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn solves_identity() {
        let sys = TridiagonalSystem::new(
            vec![0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 0.0, 0.0],
            vec![7.0, -3.0, 0.5],
        )
        .unwrap();
        let x = solve_thomas(&sys).unwrap();
        assert_eq!(x, vec![7.0, -3.0, 0.5]);
    }

    #[test]
    fn solves_single_equation() {
        let sys = TridiagonalSystem::new(vec![0.0], vec![4.0], vec![0.0], vec![8.0]).unwrap();
        assert_eq!(solve_thomas(&sys).unwrap(), vec![2.0]);
    }

    #[test]
    fn residual_small_on_dominant_system() {
        let sys = poisson(257);
        let x = solve_thomas(&sys).unwrap();
        let y = sys.matvec(&x).unwrap();
        for (yi, di) in y.iter().zip(&sys.d) {
            assert!((yi - di).abs() < 1e-10, "residual too large");
        }
    }

    #[test]
    fn known_2x2_solution() {
        // [2 1; 1 3] x = [5; 10]  =>  x = [1, 3]
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![1.0, 0.0],
            vec![5.0, 10.0],
        )
        .unwrap();
        let x = solve_thomas(&sys).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_zero_pivot() {
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            solve_thomas(&sys),
            Err(SolverError::ZeroPivot { row: 0, .. })
        ));
    }

    #[test]
    fn detects_induced_breakdown() {
        // Elimination produces a zero pivot at row 1: b1 - a1*c0/b0 = 2 - 4*1/2 = 0.
        let sys = TridiagonalSystem::new(
            vec![0.0, 4.0],
            vec![2.0, 2.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            solve_thomas(&sys),
            Err(SolverError::ZeroPivot { row: 1, .. })
        ));
    }

    #[test]
    fn chain_solve_matches_contiguous() {
        let sys = poisson(64);
        let direct = solve_thomas(&sys).unwrap();

        // Solve via a stride-1 chain covering the whole system.
        let chain = ChainView {
            offset: 0,
            stride: 1,
            len: 64,
        };
        let mut x = vec![0.0f64; 64];
        let mut scratch = ChainScratch::new();
        solve_thomas_chain(&chain, &sys.a, &sys.b, &sys.c, &sys.d, &mut x, &mut scratch).unwrap();
        for (u, v) in direct.iter().zip(&x) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn strided_chain_solves_interleaved_systems() {
        // Interleave two independent 4-equation systems at stride 2 and check
        // each chain solves to its own solution.
        let s0 = poisson(4);
        let mut s1 = poisson(4);
        for v in &mut s1.d {
            *v *= 2.0;
        }
        let n = 8;
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        let mut c = vec![0.0f64; n];
        let mut d = vec![0.0f64; n];
        for i in 0..4 {
            a[2 * i] = s0.a[i];
            b[2 * i] = s0.b[i];
            c[2 * i] = s0.c[i];
            d[2 * i] = s0.d[i];
            a[2 * i + 1] = s1.a[i];
            b[2 * i + 1] = s1.b[i];
            c[2 * i + 1] = s1.c[i];
            d[2 * i + 1] = s1.d[i];
        }
        let mut x = vec![0.0f64; n];
        let mut scratch = ChainScratch::new();
        for (r, sys) in [(0usize, &s0), (1usize, &s1)] {
            let chain = ChainView {
                offset: r,
                stride: 2,
                len: 4,
            };
            solve_thomas_chain(&chain, &a, &b, &c, &d, &mut x, &mut scratch).unwrap();
            let expect = solve_thomas(sys).unwrap();
            for i in 0..4 {
                assert!((x[2 * i + r] - expect[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flops_model_is_linear() {
        assert_eq!(thomas_flops(0), 0);
        assert_eq!(thomas_flops(100), 800);
        assert!(thomas_flops(200) == 2 * thomas_flops(100));
    }
}
