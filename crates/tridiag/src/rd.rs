//! Recursive doubling (Stone 1973) — the third classic parallel
//! tridiagonal algorithm alongside CR and PCR (Hockney & Jesshope's survey,
//! the paper's reference [11], treats all three). Included for substrate
//! completeness and as another cross-check oracle.
//!
//! The Thomas elimination is re-expressed as three *scans*, each computed
//! with pairwise doubling (`O(n log n)` work, `O(log n)` depth):
//!
//! 1. the pivots `w_i = θ_i / θ_{i-1}` from the leading-principal-minor
//!    three-term recurrence `θ_i = b_i θ_{i-1} − a_i c_{i-1} θ_{i-2}`,
//!    evaluated as a scan of 2×2 matrix products (normalised per
//!    combination step so the minors never overflow — both components of a
//!    pair share the scale, so the *ratio* `w_i` is exact);
//! 2. the forward substitution `g_i = (d_i − a_i g_{i-1}) / w_i`, an affine
//!    first-order recurrence scanned over the `(p, q) ∘ (p', q') =
//!    (p·p', p·q' + q)` monoid;
//! 3. the back substitution `x_i = g_i − (c_i / w_i)·x_{i+1}`, the same
//!    monoid scanned in reverse.

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::Result;

/// Solve a tridiagonal system by recursive doubling.
///
/// Like Thomas/CR/PCR this is pivot-free: it requires the leading principal
/// minors to be nonzero (guaranteed for diagonally dominant systems) and
/// inherits recursive doubling's mild extra roundoff relative to Thomas.
pub fn solve_recursive_doubling<T: Scalar>(sys: &TridiagonalSystem<T>) -> Result<Vec<T>> {
    let n = sys.len();
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }

    // ---- Scan 1: pivots from normalised 2x2 minor products. -------------
    // M_i = [[b_i, -a_i * c_{i-1}], [1, 0]];  (θ_i, θ_{i-1})ᵀ = Π M · (1, 0)ᵀ.
    let mats: Vec<[T; 4]> = (0..n)
        .map(|i| {
            let off = if i == 0 {
                T::ZERO
            } else {
                sys.a[i] * sys.c[i - 1]
            };
            [sys.b[i], -off, T::ONE, T::ZERO]
        })
        .collect();
    let prefix = scan_mat2(&mats);
    let mut w = vec![T::ZERO; n];
    for i in 0..n {
        // P = prefix[i] maps (1, 0) to (θ_i, θ_{i-1}) up to a shared scale.
        let theta_i = prefix[i][0];
        let theta_im1 = prefix[i][2];
        let mag = theta_i.abs().to_f64();
        let denom = theta_im1.abs().to_f64();
        if !mag.is_finite() || (i + 1 < n && mag == 0.0) || !denom.is_finite() {
            return Err(SolverError::ZeroPivot {
                row: i,
                magnitude: mag,
            });
        }
        if i == 0 {
            w[0] = sys.b[0];
        } else {
            if denom == 0.0 {
                return Err(SolverError::ZeroPivot {
                    row: i,
                    magnitude: denom,
                });
            }
            w[i] = theta_i / theta_im1;
        }
    }
    let last = w[n - 1].abs().to_f64();
    if !last.is_finite() || last == 0.0 {
        return Err(SolverError::ZeroPivot {
            row: n - 1,
            magnitude: last,
        });
    }

    // ---- Scan 2: forward substitution as an affine scan. ----------------
    // g_i = p_i * g_{i-1} + q_i with p_i = -a_i / w_{i-1}, q_i = d_i.
    // (Thomas' forward pass on the RHS; dividing by w happens in scan 3.)
    let fwd: Vec<(T, T)> = (0..n)
        .map(|i| {
            if i == 0 {
                (T::ZERO, sys.d[0])
            } else {
                (-(sys.a[i] / w[i - 1]), sys.d[i])
            }
        })
        .collect();
    let g = scan_affine(&fwd);

    // ---- Scan 3: back substitution as a reverse affine scan. ------------
    // x_i = (g_i / w_i) + (-c_i / w_i) * x_{i+1}.
    let bwd: Vec<(T, T)> = (0..n)
        .rev()
        .map(|i| {
            if i == n - 1 {
                (T::ZERO, g[i] / w[i])
            } else {
                (-(sys.c[i] / w[i]), g[i] / w[i])
            }
        })
        .collect();
    let xr = scan_affine(&bwd);
    let mut x = vec![T::ZERO; n];
    for (k, v) in xr.into_iter().enumerate() {
        x[n - 1 - k] = v;
    }
    for (i, v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(SolverError::ZeroPivot {
                row: i,
                magnitude: f64::NAN,
            });
        }
    }
    Ok(x)
}

/// Inclusive prefix "products" of 2×2 matrices by pairwise doubling, each
/// stored product renormalised by its max-magnitude entry (the shared scale
/// cancels in every ratio the caller takes).
fn scan_mat2<T: Scalar>(mats: &[[T; 4]]) -> Vec<[T; 4]> {
    let n = mats.len();
    let mut cur: Vec<[T; 4]> = mats.iter().map(|m| normalize2(*m)).collect();
    let mut step = 1usize;
    while step < n {
        let prev = cur.clone();
        for i in step..n {
            cur[i] = normalize2(mul2(prev[i], prev[i - step]));
        }
        step *= 2;
    }
    cur
}

fn mul2<T: Scalar>(a: [T; 4], b: [T; 4]) -> [T; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

fn normalize2<T: Scalar>(m: [T; 4]) -> [T; 4] {
    let mut mx = T::ZERO;
    for v in m {
        mx = mx.max_s(v.abs());
    }
    if mx == T::ZERO {
        return m;
    }
    [m[0] / mx, m[1] / mx, m[2] / mx, m[3] / mx]
}

/// Inclusive scan of affine maps `y_i = p_i · y_{i-1} + q_i` (with
/// `y_{-1} = 0`) by pairwise doubling over the composition monoid.
fn scan_affine<T: Scalar>(maps: &[(T, T)]) -> Vec<T> {
    let n = maps.len();
    let mut cur: Vec<(T, T)> = maps.to_vec();
    let mut step = 1usize;
    while step < n {
        let prev = cur.clone();
        for i in step..n {
            // compose self ∘ earlier: (p, q) ∘ (p', q') = (p p', p q' + q)
            let (p, q) = prev[i];
            let (pp, qp) = prev[i - step];
            cur[i] = (p * pp, p * qp + q);
        }
        step *= 2;
    }
    cur.into_iter().map(|(_, q)| q).collect()
}

/// Work model of recursive doubling (cost comparisons): three doubling
/// scans of `log2(n)` passes each.
pub fn rd_flops(n: usize) -> usize {
    if n <= 1 {
        return 8;
    }
    let logn = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    // 2x2 matrix products dominate (12 flops each), plus two affine scans
    // (3 flops per composition).
    n * logn * (12 + 3 + 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms;
    use crate::thomas::solve_thomas;
    use crate::workloads::{random_dominant, WorkloadShape};

    fn dominant(n: usize, seed: u64) -> TridiagonalSystem<f64> {
        random_dominant(WorkloadShape::new(1, n), seed)
            .unwrap()
            .system(0)
            .unwrap()
    }

    #[test]
    fn matches_thomas_small() {
        for n in [1usize, 2, 3, 5, 8, 17, 64] {
            let sys = dominant(n, n as u64);
            let xt = solve_thomas(&sys).unwrap();
            let xr = solve_recursive_doubling(&sys).unwrap();
            let d = norms::max_abs_diff(&xt, &xr);
            assert!(d < 1e-9, "n={n}: deviation {d:.3e}");
        }
    }

    #[test]
    fn matches_thomas_large_without_overflow() {
        // The minor recurrence would overflow f64 near n ~ 1000 without the
        // per-step normalisation; 16K equations proves the scaling works.
        for n in [1024usize, 4096, 16384] {
            let sys = dominant(n, 3);
            let xt = solve_thomas(&sys).unwrap();
            let xr = solve_recursive_doubling(&sys).unwrap();
            let d = norms::max_abs_diff(&xt, &xr);
            assert!(d < 1e-7, "n={n}: deviation {d:.3e}");
        }
    }

    #[test]
    fn residual_certifies_solution() {
        let sys = dominant(500, 9);
        let x = solve_recursive_doubling(&sys).unwrap();
        assert!(norms::relative_residual(&sys, &x).unwrap() < 1e-10);
    }

    #[test]
    fn poisson_stencil() {
        let batch = crate::workloads::poisson_1d::<f64>(WorkloadShape::new(1, 777), 1).unwrap();
        let sys = batch.system(0).unwrap();
        let xt = solve_thomas(&sys).unwrap();
        let xr = solve_recursive_doubling(&sys).unwrap();
        assert!(norms::max_abs_diff(&xt, &xr) < 1e-8);
    }

    #[test]
    fn zero_leading_minor_rejected() {
        // b0 = 0 makes the first pivot zero: RD (like Thomas) must refuse.
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            solve_recursive_doubling(&sys),
            Err(SolverError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn work_model_is_n_log_n() {
        assert!(rd_flops(1024) > 10 * rd_flops(64));
        assert!(rd_flops(1024) < 1024 * 12 * 18 * 2);
    }
}
