//! Error and residual norms used by the test suites and the experiment
//! harness to validate every solver against every other.

use crate::scalar::Scalar;
use crate::system::{SystemBatch, TridiagonalSystem};
use crate::Result;

/// Maximum absolute residual `‖A·x − d‖∞` of a candidate solution.
pub fn residual_linf<T: Scalar>(sys: &TridiagonalSystem<T>, x: &[T]) -> Result<f64> {
    let y = sys.matvec(x)?;
    Ok(y.iter()
        .zip(&sys.d)
        .map(|(yi, di)| (*yi - *di).abs().to_f64())
        .fold(0.0, f64::max))
}

/// Relative residual: `‖A·x − d‖∞ / max(1, ‖d‖∞)`.
pub fn relative_residual<T: Scalar>(sys: &TridiagonalSystem<T>, x: &[T]) -> Result<f64> {
    let r = residual_linf(sys, x)?;
    let dmax = sys
        .d
        .iter()
        .map(|v| v.abs().to_f64())
        .fold(0.0f64, f64::max);
    Ok(r / dmax.max(1.0))
}

/// Maximum absolute component-wise difference between two vectors.
pub fn max_abs_diff<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch in max_abs_diff");
    x.iter()
        .zip(y)
        .map(|(u, v)| (*u - *v).abs().to_f64())
        .fold(0.0, f64::max)
}

/// Relative L2 error `‖x − y‖₂ / max(ε, ‖y‖₂)`.
pub fn relative_l2_error<T: Scalar>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch in relative_l2_error");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (u, v) in x.iter().zip(y) {
        let d = (*u - *v).to_f64();
        num += d * d;
        let vv = v.to_f64();
        den += vv * vv;
    }
    num.sqrt() / den.sqrt().max(f64::EPSILON)
}

/// Worst relative residual across every system of a batch given the batch's
/// flat solution vector.
pub fn batch_worst_relative_residual<T: Scalar>(batch: &SystemBatch<T>, x: &[T]) -> Result<f64> {
    let n = batch.system_size;
    let mut worst = 0.0f64;
    for s in 0..batch.num_systems {
        let sys = batch.system(s)?;
        let r = relative_residual(&sys, &x[s * n..(s + 1) * n])?;
        worst = worst.max(r);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TridiagonalSystem;
    use crate::thomas::solve_thomas;

    fn sys() -> TridiagonalSystem<f64> {
        TridiagonalSystem::new(
            vec![0.0, -1.0, -1.0],
            vec![4.0, 4.0, 4.0],
            vec![-1.0, -1.0, 0.0],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn residual_of_exact_solution_is_tiny() {
        let s = sys();
        let x = solve_thomas(&s).unwrap();
        assert!(residual_linf(&s, &x).unwrap() < 1e-12);
        assert!(relative_residual(&s, &x).unwrap() < 1e-12);
    }

    #[test]
    fn residual_of_wrong_solution_is_large() {
        let s = sys();
        let bad = vec![10.0, 10.0, 10.0];
        assert!(residual_linf(&s, &bad).unwrap() > 1.0);
    }

    #[test]
    fn diff_norms() {
        let x = [1.0f64, 2.0, 3.0];
        let y = [1.0f64, 2.5, 3.0];
        assert_eq!(max_abs_diff(&x, &y), 0.5);
        assert!(relative_l2_error(&x, &x) < 1e-15);
        assert!(relative_l2_error(&x, &y) > 0.1);
    }

    #[test]
    fn batch_residual_spots_one_bad_system() {
        let s = sys();
        let batch = crate::system::SystemBatch::replicate(&s, 3).unwrap();
        let xs = solve_thomas(&s).unwrap();
        let mut flat = Vec::new();
        for _ in 0..3 {
            flat.extend_from_slice(&xs);
        }
        assert!(batch_worst_relative_residual(&batch, &flat).unwrap() < 1e-12);
        flat[4] += 1.0; // corrupt system 1
        assert!(batch_worst_relative_residual(&batch, &flat).unwrap() > 0.1);
    }
}
