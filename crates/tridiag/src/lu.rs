//! Tridiagonal LU decomposition with partial pivoting — the algorithm behind
//! LAPACK/MKL `gtsv`, which the paper uses as its CPU baseline (Figure 8).
//!
//! Partial pivoting introduces fill-in one diagonal above the super-diagonal,
//! so the factorisation carries a second super-diagonal `c2`. Unlike Thomas,
//! this solver is robust on systems that are not diagonally dominant.

use crate::error::SolverError;
use crate::scalar::Scalar;
use crate::system::TridiagonalSystem;
use crate::Result;

/// Solve a tridiagonal system by LU decomposition with partial pivoting.
///
/// This is the MKL-`gtsv` analogue: sequential, `O(n)` work, stable on any
/// nonsingular tridiagonal matrix.
pub fn solve_lu<T: Scalar>(sys: &TridiagonalSystem<T>) -> Result<Vec<T>> {
    let n = sys.len();
    let mut work = LuWorkspace::with_capacity(n);
    solve_lu_with(sys, &mut work)?;
    Ok(work.x)
}

/// Workspace for repeated LU solves without reallocation.
#[derive(Debug, Default, Clone)]
pub struct LuWorkspace<T: Scalar> {
    /// Lower multipliers (after factorisation).
    pub l: Vec<T>,
    /// Main diagonal of U.
    pub u0: Vec<T>,
    /// First super-diagonal of U.
    pub u1: Vec<T>,
    /// Second super-diagonal of U (fill-in from pivoting).
    pub u2: Vec<T>,
    /// Permuted right-hand side / solution.
    pub x: Vec<T>,
    /// Row-swap flags: `swapped[i]` is true if rows `i` and `i+1` were
    /// exchanged at elimination step `i`.
    pub swapped: Vec<bool>,
}

impl<T: Scalar> LuWorkspace<T> {
    /// Pre-size the workspace for systems of `n` equations.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            l: Vec::with_capacity(n),
            u0: Vec::with_capacity(n),
            u1: Vec::with_capacity(n),
            u2: Vec::with_capacity(n),
            x: Vec::with_capacity(n),
            swapped: Vec::with_capacity(n),
        }
    }

    fn reset(&mut self, n: usize) {
        self.l.clear();
        self.l.resize(n, T::ZERO);
        self.u0.clear();
        self.u0.resize(n, T::ZERO);
        self.u1.clear();
        self.u1.resize(n, T::ZERO);
        self.u2.clear();
        self.u2.resize(n, T::ZERO);
        self.x.clear();
        self.x.resize(n, T::ZERO);
        self.swapped.clear();
        self.swapped.resize(n, false);
    }
}

/// Solve into a reusable workspace; the solution ends up in `work.x`.
pub fn solve_lu_with<T: Scalar>(
    sys: &TridiagonalSystem<T>,
    work: &mut LuWorkspace<T>,
) -> Result<()> {
    let n = sys.len();
    if n == 0 {
        return Err(SolverError::EmptySystem);
    }
    work.reset(n);

    // Working copies of the three diagonals; u2 starts at zero.
    work.u0.copy_from_slice(&sys.b);
    work.u1[..n - 1].copy_from_slice(&sys.c[..n - 1]);
    work.x.copy_from_slice(&sys.d);

    // `low[i]` is the current sub-diagonal entry of row i (mutated by swaps).
    let mut low = sys.a.clone();

    for i in 0..n - 1 {
        // Partial pivoting: compare the pivot candidate |u0[i]| with the
        // sub-diagonal entry |low[i+1]| below it.
        if low[i + 1].abs() > work.u0[i].abs() {
            work.swapped[i] = true;
            // Swap rows i and i+1 across all active columns.
            // Row i:   (u0[i], u1[i], u2[i]=0)
            // Row i+1: (low[i+1], u0[i+1], u1[i+1])
            let r0 = (work.u0[i], work.u1[i], T::ZERO);
            let r1 = (low[i + 1], work.u0[i + 1], work.u1[i + 1]);
            work.u0[i] = r1.0;
            work.u1[i] = r1.1;
            work.u2[i] = r1.2;
            low[i + 1] = r0.0;
            work.u0[i + 1] = r0.1;
            work.u1[i + 1] = r0.2;
            work.x.swap(i, i + 1);
        }
        let pivot = work.u0[i];
        let mag = pivot.abs().to_f64();
        if !mag.is_finite() || mag == 0.0 {
            return Err(SolverError::ZeroPivot {
                row: i,
                magnitude: mag,
            });
        }
        let m = low[i + 1] / pivot;
        work.l[i + 1] = m;
        work.u0[i + 1] = work.u0[i + 1] - m * work.u1[i];
        work.u1[i + 1] = work.u1[i + 1] - m * work.u2[i];
        let xi = work.x[i];
        work.x[i + 1] -= m * xi;
    }

    let last = work.u0[n - 1];
    let mag = last.abs().to_f64();
    if !mag.is_finite() || mag == 0.0 {
        return Err(SolverError::ZeroPivot {
            row: n - 1,
            magnitude: mag,
        });
    }

    // Back substitution with two super-diagonals.
    work.x[n - 1] = work.x[n - 1] / work.u0[n - 1];
    if n >= 2 {
        let i = n - 2;
        let x1 = work.x[i + 1];
        work.x[i] = (work.x[i] - work.u1[i] * x1) / work.u0[i];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        let x1 = work.x[i + 1];
        let x2 = work.x[i + 2];
        work.x[i] = (work.x[i] - work.u1[i] * x1 - work.u2[i] * x2) / work.u0[i];
    }
    Ok(())
}

/// Floating-point operation count of an LU (`gtsv`-style) solve of `n`
/// equations, for the CPU cost model. Pivoted LU on a tridiagonal does
/// slightly more work than Thomas because of the fill-in diagonal.
pub fn lu_flops(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    10 * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas::solve_thomas;

    fn dominant(n: usize) -> TridiagonalSystem<f64> {
        let mut a = vec![-1.0; n];
        let b = vec![3.0; n];
        let mut c = vec![-1.5; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        TridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn agrees_with_thomas_on_dominant_systems() {
        for n in [1usize, 2, 3, 17, 128, 513] {
            let sys = dominant(n);
            let x_lu = solve_lu(&sys).unwrap();
            let x_th = solve_thomas(&sys).unwrap();
            for (u, v) in x_lu.iter().zip(&x_th) {
                assert!((u - v).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn survives_system_that_breaks_thomas() {
        // b[0] = 0 forces a pivot swap; Thomas fails, LU succeeds.
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0, 1.0],
            vec![0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
            vec![2.0, 3.0, 5.0],
        )
        .unwrap();
        assert!(solve_thomas(&sys).is_err());
        let x = solve_lu(&sys).unwrap();
        let y = sys.matvec(&x).unwrap();
        for (yi, di) in y.iter().zip(&sys.d) {
            assert!((yi - di).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_singular_matrix() {
        // Two identical rows => singular.
        let sys = TridiagonalSystem::new(
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        // rows: [1 1; 1 1] is singular.
        assert!(matches!(solve_lu(&sys), Err(SolverError::ZeroPivot { .. })));
    }

    #[test]
    fn single_equation() {
        let sys = TridiagonalSystem::new(vec![0.0], vec![-2.0], vec![0.0], vec![6.0]).unwrap();
        assert_eq!(solve_lu(&sys).unwrap(), vec![-3.0]);
    }

    #[test]
    fn backward_stable_on_random_nondominant() {
        // A non-dominant matrix exercising the pivot path. LU with partial
        // pivoting is backward stable: the *relative* residual
        // r / (|A|·|x| + |d|) must be at machine-epsilon scale even if the
        // matrix is poorly conditioned.
        let n = 200;
        let mut a: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64) / 5.0 - 1.0).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 17 % 7) as f64) / 3.0 - 1.0).collect();
        let mut c: Vec<f64> = (0..n).map(|i| ((i * 23 % 13) as f64) / 6.0 - 1.0).collect();
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let sys = TridiagonalSystem::new(a, b, c, d).unwrap();
        let x = solve_lu(&sys).unwrap();
        let y = sys.matvec(&x).unwrap();
        let xmax = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let amax = 3.0; // every |row| sum is <= 3 by construction
        let scale = amax * xmax + 5.0;
        let mut worst = 0.0f64;
        for (yi, di) in y.iter().zip(&sys.d) {
            worst = worst.max((yi - di).abs());
        }
        assert!(worst / scale < 1e-12, "relative residual {}", worst / scale);
    }

    #[test]
    fn workspace_is_reusable() {
        let mut work = LuWorkspace::with_capacity(64);
        for n in [64usize, 32, 64] {
            let sys = dominant(n);
            solve_lu_with(&sys, &mut work).unwrap();
            assert_eq!(work.x.len(), n);
            let y = sys.matvec(&work.x).unwrap();
            for (yi, di) in y.iter().zip(&sys.d) {
                assert!((yi - di).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn flops_model() {
        assert_eq!(lu_flops(0), 0);
        assert_eq!(lu_flops(10), 100);
    }
}
