#![warn(missing_docs)]

//! # trisolve-obs
//!
//! The workspace's tracing and metrics layer: a lightweight,
//! zero-dependency sink for **simulated-time** spans, typed events, and
//! counters, with Chrome trace-event / JSONL exporters and an aggregate
//! [`MetricsReport`].
//!
//! Three layers emit into it:
//!
//! * `gpu-sim` — one span per kernel launch (label, grid/block,
//!   residency, cost counters) plus H2D/D2H transfer instants and
//!   sanitizer hazard instants;
//! * `core::engine` — session/solve/stage spans, so the stage timeline is
//!   a projection of the trace;
//! * `autotune` — one event per candidate evaluated by the
//!   microbenchmark harness and per probe/decision taken by the pruned
//!   search, so the dynamic tuner's search tree is reconstructible.
//!
//! ## The no-op contract
//!
//! A disabled [`Tracer`] (the default) records nothing and costs one
//! branch per call site. Tracing never feeds the simulator's cost model,
//! so solve results **and** simulated timings are bit-identical with
//! tracing on or off — asserted by the workspace's trace tests, mirroring
//! the sanitizer's contract.
//!
//! ## Example
//!
//! ```
//! use trisolve_obs::{arg, chrome_trace, MetricsReport, Tracer};
//!
//! let tracer = Tracer::enabled();
//! tracer.span("gpu", "stage2[interleaved]", 0.0, 42.0, vec![
//!     arg("grid", 64usize),
//!     arg("gmem_read_bytes", 1_048_576u64),
//! ]);
//! tracer.counter_add("launches", 1);
//!
//! let events = tracer.events();
//! let json = chrome_trace(&events, &tracer.counters());
//! assert!(json.contains("\"traceEvents\""));
//! let report = MetricsReport::from_trace(&events, &tracer.counters());
//! assert_eq!(report.kernels[0].family, "stage2");
//! ```

pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;

pub use event::{arg, ArgValue, Phase, TraceEvent};
pub use export::{chrome_trace, jsonl, tid_for_cat};
pub use metrics::{KernelSummary, MetricsReport};
pub use sink::{TraceBuffer, TraceSink, Tracer};
