//! Typed trace events: the unit every sink stores and every exporter walks.
//!
//! An event is deliberately plain data — a sequence number, a simulated
//! timestamp, a phase, a category, a name, and a small bag of typed
//! arguments. Everything else (Chrome-trace rendering, metrics rollups,
//! timeline projections) is derived from slices of [`TraceEvent`].

/// A typed argument value attached to a [`TraceEvent`].
///
/// The variants cover everything the instrumented layers need to record
/// (counters, simulated seconds, labels, decisions) without pulling in a
/// serialization dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (sizes, counts, byte totals).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (simulated seconds, costs). Non-finite values are
    /// exported as JSON `null`.
    F64(f64),
    /// A boolean (decisions such as `accepted` / `runnable`).
    Bool(bool),
    /// A string (kernel labels, axis names, variants).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// Build one `(key, value)` argument pair with type inference on the value.
///
/// ```
/// use trisolve_obs::{arg, ArgValue};
/// assert_eq!(arg("grid", 128usize), ("grid", ArgValue::U64(128)));
/// ```
pub fn arg(key: &'static str, value: impl Into<ArgValue>) -> (&'static str, ArgValue) {
    (key, value.into())
}

/// The phase of a trace event, mirroring the Chrome trace-event phases the
/// exporter emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span with a start time and a duration (`ph: "X"`).
    Span,
    /// A zero-duration point event (`ph: "i"`).
    Instant,
}

/// One recorded trace event.
///
/// Timestamps are **simulated** microseconds (the GPU simulator's
/// `elapsed_s` clock scaled by 1e6), not wall time: traces are therefore
/// bit-for-bit reproducible across runs of the same workload and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number assigned by the sink at record time.
    pub seq: u64,
    /// Event start, in simulated microseconds.
    pub ts_us: f64,
    /// Span duration in simulated microseconds; `0.0` for instants.
    pub dur_us: f64,
    /// Span or instant.
    pub phase: Phase,
    /// Category: which layer emitted the event (`"gpu"`, `"engine"`,
    /// `"tuner"`, `"sanitizer"`). Categories map to separate Perfetto rows.
    pub cat: &'static str,
    /// Event name (kernel label, stage name, `"eval"`, `"hazard"`, ...).
    pub name: String,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Argument as `f64`, if present and numeric.
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        match self.arg(key)? {
            ArgValue::F64(v) => Some(*v),
            ArgValue::U64(v) => Some(*v as f64),
            ArgValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Argument as `u64`, if present and an unsigned integer.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        match self.arg(key)? {
            ArgValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Argument as `&str`, if present and a string.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        match self.arg(key)? {
            ArgValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// Argument as `bool`, if present and boolean.
    pub fn arg_bool(&self, key: &str) -> Option<bool> {
        match self.arg(key)? {
            ArgValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The kernel *family* of this event's name: the label up to the first
    /// `'['`. Kernel launches are labelled like `"stage1[p=16]"`; the
    /// family (`"stage1"`) is the aggregation key used by both
    /// `StageTimeline` and [`crate::MetricsReport`].
    pub fn family(&self) -> &str {
        match self.name.find('[') {
            Some(i) => &self.name[..i],
            None => self.name.as_str(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_lookup_and_coercions() {
        let ev = TraceEvent {
            seq: 0,
            ts_us: 1.0,
            dur_us: 2.0,
            phase: Phase::Span,
            cat: "gpu",
            name: "stage2[v=interleaved]".to_string(),
            args: vec![
                arg("grid", 8usize),
                arg("exec_s", 0.5f64),
                arg("variant", "interleaved"),
                arg("accepted", true),
            ],
        };
        assert_eq!(ev.arg_u64("grid"), Some(8));
        assert_eq!(ev.arg_f64("grid"), Some(8.0));
        assert_eq!(ev.arg_f64("exec_s"), Some(0.5));
        assert_eq!(ev.arg_str("variant"), Some("interleaved"));
        assert_eq!(ev.arg_bool("accepted"), Some(true));
        assert_eq!(ev.arg("missing"), None);
        assert_eq!(ev.family(), "stage2");
    }

    #[test]
    fn family_without_bracket_is_whole_name() {
        let ev = TraceEvent {
            seq: 0,
            ts_us: 0.0,
            dur_us: 0.0,
            phase: Phase::Instant,
            cat: "engine",
            name: "solve".to_string(),
            args: Vec::new(),
        };
        assert_eq!(ev.family(), "solve");
    }
}
