//! Aggregate metrics derived from a trace: top-k kernels by simulated
//! time, bytes moved, launch/transfer counts, and tuner search totals.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::TraceEvent;

/// Rollup of one kernel family's launches in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel family (label up to the first `'['`).
    pub family: String,
    /// Number of launches.
    pub launches: u64,
    /// Total simulated milliseconds across launches.
    pub total_ms: f64,
    /// Total global-memory payload bytes (reads + writes).
    pub payload_bytes: u64,
}

/// Summary table computed from a recorded trace, printed to stderr by the
/// `trisolve trace` subcommand and the `--trace` bench flags.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Total events in the trace.
    pub events: usize,
    /// Per-kernel-family rollups, sorted by total time descending.
    pub kernels: Vec<KernelSummary>,
    /// Total simulated milliseconds across all kernel launches.
    pub gpu_total_ms: f64,
    /// Candidate evaluations recorded by the microbenchmark harness.
    pub tuner_evals: u64,
    /// Probe/move/decision events recorded by the search routines.
    pub tuner_search_events: u64,
    /// Sanitizer hazard events present in the trace.
    pub hazards: u64,
    /// Faults injected by the fault layer (`resilience`/`fault` instants).
    pub faults: u64,
    /// Retries performed by the resilience layer.
    pub retries: u64,
    /// Degradation-chain fallbacks performed by the resilience layer.
    pub fallbacks: u64,
    /// Residual verifications performed by the resilience layer.
    pub residual_checks: u64,
    /// Tuner candidates the static analyzer pruned before measurement
    /// (from the `candidates_pruned` counter).
    pub candidates_pruned: u64,
    /// Static proof obligations that failed across pruned candidates
    /// (from the `proofs_failed` counter).
    pub proofs_failed: u64,
    /// Host-to-device bytes moved.
    pub h2d_bytes: u64,
    /// Device-to-host bytes moved.
    pub d2h_bytes: u64,
    /// All named counters accumulated by the sink, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl MetricsReport {
    /// Build a report from an event slice and the sink's counters.
    pub fn from_trace(events: &[TraceEvent], counters: &[(&'static str, u64)]) -> Self {
        let mut kernels: BTreeMap<String, KernelSummary> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut gpu_total_ms = 0.0;
        let mut tuner_evals = 0;
        let mut tuner_search_events = 0;
        let mut hazards = 0;
        let mut faults = 0;
        let mut retries = 0;
        let mut fallbacks = 0;
        let mut residual_checks = 0;
        let mut h2d_bytes = 0;
        let mut d2h_bytes = 0;

        for ev in events {
            match ev.cat {
                "gpu" if ev.name == "h2d" => {
                    h2d_bytes += ev.arg_u64("bytes").unwrap_or(0);
                }
                "gpu" if ev.name == "d2h" => {
                    d2h_bytes += ev.arg_u64("bytes").unwrap_or(0);
                }
                "gpu" => {
                    let family = ev.family().to_string();
                    let ms = ev.dur_us / 1e3;
                    gpu_total_ms += ms;
                    let payload = ev.arg_u64("gmem_read_bytes").unwrap_or(0)
                        + ev.arg_u64("gmem_write_bytes").unwrap_or(0);
                    let entry = kernels.entry(family.clone()).or_insert_with(|| {
                        order.push(family.clone());
                        KernelSummary {
                            family,
                            launches: 0,
                            total_ms: 0.0,
                            payload_bytes: 0,
                        }
                    });
                    entry.launches += 1;
                    entry.total_ms += ms;
                    entry.payload_bytes += payload;
                }
                "tuner" if ev.name == "eval" => tuner_evals += 1,
                "tuner" => tuner_search_events += 1,
                "sanitizer" => hazards += 1,
                "resilience" => match ev.name.as_str() {
                    "fault" => faults += 1,
                    "retry" => retries += 1,
                    "fallback" => fallbacks += 1,
                    "residual" => residual_checks += 1,
                    _ => {}
                },
                _ => {}
            }
        }

        let mut rows: Vec<KernelSummary> = order
            .into_iter()
            .filter_map(|family| kernels.get(&family).cloned())
            .collect();
        rows.sort_by(|a, b| {
            b.total_ms
                .partial_cmp(&a.total_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let counter = |name: &str| {
            counters
                .iter()
                .find(|(k, _)| *k == name)
                .map_or(0, |(_, v)| *v)
        };

        Self {
            events: events.len(),
            kernels: rows,
            gpu_total_ms,
            tuner_evals,
            tuner_search_events,
            hazards,
            faults,
            retries,
            fallbacks,
            residual_checks,
            candidates_pruned: counter("candidates_pruned"),
            proofs_failed: counter("proofs_failed"),
            h2d_bytes,
            d2h_bytes,
            counters: counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
        }
    }

    /// Render the report as a fixed-width table, listing at most `top_k`
    /// kernel families.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace metrics: {} events", self.events);
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12} {:>6}",
            "kernel family", "launches", "sim ms", "payload MiB", "% time"
        );
        for row in self.kernels.iter().take(top_k) {
            let pct = if self.gpu_total_ms > 0.0 {
                100.0 * row.total_ms / self.gpu_total_ms
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12.4} {:>12.2} {:>5.1}%",
                row.family,
                row.launches,
                row.total_ms,
                row.payload_bytes as f64 / (1024.0 * 1024.0),
                pct
            );
        }
        if self.kernels.len() > top_k {
            let _ = writeln!(out, "  ... {} more families", self.kernels.len() - top_k);
        }
        let _ = writeln!(
            out,
            "  gpu total {:.4} ms | h2d {:.2} MiB | d2h {:.2} MiB | tuner evals {} | search events {} | hazards {}",
            self.gpu_total_ms,
            self.h2d_bytes as f64 / (1024.0 * 1024.0),
            self.d2h_bytes as f64 / (1024.0 * 1024.0),
            self.tuner_evals,
            self.tuner_search_events,
            self.hazards
        );
        if self.faults + self.retries + self.fallbacks + self.residual_checks > 0 {
            let _ = writeln!(
                out,
                "  resilience: {} faults injected | {} retries | {} fallbacks | {} residual checks",
                self.faults, self.retries, self.fallbacks, self.residual_checks
            );
        }
        if self.candidates_pruned + self.proofs_failed > 0 {
            let _ = writeln!(
                out,
                "  static analysis: {} candidates pruned | {} proofs failed",
                self.candidates_pruned, self.proofs_failed
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  counter {name:<26} {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{arg, Phase};

    fn gpu_span(seq: u64, name: &str, ts: f64, dur: f64, rd: u64, wr: u64) -> TraceEvent {
        TraceEvent {
            seq,
            ts_us: ts,
            dur_us: dur,
            phase: Phase::Span,
            cat: "gpu",
            name: name.to_string(),
            args: vec![arg("gmem_read_bytes", rd), arg("gmem_write_bytes", wr)],
        }
    }

    fn instant(
        seq: u64,
        cat: &'static str,
        name: &str,
        args: Vec<(&'static str, crate::ArgValue)>,
    ) -> TraceEvent {
        TraceEvent {
            seq,
            ts_us: 0.0,
            dur_us: 0.0,
            phase: Phase::Instant,
            cat,
            name: name.to_string(),
            args,
        }
    }

    #[test]
    fn aggregates_by_family_and_sorts_by_time() {
        let events = vec![
            gpu_span(0, "base[thomas]", 0.0, 10.0, 100, 50),
            gpu_span(1, "stage2[a]", 10.0, 500.0, 1000, 500),
            gpu_span(2, "stage2[b]", 510.0, 500.0, 1000, 500),
            instant(3, "gpu", "h2d", vec![arg("bytes", 4096u64)]),
            instant(4, "gpu", "d2h", vec![arg("bytes", 1024u64)]),
            instant(5, "tuner", "eval", Vec::new()),
            instant(6, "tuner", "probe", Vec::new()),
            instant(7, "sanitizer", "hazard", Vec::new()),
            instant(8, "resilience", "fault", Vec::new()),
            instant(9, "resilience", "retry", Vec::new()),
            instant(10, "resilience", "retry", Vec::new()),
            instant(11, "resilience", "fallback", Vec::new()),
            instant(12, "resilience", "residual", Vec::new()),
        ];
        let report = MetricsReport::from_trace(
            &events,
            &[
                ("launches", 3),
                ("candidates_pruned", 2),
                ("proofs_failed", 5),
            ],
        );
        assert_eq!(report.kernels.len(), 2);
        assert_eq!(report.kernels[0].family, "stage2");
        assert_eq!(report.kernels[0].launches, 2);
        assert_eq!(report.kernels[0].payload_bytes, 3000);
        assert_eq!(report.kernels[1].family, "base");
        assert!((report.gpu_total_ms - 1.01).abs() < 1e-12);
        assert_eq!(report.tuner_evals, 1);
        assert_eq!(report.tuner_search_events, 1);
        assert_eq!(report.hazards, 1);
        assert_eq!(report.faults, 1);
        assert_eq!(report.retries, 2);
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.residual_checks, 1);
        assert_eq!(report.h2d_bytes, 4096);
        assert_eq!(report.d2h_bytes, 1024);
        assert_eq!(report.counters.len(), 3);
        assert_eq!(report.candidates_pruned, 2);
        assert_eq!(report.proofs_failed, 5);

        let table = report.render(1);
        assert!(table.contains("stage2"));
        assert!(table.contains("... 1 more families"));
        assert!(table.contains("resilience: 1 faults injected | 2 retries"));
        assert!(table.contains("static analysis: 2 candidates pruned | 5 proofs failed"));
    }

    #[test]
    fn resilience_line_absent_without_resilience_events() {
        let events = vec![gpu_span(0, "base", 0.0, 1.0, 1, 1)];
        let report = MetricsReport::from_trace(&events, &[]);
        assert_eq!(report.faults + report.retries, 0);
        assert!(!report.render(5).contains("resilience:"));
    }
}
