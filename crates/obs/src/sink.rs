//! The sink API: where instrumented code hands events, and the cheap
//! clonable [`Tracer`] handle that every layer threads through.
//!
//! The central contract, mirroring the sanitizer's: a **disabled tracer is
//! a strict no-op**. Every recording method first checks whether a sink is
//! attached and returns immediately otherwise, and tracing never feeds the
//! simulator's cost model — so solve results *and* simulated timings are
//! bit-identical with tracing on or off (asserted by the workspace's
//! `tests/trace.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::event::{ArgValue, Phase, TraceEvent};

/// Where trace events go. Implemented by [`TraceBuffer`]; instrumented
/// code talks to the [`Tracer`] handle instead of the trait so the
/// disabled path stays a branch-and-return.
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// Record one event. The sink assigns the sequence number.
    fn record(
        &self,
        phase: Phase,
        cat: &'static str,
        name: String,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    );

    /// Add `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Advance the simulated-time gauge (monotonic: stale values are kept).
    fn set_clock_us(&self, ts_us: f64);

    /// Current value of the simulated-time gauge, in microseconds.
    fn clock_us(&self) -> f64;
}

/// The standard in-memory sink: an append-only event buffer plus named
/// atomic counters and a monotonic simulated-clock gauge.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
    seq: AtomicU64,
    /// f64 bits of the latest simulated timestamp seen, so non-GPU
    /// emitters (e.g. the tuner's search loop) can stamp events with
    /// monotonic sim-time without holding a `Gpu` reference.
    clock_us_bits: AtomicU64,
    counters: RwLock<BTreeMap<&'static str, AtomicU64>>,
}

impl TraceBuffer {
    /// An empty buffer with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let map = self.counters.read().expect("counter map poisoned");
        map.iter()
            .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
            .collect()
    }
}

impl TraceSink for TraceBuffer {
    fn record(
        &self,
        phase: Phase,
        cat: &'static str,
        name: String,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            ts_us,
            dur_us,
            phase,
            cat,
            name,
            args,
        };
        self.events.lock().expect("trace buffer poisoned").push(ev);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        {
            let map = self.counters.read().expect("counter map poisoned");
            if let Some(c) = map.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.counters.write().expect("counter map poisoned");
        map.entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn set_clock_us(&self, ts_us: f64) {
        // Monotonic max over f64 bit patterns; non-negative floats order
        // the same as their bit patterns, so a CAS loop on bits suffices.
        let new_bits = ts_us.to_bits();
        let mut cur = self.clock_us_bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < ts_us {
            match self.clock_us_bits.compare_exchange_weak(
                cur,
                new_bits,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn clock_us(&self) -> f64 {
        f64::from_bits(self.clock_us_bits.load(Ordering::Relaxed))
    }
}

/// A cheap, clonable handle to an optional [`TraceBuffer`].
///
/// `Tracer::default()` / [`Tracer::disabled`] carry no sink: every method
/// is a branch-and-return no-op. [`Tracer::enabled`] allocates a fresh
/// shared buffer; clones share it.
///
/// Callers on hot paths should guard argument construction with
/// [`Tracer::is_enabled`] so the disabled path does not even build the
/// argument vector.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<TraceBuffer>>,
}

impl Tracer {
    /// A tracer with no sink attached — every call is a no-op.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A tracer recording into a fresh shared [`TraceBuffer`].
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(TraceBuffer::new())),
        }
    }

    /// True when a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached buffer, if any.
    pub fn buffer(&self) -> Option<&TraceBuffer> {
        self.sink.as_deref()
    }

    /// Record a complete span: `[ts_us, ts_us + dur_us]` in simulated time.
    pub fn span(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(sink) = &self.sink {
            sink.record(Phase::Span, cat, name.into(), ts_us, dur_us, args);
            sink.set_clock_us(ts_us + dur_us);
        }
    }

    /// Record an instant event at an explicit simulated timestamp.
    pub fn instant(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        ts_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(sink) = &self.sink {
            sink.record(Phase::Instant, cat, name.into(), ts_us, 0.0, args);
            sink.set_clock_us(ts_us);
        }
    }

    /// Record an instant event stamped with the current clock gauge —
    /// for emitters (e.g. the tuner's search loop) that do not advance
    /// simulated time themselves.
    pub fn instant_now(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(sink) = &self.sink {
            let ts = sink.clock_us();
            sink.record(Phase::Instant, cat, name.into(), ts, 0.0, args);
        }
    }

    /// Add `delta` to a named monotonic counter. No-op when disabled.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_add(name, delta);
        }
    }

    /// Advance the simulated-clock gauge (monotonic). No-op when disabled.
    pub fn set_clock_us(&self, ts_us: f64) {
        if let Some(sink) = &self.sink {
            sink.set_clock_us(ts_us);
        }
    }

    /// Current simulated-clock gauge in microseconds (0 when disabled).
    pub fn clock_us(&self) -> f64 {
        self.sink.as_ref().map_or(0.0, |s| s.clock_us())
    }

    /// Snapshot of recorded events (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.sink.as_ref().map_or_else(Vec::new, |s| s.events())
    }

    /// Number of recorded events (0 when disabled).
    pub fn event_count(&self) -> usize {
        self.sink.as_ref().map_or(0, |s| s.len())
    }

    /// Snapshot of counters (empty when disabled).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.sink.as_ref().map_or_else(Vec::new, |s| s.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::arg;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span("gpu", "k", 0.0, 1.0, vec![arg("grid", 1usize)]);
        t.instant("engine", "e", 2.0, Vec::new());
        t.instant_now("tuner", "eval", Vec::new());
        t.counter_add("launches", 1);
        t.set_clock_us(99.0);
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert!(t.events().is_empty());
        assert!(t.counters().is_empty());
        assert_eq!(t.clock_us(), 0.0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t.span("gpu", "a", 0.0, 5.0, Vec::new());
        t2.instant("engine", "b", 5.0, Vec::new());
        assert_eq!(t.event_count(), 2);
        let evs = t2.events();
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].name, "b");
    }

    #[test]
    fn clock_is_monotonic_and_advanced_by_spans() {
        let t = Tracer::enabled();
        t.span("gpu", "a", 10.0, 5.0, Vec::new());
        assert_eq!(t.clock_us(), 15.0);
        t.set_clock_us(3.0); // stale — ignored
        assert_eq!(t.clock_us(), 15.0);
        t.instant_now("tuner", "eval", Vec::new());
        assert_eq!(t.events()[1].ts_us, 15.0);
    }

    #[test]
    fn counters_accumulate() {
        let t = Tracer::enabled();
        t.counter_add("launches", 1);
        t.counter_add("launches", 2);
        t.counter_add("h2d_bytes", 64);
        assert_eq!(t.counters(), vec![("h2d_bytes", 64), ("launches", 3)]);
    }
}
