//! Exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and line-delimited JSON (JSONL).
//!
//! The JSON is written by hand — the crate is zero-dependency — with full
//! string escaping and shortest-roundtrip float formatting (Rust's `{}`
//! for `f64`), so the output parses back exactly. Non-finite floats
//! become JSON `null`.

use std::fmt::Write as _;

use crate::event::{ArgValue, Phase, TraceEvent};

/// The Perfetto "thread" row a category renders on. Separate rows keep
/// engine spans, per-launch GPU spans, tuner telemetry, and sanitizer
/// hazards visually stacked instead of interleaved.
pub fn tid_for_cat(cat: &str) -> u32 {
    match cat {
        "engine" => 0,
        "gpu" => 1,
        "tuner" => 2,
        "sanitizer" => 3,
        _ => 4,
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) => write_f64(out, *x),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(s) => {
            out.push('"');
            escape_json_into(out, s);
            out.push('"');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(out, k);
        out.push_str("\":");
        write_value(out, v);
    }
    out.push('}');
}

fn write_event_fields(out: &mut String, ev: &TraceEvent) {
    out.push_str("\"name\":\"");
    escape_json_into(out, &ev.name);
    out.push_str("\",\"cat\":\"");
    escape_json_into(out, ev.cat);
    out.push_str("\",\"ph\":\"");
    out.push_str(match ev.phase {
        Phase::Span => "X",
        Phase::Instant => "i",
    });
    out.push_str("\",\"ts\":");
    write_f64(out, ev.ts_us);
    if ev.phase == Phase::Span {
        out.push_str(",\"dur\":");
        write_f64(out, ev.dur_us);
    }
    if ev.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":0,\"tid\":{}", tid_for_cat(ev.cat));
    out.push_str(",\"args\":");
    let mut args = Vec::with_capacity(ev.args.len() + 1);
    args.push(("seq", ArgValue::U64(ev.seq)));
    args.extend(ev.args.iter().cloned());
    write_args(out, &args);
}

/// Render a full Chrome trace-event JSON document:
/// `{"displayTimeUnit":"ms","traceEvents":[...]}`.
///
/// Besides one `"X"`/`"i"` event per [`TraceEvent`], the document carries
/// `"M"` thread-name metadata (one named row per category) and one final
/// `"C"` counter event per accumulated counter, stamped at the end of the
/// trace.
pub fn chrome_trace(events: &[TraceEvent], counters: &[(&'static str, u64)]) -> String {
    let mut out = String::with_capacity(256 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    for (tid, label) in [
        (0u32, "engine"),
        (1, "gpu-sim launches"),
        (2, "autotune"),
        (3, "sanitizer"),
    ] {
        push_sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{label}\"}}}}"
        );
    }

    for ev in events {
        push_sep(&mut out);
        out.push('{');
        write_event_fields(&mut out, ev);
        out.push('}');
    }

    let end_us = events
        .iter()
        .map(|e| e.ts_us + e.dur_us)
        .fold(0.0f64, f64::max);
    for (name, value) in counters {
        push_sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_json_into(&mut out, name);
        out.push_str("\",\"ph\":\"C\",\"ts\":");
        write_f64(&mut out, end_us);
        let _ = write!(out, ",\"pid\":0,\"tid\":1,\"args\":{{\"value\":{value}}}}}");
    }

    out.push_str("]}");
    out
}

/// Render events as JSONL: one self-contained JSON object per line, in
/// record order — convenient for `jq`, `grep`, and streaming diffing.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160);
    for ev in events {
        out.push('{');
        write_event_fields(&mut out, ev);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::arg;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                ts_us: 0.0,
                dur_us: 12.5,
                phase: Phase::Span,
                cat: "gpu",
                name: "stage2[v=\"q\"]".to_string(),
                args: vec![arg("grid", 8usize), arg("exec_s", 1.25e-5f64)],
            },
            TraceEvent {
                seq: 1,
                ts_us: 12.5,
                dur_us: 0.0,
                phase: Phase::Instant,
                cat: "tuner",
                name: "eval".to_string(),
                args: vec![arg("runnable", false), arg("axis", "onchip")],
            },
        ]
    }

    #[test]
    fn chrome_trace_shape_and_escaping() {
        let doc = chrome_trace(&sample(), &[("launches", 3)]);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        // Name with a quote is escaped.
        assert!(doc.contains("stage2[v=\\\"q\\\"]"));
        // Span has ts+dur, instant has scope marker, counter rides along.
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":12.5"));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"value\":3"));
        // Thread-name metadata present.
        assert!(doc.contains("\"thread_name\""));
        // Balanced braces/brackets (cheap structural sanity check).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let lines = jsonl(&sample());
        let rows: Vec<&str> = lines.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with('{') && rows[0].ends_with('}'));
        assert!(rows[1].contains("\"runnable\":false"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\nb\u{1}c");
        assert_eq!(out, "a\\nb\\u0001c");
    }
}
