//! The execution engine: *where* a batch is solved, behind one interface.
//!
//! Three pieces compose here:
//!
//! * [`Backend`] — the trait both execution targets implement. The
//!   [`GpuBackend`] runs the multi-stage plan on the simulated device; the
//!   [`CpuBackend`] runs the host reference solvers of
//!   `trisolve_tridiag::cpu_batch` under the calibrated CPU timing model.
//!   Callers that dispatch between engines (`trisolve-autotune`) program
//!   against the trait, not against either implementation.
//! * [`SolveSession`] — a reusable per-shape context. Repeated solves of
//!   the same workload shape (the dynamic tuner's micro-benchmark loop,
//!   Criterion benches) skip plan construction, padded-staging allocation
//!   and device (re)allocation: the session owns the padded host staging
//!   plus persistent device buffers behind RAII
//!   [`DeviceBuffer`](trisolve_gpu_sim::DeviceBuffer) guards, and caches
//!   built [`SolvePlan`]s per parameter point. Dropping the session frees
//!   everything — including on kernel-error paths, where no manual
//!   `gpu.free()` bookkeeping exists to get wrong.
//! * [`StageTimeline`] — a serialisable per-stage profile aggregated from
//!   the launch-by-launch [`KernelStats`], replacing ad-hoc accounting in
//!   the reporting binaries.

use crate::kernels::{
    base_solve, deinterleave_solution, elem_bytes, interleave_batch, ithomas_solve, stage1_step,
    stage2_split, CoeffBuffers, GpuScalar,
};
use crate::params::SolverParams;
use crate::plan::{SolvePlan, StageOp};
use crate::solver::SolveOutcome;
use crate::{CoreError, Result};
use serde::Serialize;
use std::collections::HashMap;
use trisolve_gpu_sim::{
    CpuSpec, DeviceBuffer, DeviceSpec, Gpu, KernelStats, QueryableProps, ValidationReport,
};
use trisolve_obs::{arg, Phase, TraceEvent};
use trisolve_tridiag::cpu_batch::{solve_batch_sequential, BatchAlgorithm};
use trisolve_tridiag::workloads::WorkloadShape;
use trisolve_tridiag::{Scalar, SystemBatch};

// ---------------------------------------------------------------------------
// StageTimeline
// ---------------------------------------------------------------------------

/// One kernel family's aggregate cost within a [`StageTimeline`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageTimelineEntry {
    /// Stage name: the kernel label prefix before the first `[` (`stage1`,
    /// `stage2`, `base`, …).
    pub stage: String,
    /// Number of kernel launches attributed to this stage.
    pub launches: usize,
    /// Total simulated milliseconds (execution + launch overhead).
    pub sim_time_ms: f64,
    /// Simulated execution milliseconds (overhead excluded).
    pub exec_time_ms: f64,
    /// Simulated launch-overhead milliseconds.
    pub overhead_ms: f64,
    /// Useful global-memory traffic in MiB (reads + writes).
    pub gmem_payload_mib: f64,
    /// Launch-averaged resident warps per SM (the occupancy the stage
    /// actually achieved).
    pub mean_warps_per_sm: f64,
}

/// A per-stage breakdown of a solve, aggregated from per-launch
/// [`KernelStats`] in execution order. Serialisable, so reporting binaries
/// can emit it as JSON next to the figures they reproduce.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageTimeline {
    /// Total simulated milliseconds across every launch.
    pub total_ms: f64,
    /// Total number of kernel launches.
    pub launches: usize,
    /// Per-stage aggregates, ordered by first launch.
    pub stages: Vec<StageTimelineEntry>,
}

impl StageTimeline {
    /// Aggregate a launch sequence by kernel family (label prefix before
    /// the first `[`), preserving first-launch order.
    pub fn from_stats(stats: &[KernelStats]) -> Self {
        let mut stages: Vec<StageTimelineEntry> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut total_ms = 0.0;
        for s in stats {
            let family = s.label.split('[').next().unwrap_or(&s.label).to_string();
            let i = *index.entry(family.clone()).or_insert_with(|| {
                stages.push(StageTimelineEntry {
                    stage: family,
                    launches: 0,
                    sim_time_ms: 0.0,
                    exec_time_ms: 0.0,
                    overhead_ms: 0.0,
                    gmem_payload_mib: 0.0,
                    mean_warps_per_sm: 0.0,
                });
                stages.len() - 1
            });
            let e = &mut stages[i];
            e.launches += 1;
            e.sim_time_ms += s.total_time_ms();
            e.exec_time_ms += s.exec_time_s * 1e3;
            e.overhead_ms += s.overhead_s * 1e3;
            e.gmem_payload_mib += s.totals.gmem_payload_bytes() / (1024.0 * 1024.0);
            // Accumulate; averaged below.
            e.mean_warps_per_sm += s.residency.warps_per_sm as f64;
            total_ms += s.total_time_ms();
        }
        for e in &mut stages {
            e.mean_warps_per_sm /= e.launches as f64;
        }
        Self {
            total_ms,
            launches: stats.len(),
            stages,
        }
    }

    /// The timeline of a completed solve.
    pub fn from_outcome<T: Scalar>(outcome: &SolveOutcome<T>) -> Self {
        Self::from_stats(&outcome.kernel_stats)
    }

    /// Rebuild the timeline from a recorded trace: per-launch `"gpu"` spans
    /// carry exactly the fields [`StageTimeline::from_stats`] aggregates
    /// (`exec_s`, `overhead_s`, `gmem_payload_bytes`, `warps_per_sm`), so
    /// when tracing is enabled the timeline is a projection of the trace
    /// rather than a parallel bookkeeping path. Over the same launch
    /// sequence the two constructors agree entry-for-entry, bit-for-bit —
    /// asserted by this crate's regression tests.
    pub fn from_trace(events: &[TraceEvent]) -> Self {
        let mut stages: Vec<StageTimelineEntry> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut total_ms = 0.0;
        let mut launches = 0;
        for ev in events {
            if ev.cat != "gpu" || ev.phase != Phase::Span {
                continue;
            }
            launches += 1;
            let family = ev.family().to_string();
            let i = *index.entry(family.clone()).or_insert_with(|| {
                stages.push(StageTimelineEntry {
                    stage: family,
                    launches: 0,
                    sim_time_ms: 0.0,
                    exec_time_ms: 0.0,
                    overhead_ms: 0.0,
                    gmem_payload_mib: 0.0,
                    mean_warps_per_sm: 0.0,
                });
                stages.len() - 1
            });
            let exec_s = ev.arg_f64("exec_s").unwrap_or(0.0);
            let overhead_s = ev.arg_f64("overhead_s").unwrap_or(0.0);
            let sim_ms = (exec_s + overhead_s) * 1e3;
            let e = &mut stages[i];
            e.launches += 1;
            e.sim_time_ms += sim_ms;
            e.exec_time_ms += exec_s * 1e3;
            e.overhead_ms += overhead_s * 1e3;
            e.gmem_payload_mib +=
                ev.arg_f64("gmem_payload_bytes").unwrap_or(0.0) / (1024.0 * 1024.0);
            e.mean_warps_per_sm += ev.arg_f64("warps_per_sm").unwrap_or(0.0);
            total_ms += sim_ms;
        }
        for e in &mut stages {
            e.mean_warps_per_sm /= e.launches as f64;
        }
        Self {
            total_ms,
            launches,
            stages,
        }
    }

    /// Fixed-width table rendering, one row per stage.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>8} {:>12} {:>12} {:>14} {:>10}\n",
            "stage", "launches", "time (ms)", "exec (ms)", "payload (MiB)", "warps/SM"
        ));
        for e in &self.stages {
            out.push_str(&format!(
                "{:<10} {:>8} {:>12.6} {:>12.6} {:>14.3} {:>10.1}\n",
                e.stage,
                e.launches,
                e.sim_time_ms,
                e.exec_time_ms,
                e.gmem_payload_mib,
                e.mean_warps_per_sm
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>8} {:>12.6}\n",
            "total", self.launches, self.total_ms
        ));
        out
    }
}

// ---------------------------------------------------------------------------
// SolveSession (GPU)
// ---------------------------------------------------------------------------

/// A reusable GPU solve context for one workload shape.
///
/// Owns the padded host staging buffer and nine persistent device buffers
/// (4 source coefficient arrays, 4 double-buffer destinations, 1 solution),
/// all behind RAII guards, plus a cache of built [`SolvePlan`]s keyed by
/// [`SolverParams`]. Repeated [`SolveSession::solve`] /
/// [`SolveSession::measure`] calls over the same shape — the dynamic
/// tuner's hot loop — re-upload coefficients (the in-place double-buffered
/// stages consume them) but skip padding-buffer allocation, device
/// allocation and plan construction.
///
/// A session is tied to the [`Gpu`] it was prepared on; using it with a
/// different device is a logic error and surfaces as an invalid-buffer
/// device error.
#[derive(Debug)]
pub struct SolveSession<T: GpuScalar> {
    shape: WorkloadShape,
    padded_size: usize,
    device: QueryableProps,
    plans: HashMap<SolverParams, SolvePlan>,
    /// Static launch-validation reports, one per parameter point ever
    /// requested (clean reports included, so callers can surface warnings).
    validation: HashMap<SolverParams, ValidationReport>,
    /// Host-side padding scratch (empty while `padded_size == system_size`,
    /// where uploads borrow straight from the batch).
    staging: Vec<T>,
    src: [DeviceBuffer; 4],
    dst: [DeviceBuffer; 4],
    x: DeviceBuffer,
}

impl<T: GpuScalar> SolveSession<T> {
    /// Allocate a session's device buffers for `shape` on `gpu`.
    pub fn new(gpu: &mut Gpu<T>, shape: WorkloadShape) -> Result<Self> {
        if shape.num_systems == 0 || shape.system_size == 0 {
            return Err(CoreError::BadParams {
                detail: "workload must have at least one system and one equation".into(),
            });
        }
        let padded_size = shape.system_size.next_power_of_two();
        let total = shape.num_systems * padded_size;
        let alloc4 = |gpu: &mut Gpu<T>| -> Result<[DeviceBuffer; 4]> {
            Ok([
                gpu.alloc_guarded(total)?,
                gpu.alloc_guarded(total)?,
                gpu.alloc_guarded(total)?,
                gpu.alloc_guarded(total)?,
            ])
        };
        let src = alloc4(gpu)?;
        let dst = alloc4(gpu)?;
        let x = gpu.alloc_guarded(total)?;
        if gpu.tracer().is_enabled() {
            gpu.tracer().instant_now(
                "engine",
                "session",
                vec![
                    arg("systems", shape.num_systems),
                    arg("size", shape.system_size),
                    arg("padded_size", padded_size),
                ],
            );
        }
        Ok(Self {
            shape,
            padded_size,
            device: gpu.spec().queryable().clone(),
            plans: HashMap::new(),
            validation: HashMap::new(),
            staging: Vec::new(),
            src,
            dst,
            x,
        })
    }

    /// The workload shape this session was prepared for.
    pub fn shape(&self) -> WorkloadShape {
        self.shape
    }

    /// The padded (power-of-two) per-system size.
    pub fn padded_size(&self) -> usize {
        self.padded_size
    }

    /// Number of distinct parameter points with a cached plan.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Queryable properties of the device this session allocated on —
    /// the same limits `plan_for` validates against, so external
    /// analyzers (e.g. `trisolve-analyze`) can reproduce its verdicts.
    pub fn device(&self) -> &QueryableProps {
        &self.device
    }

    /// The cached plan for `params`, building (and statically validating)
    /// on first use. A plan with launch-validation *errors* — a launch the
    /// device would reject — is refused here, before any kernel runs; the
    /// full report stays readable via [`SolveSession::validation_for`].
    pub fn plan_for(&mut self, params: &SolverParams) -> Result<&SolvePlan> {
        match self.plans.entry(*params) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(v) => {
                let plan = SolvePlan::build(self.shape, params, &self.device, elem_bytes::<T>())?;
                let report = plan.validate(&self.device, elem_bytes::<T>());
                let rejected = report.has_errors();
                let report_for_err = rejected.then(|| report.clone());
                self.validation.insert(*params, report);
                if let Some(report) = report_for_err {
                    return Err(CoreError::PlanRejected { report });
                }
                Ok(v.insert(plan))
            }
        }
    }

    /// The static launch-validation report recorded for `params`, if a plan
    /// was ever requested for it (clean reports included, so callers can
    /// inspect warnings such as low occupancy).
    pub fn validation_for(&self, params: &SolverParams) -> Option<&ValidationReport> {
        self.validation.get(params)
    }

    fn check_batch(&self, batch: &SystemBatch<T>) -> Result<()> {
        if batch.num_systems != self.shape.num_systems
            || batch.system_size != self.shape.system_size
        {
            return Err(CoreError::BadParams {
                detail: format!(
                    "session prepared for {}x{} systems, got {}x{}",
                    self.shape.num_systems,
                    self.shape.system_size,
                    batch.num_systems,
                    batch.system_size
                ),
            });
        }
        Ok(())
    }

    /// Upload the batch's four coefficient arrays into the session's source
    /// buffers, padding each system to the power-of-two size with decoupled
    /// identity rows (b = 1, everything else 0): they solve to zero and PCR
    /// leaves them decoupled, so the original solutions are unaffected.
    ///
    /// When no padding is needed the upload borrows straight from the batch
    /// — no host-side copy at all.
    fn upload_coefficients(&mut self, gpu: &mut Gpu<T>, batch: &SystemBatch<T>) -> Result<()> {
        let m = self.shape.num_systems;
        let n = self.shape.system_size;
        let np = self.padded_size;
        let arrays: [(&[T], bool); 4] = [
            (&batch.a, false),
            (&batch.b, true),
            (&batch.c, false),
            (&batch.d, false),
        ];
        if np == n {
            for (i, (data, _)) in arrays.iter().enumerate() {
                gpu.upload(self.src[i].id(), data)?;
            }
            return Ok(());
        }
        self.staging.resize(m * np, T::ZERO);
        for (i, (data, pad_with_one)) in arrays.iter().enumerate() {
            let fill = if *pad_with_one { T::ONE } else { T::ZERO };
            for s in 0..m {
                self.staging[s * np..s * np + n].copy_from_slice(&data[s * n..(s + 1) * n]);
                for v in &mut self.staging[s * np + n..(s + 1) * np] {
                    *v = fill;
                }
            }
            gpu.upload(self.src[i].id(), &self.staging)?;
        }
        Ok(())
    }

    /// Run the plan's stage sequence. Returns the simulated time and the
    /// per-launch stats of this solve only.
    fn execute(&self, gpu: &mut Gpu<T>, plan: &SolvePlan) -> Result<(f64, Vec<KernelStats>)> {
        let m = self.shape.num_systems;
        let np = self.padded_size;
        let mut cur: CoeffBuffers = [
            self.src[0].id(),
            self.src[1].id(),
            self.src[2].id(),
            self.src[3].id(),
        ];
        let mut alt: CoeffBuffers = [
            self.dst[0].id(),
            self.dst[1].id(),
            self.dst[2].id(),
            self.dst[3].id(),
        ];
        let x = self.x.id();

        let tracer = gpu.tracer().clone();
        let launches_before = gpu.timeline().len();
        for op in &plan.ops {
            let stage_begin_s = gpu.elapsed_s();
            let stage_launches = gpu.timeline().len();
            match *op {
                StageOp::Stage1Split { stride, .. } => {
                    stage1_step(gpu, cur, alt, m, np, stride)?;
                    std::mem::swap(&mut cur, &mut alt);
                }
                StageOp::Stage2Split {
                    stride_in, steps, ..
                } => {
                    stage2_split(gpu, cur, alt, m, np, stride_in, steps)?;
                    std::mem::swap(&mut cur, &mut alt);
                }
                StageOp::BaseSolve {
                    chain_len,
                    stride,
                    thomas_chains,
                    variant,
                    ..
                } => {
                    base_solve(
                        gpu,
                        cur,
                        x,
                        m,
                        np,
                        chain_len,
                        stride,
                        thomas_chains,
                        variant,
                    )?;
                }
                StageOp::InterleavePack { systems, size } => {
                    interleave_batch(gpu, cur, alt, systems, size)?;
                    std::mem::swap(&mut cur, &mut alt);
                }
                StageOp::InterleavedThomas { systems, size } => {
                    // The interleaved solution lands in the *other* bundle's
                    // first buffer (free scratch after the pack's swap), so
                    // the session needs no extra allocation.
                    ithomas_solve(gpu, cur, alt[0], systems, size)?;
                }
                StageOp::Deinterleave { systems, size } => {
                    deinterleave_solution(gpu, alt[0], x, systems, size)?;
                }
            }
            if tracer.is_enabled() {
                let stage = match *op {
                    StageOp::Stage1Split { .. } => "stage1",
                    StageOp::Stage2Split { .. } => "stage2",
                    StageOp::BaseSolve { .. } => "base",
                    StageOp::InterleavePack { .. } => "interleave",
                    StageOp::InterleavedThomas { .. } => "ithomas",
                    StageOp::Deinterleave { .. } => "deinterleave",
                };
                tracer.span(
                    "engine",
                    stage,
                    stage_begin_s * 1e6,
                    (gpu.elapsed_s() - stage_begin_s) * 1e6,
                    vec![arg("launches", gpu.timeline().len() - stage_launches)],
                );
            }
        }
        let kernel_stats = gpu.timeline()[launches_before..].to_vec();
        // Left-fold over the launches in order: exactly what a fresh
        // device clock accumulates, and — unlike an `elapsed_s()` delta —
        // independent of whatever simulated time preceded this solve. The
        // same parameter point therefore times identically on the first
        // and the thousandth reuse of a session.
        let sim_time_s = kernel_stats.iter().map(KernelStats::total_time_s).sum();
        Ok((sim_time_s, kernel_stats))
    }

    /// Solve `batch` with `params`, reusing the session's buffers and plan
    /// cache. Identical results (bit-for-bit) and simulated timings to a
    /// one-shot [`crate::solver::solve_batch_on_gpu`] call.
    pub fn solve(
        &mut self,
        gpu: &mut Gpu<T>,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<SolveOutcome<T>> {
        self.check_batch(batch)?;
        let plan = self.plan_for(params)?.clone();
        let solve_begin_s = gpu.elapsed_s();
        self.upload_coefficients(gpu, batch)?;
        let (sim_time_s, kernel_stats) = self.execute(gpu, &plan)?;
        self.trace_solve_span(gpu, "solve", params, solve_begin_s, kernel_stats.len());

        let m = self.shape.num_systems;
        let n = self.shape.system_size;
        let np = self.padded_size;
        let x_padded = gpu.download(self.x.id())?;
        let mut x_out = Vec::with_capacity(m * n);
        for s in 0..m {
            x_out.extend_from_slice(&x_padded[s * np..s * np + n]);
        }
        Ok(SolveOutcome {
            x: x_out,
            sim_time_s,
            kernel_stats,
            plan,
        })
    }

    /// Solve and report only the simulated time — the tuner's measurement
    /// primitive. Skips the solution download and unpadding (which cost no
    /// simulated time, so the reading is identical to
    /// [`SolveSession::solve`]'s `sim_time_s`).
    pub fn measure(
        &mut self,
        gpu: &mut Gpu<T>,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<f64> {
        self.check_batch(batch)?;
        let plan = self.plan_for(params)?.clone();
        let solve_begin_s = gpu.elapsed_s();
        self.upload_coefficients(gpu, batch)?;
        let (sim_time_s, kernel_stats) = self.execute(gpu, &plan)?;
        self.trace_solve_span(gpu, "measure", params, solve_begin_s, kernel_stats.len());
        Ok(sim_time_s)
    }

    /// Emit the outer solve/measure span covering upload through the last
    /// stage. No-op when the device has no tracer attached.
    fn trace_solve_span(
        &self,
        gpu: &Gpu<T>,
        name: &'static str,
        params: &SolverParams,
        begin_s: f64,
        launches: usize,
    ) {
        let tracer = gpu.tracer();
        if !tracer.is_enabled() {
            return;
        }
        tracer.span(
            "engine",
            name,
            begin_s * 1e6,
            (gpu.elapsed_s() - begin_s) * 1e6,
            vec![
                arg("systems", self.shape.num_systems),
                arg("size", self.shape.system_size),
                arg("padded_size", self.padded_size),
                arg("stage1_target", params.stage1_target_systems),
                arg("onchip_size", params.onchip_size),
                arg("thomas_switch", params.thomas_switch),
                arg("variant", format!("{:?}", params.variant)),
                arg("launches", launches),
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// Backend trait and implementations
// ---------------------------------------------------------------------------

/// An execution target for batched tridiagonal solves.
///
/// Both engines — the simulated-GPU multi-stage solver and the host
/// reference solver — expose the same three-step protocol: `prepare` a
/// reusable session for a workload shape (validating the parameter point),
/// then `solve` or `measure` through it as many times as needed.
pub trait Backend<T: GpuScalar> {
    /// The reusable per-shape context this backend hands out.
    type Session;

    /// Short engine name, for reports.
    fn name(&self) -> &'static str;

    /// Build a session for `shape`, validating `params` eagerly (the plan
    /// for `params` is built and cached).
    fn prepare(&mut self, shape: WorkloadShape, params: &SolverParams) -> Result<Self::Session>;

    /// Solve a batch through a prepared session.
    fn solve(
        &mut self,
        session: &mut Self::Session,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<SolveOutcome<T>>;

    /// Report the simulated time of solving `batch` through `session`.
    fn measure(
        &mut self,
        session: &mut Self::Session,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<f64>;
}

/// The simulated-GPU engine: multi-stage plan execution on a borrowed
/// device.
#[derive(Debug)]
pub struct GpuBackend<'g, T: GpuScalar> {
    gpu: &'g mut Gpu<T>,
}

impl<'g, T: GpuScalar> GpuBackend<'g, T> {
    /// Wrap a device.
    pub fn new(gpu: &'g mut Gpu<T>) -> Self {
        Self { gpu }
    }

    /// The underlying device (e.g. to inspect the timeline after solves).
    pub fn gpu(&mut self) -> &mut Gpu<T> {
        self.gpu
    }
}

impl<T: GpuScalar> Backend<T> for GpuBackend<'_, T> {
    type Session = SolveSession<T>;

    fn name(&self) -> &'static str {
        "gpu"
    }

    fn prepare(&mut self, shape: WorkloadShape, params: &SolverParams) -> Result<Self::Session> {
        let mut session = SolveSession::new(self.gpu, shape)?;
        session.plan_for(params)?;
        Ok(session)
    }

    fn solve(
        &mut self,
        session: &mut Self::Session,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<SolveOutcome<T>> {
        session.solve(self.gpu, batch, params)
    }

    fn measure(
        &mut self,
        session: &mut Self::Session,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<f64> {
        session.measure(self.gpu, batch, params)
    }
}

/// A [`CpuBackend`] session: the workload shape plus the record-keeping
/// plans (what the GPU *would* have run, so engine-agnostic callers can
/// still inspect `outcome.plan`).
#[derive(Debug)]
pub struct CpuSession {
    shape: WorkloadShape,
    plans: HashMap<SolverParams, SolvePlan>,
}

impl CpuSession {
    /// The workload shape this session was prepared for.
    pub fn shape(&self) -> WorkloadShape {
        self.shape
    }
}

/// The host engine: batched reference solves (sequential LU by default, the
/// MKL analogue) timed by the calibrated [`CpuSpec`] model.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    cpu: CpuSpec,
    algorithm: BatchAlgorithm,
    /// Reference device the record-keeping plans are built against.
    device: QueryableProps,
}

impl CpuBackend {
    /// A CPU engine with the given timing model, solving with sequential LU
    /// (partial pivoting — the robust path the paper compares against).
    /// Record-keeping plans are built against the paper's GTX 470 unless
    /// overridden with [`CpuBackend::with_reference_device`].
    pub fn new(cpu: CpuSpec) -> Self {
        Self {
            cpu,
            algorithm: BatchAlgorithm::Lu,
            device: DeviceSpec::gtx_470().queryable().clone(),
        }
    }

    /// Build the record-keeping plans against this device instead (useful
    /// when dispatching against a specific GPU, so `outcome.plan` records
    /// what *that* device would have run).
    pub fn with_reference_device(mut self, device: QueryableProps) -> Self {
        self.device = device;
        self
    }

    /// A session seeded with an already-built plan: no re-validation, and
    /// `outcome.plan` reproduces `plan` exactly. The way to cross-check a
    /// finished GPU outcome whose plan may target a different device.
    pub fn prepare_with_plan(&self, plan: SolvePlan) -> CpuSession {
        let shape = plan.shape;
        let mut plans = HashMap::new();
        plans.insert(plan.params, plan);
        CpuSession { shape, plans }
    }

    /// Override the batch algorithm (e.g. [`BatchAlgorithm::Thomas`]).
    pub fn with_algorithm(mut self, algorithm: BatchAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The CPU timing model in use.
    pub fn cpu_spec(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Modelled seconds for a whole batch (threads chosen automatically).
    fn model_time(&self, shape: WorkloadShape) -> f64 {
        self.cpu
            .time_batch_lu_auto(shape.num_systems, shape.system_size)
            .0
    }
}

impl<T: GpuScalar> Backend<T> for CpuBackend {
    type Session = CpuSession;

    fn name(&self) -> &'static str {
        "cpu"
    }

    fn prepare(&mut self, shape: WorkloadShape, params: &SolverParams) -> Result<Self::Session> {
        let plan = SolvePlan::build(shape, params, &self.device, elem_bytes::<T>())?;
        let mut plans = HashMap::new();
        plans.insert(*params, plan);
        Ok(CpuSession { shape, plans })
    }

    fn solve(
        &mut self,
        session: &mut Self::Session,
        batch: &SystemBatch<T>,
        params: &SolverParams,
    ) -> Result<SolveOutcome<T>> {
        let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
        if shape != session.shape {
            return Err(CoreError::BadParams {
                detail: format!(
                    "session prepared for {}x{} systems, got {}x{}",
                    session.shape.num_systems,
                    session.shape.system_size,
                    shape.num_systems,
                    shape.system_size
                ),
            });
        }
        let plan = match session.plans.entry(*params) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(SolvePlan::build(
                shape,
                params,
                &self.device,
                elem_bytes::<T>(),
            )?),
        }
        .clone();
        let x = solve_batch_sequential(batch, self.algorithm)?;
        Ok(SolveOutcome {
            x,
            sim_time_s: self.model_time(shape),
            kernel_stats: Vec::new(),
            plan,
        })
    }

    fn measure(
        &mut self,
        session: &mut Self::Session,
        _batch: &SystemBatch<T>,
        _params: &SolverParams,
    ) -> Result<f64> {
        // The CPU side's timing is an analytic model: no need to actually
        // factorise to read the clock.
        Ok(self.model_time(session.shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BaseVariant;
    use crate::solver::solve_batch_on_gpu;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::random_dominant;

    fn params(p1: usize, s3: usize, t4: usize) -> SolverParams {
        SolverParams {
            stage1_target_systems: p1,
            onchip_size: s3,
            thomas_switch: t4,
            variant: BaseVariant::Strided,
        }
    }

    #[test]
    fn stage_timeline_from_trace_agrees_with_from_outcome() {
        // A fig5-style batch (many small systems: stage2 + base) and a
        // full-pipeline workload (stage1 + stage2 + base).
        for shape in [WorkloadShape::new(1024, 1024), WorkloadShape::new(4, 8192)] {
            let p = params(16, 512, 64);
            let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
            let tracer = trisolve_obs::Tracer::enabled();
            gpu.set_tracer(tracer.clone());
            let batch = random_dominant::<f32>(shape, 7).unwrap();
            let mut session = SolveSession::new(&mut gpu, shape).unwrap();
            let outcome = session.solve(&mut gpu, &batch, &p).unwrap();

            let from_outcome = StageTimeline::from_outcome(&outcome);
            let from_trace = StageTimeline::from_trace(&tracer.events());
            assert_eq!(from_outcome.launches, from_trace.launches);
            assert_eq!(
                from_outcome.total_ms.to_bits(),
                from_trace.total_ms.to_bits()
            );
            // Entry-for-entry: same stages, in the same first-launch order,
            // with identical aggregates.
            assert_eq!(from_outcome.stages, from_trace.stages);
        }
    }

    #[test]
    fn engine_spans_cover_every_stage() {
        let shape = WorkloadShape::new(4, 8192);
        let p = params(16, 512, 64);
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let tracer = trisolve_obs::Tracer::enabled();
        gpu.set_tracer(tracer.clone());
        let batch = random_dominant::<f32>(shape, 11).unwrap();
        let mut session = SolveSession::new(&mut gpu, shape).unwrap();
        session.solve(&mut gpu, &batch, &p).unwrap();

        let events = tracer.events();
        let engine_names: Vec<&str> = events
            .iter()
            .filter(|e| e.cat == "engine")
            .map(|e| e.name.as_str())
            .collect();
        assert!(engine_names.contains(&"session"));
        assert!(engine_names.contains(&"stage1"));
        assert!(engine_names.contains(&"stage2"));
        assert!(engine_names.contains(&"base"));
        let solve = events
            .iter()
            .find(|e| e.cat == "engine" && e.name == "solve")
            .expect("solve span");
        // 2 stage1 doublings (4 → 8 → 16 systems) + stage2 + base.
        assert_eq!(solve.arg_u64("launches"), Some(4));
        assert_eq!(solve.arg_u64("onchip_size"), Some(512));
    }

    #[test]
    fn interleaved_solve_reuses_session_buffers_and_spans_every_op() {
        // The stage-skip path must run inside the session's existing nine
        // buffers (pack into dst, solve into src-scratch — here alt[0] —
        // and deinterleave into x) and emit one engine span per op.
        let shape = WorkloadShape::new(2048, 64);
        let p = SolverParams {
            variant: BaseVariant::Interleaved,
            ..params(16, 256, 32)
        };
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let tracer = trisolve_obs::Tracer::enabled();
        gpu.set_tracer(tracer.clone());
        let batch = random_dominant::<f64>(shape, 13).unwrap();
        let mut session = SolveSession::new(&mut gpu, shape).unwrap();
        let outcome = session.solve(&mut gpu, &batch, &p).unwrap();

        assert_eq!(outcome.plan.num_launches(), 3);
        let res = batch_worst_relative_residual(&batch, &outcome.x).unwrap();
        assert!(res < 1e-10, "residual {res:.3e}");

        let events = tracer.events();
        let engine_names: Vec<&str> = events
            .iter()
            .filter(|e| e.cat == "engine")
            .map(|e| e.name.as_str())
            .collect();
        for stage in ["interleave", "ithomas", "deinterleave"] {
            assert!(engine_names.contains(&stage), "missing span {stage}");
        }

        // Same answer as the staged pipeline (up to solver round-off).
        let staged = session
            .solve(&mut gpu, &batch, &params(16, 256, 32))
            .unwrap();
        for (u, v) in outcome.x.iter().zip(&staged.x) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn session_reuse_is_bit_identical_to_one_shot() {
        let shape = WorkloadShape::new(4, 1500); // padding path: np = 2048
        let p = params(16, 256, 32);
        let mut session_gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let mut session = SolveSession::new(&mut session_gpu, shape).unwrap();
        for seed in [1, 2, 3] {
            let batch = random_dominant::<f64>(shape, seed).unwrap();
            let from_session = session.solve(&mut session_gpu, &batch, &p).unwrap();
            let mut fresh: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            let one_shot = solve_batch_on_gpu(&mut fresh, &batch, &p).unwrap();
            assert_eq!(from_session.x, one_shot.x, "seed {seed}");
            assert_eq!(from_session.sim_time_s, one_shot.sim_time_s);
            assert_eq!(from_session.kernel_stats.len(), one_shot.kernel_stats.len());
        }
    }

    #[test]
    fn session_caches_plans_per_parameter_point() {
        let shape = WorkloadShape::new(8, 1024);
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let mut session = SolveSession::new(&mut gpu, shape).unwrap();
        let batch = random_dominant::<f64>(shape, 9).unwrap();
        let p1 = params(16, 256, 32);
        let p2 = params(16, 512, 64);
        session.solve(&mut gpu, &batch, &p1).unwrap();
        session.solve(&mut gpu, &batch, &p1).unwrap();
        assert_eq!(session.cached_plans(), 1);
        session.measure(&mut gpu, &batch, &p2).unwrap();
        assert_eq!(session.cached_plans(), 2);
    }

    #[test]
    fn session_buffers_free_on_drop() {
        let shape = WorkloadShape::new(4, 512);
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        {
            let _session = SolveSession::<f64>::new(&mut gpu, shape).unwrap();
            // 9 buffers of m*np elements.
            assert_eq!(gpu.allocated_bytes(), 9 * 4 * 512 * 8);
        }
        assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn session_rejects_mismatched_batch() {
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let mut session = SolveSession::new(&mut gpu, WorkloadShape::new(4, 512)).unwrap();
        let batch = random_dominant::<f64>(WorkloadShape::new(2, 512), 1).unwrap();
        let err = session.solve(&mut gpu, &batch, &params(16, 256, 32));
        assert!(matches!(err, Err(CoreError::BadParams { .. })));
    }

    #[test]
    fn gpu_backend_routes_through_sessions() {
        let shape = WorkloadShape::new(8, 1024);
        let p = params(16, 256, 32);
        let batch = random_dominant::<f64>(shape, 4).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let mut backend = GpuBackend::new(&mut gpu);
        assert_eq!(Backend::<f64>::name(&backend), "gpu");
        let mut session = backend.prepare(shape, &p).unwrap();
        let out = backend.solve(&mut session, &batch, &p).unwrap();
        assert!(batch_worst_relative_residual(&batch, &out.x).unwrap() < 1e-9);
        let t = backend.measure(&mut session, &batch, &p).unwrap();
        assert_eq!(t, out.sim_time_s, "deterministic simulation");
    }

    #[test]
    fn cpu_backend_solves_on_host() {
        let shape = WorkloadShape::new(4, 300);
        let p = params(16, 256, 32);
        let batch = random_dominant::<f64>(shape, 11).unwrap();
        let mut backend = CpuBackend::new(CpuSpec::core_i5_dual_3_4ghz());
        let mut session = Backend::<f64>::prepare(&mut backend, shape, &p).unwrap();
        let out = backend.solve(&mut session, &batch, &p).unwrap();
        assert!(batch_worst_relative_residual(&batch, &out.x).unwrap() < 1e-10);
        assert!(out.kernel_stats.is_empty(), "no kernel launches on the CPU");
        assert!(out.sim_time_s > 0.0);
        let t = backend.measure(&mut session, &batch, &p).unwrap();
        assert_eq!(t, out.sim_time_s);
    }

    #[test]
    fn stage_timeline_aggregates_by_stage_in_order() {
        // 2 systems of 8192 with these params: 3 stage-1 launches, 1
        // stage-2 launch, 1 base launch.
        let shape = WorkloadShape::new(2, 8192);
        let p = params(16, 512, 64);
        let batch = random_dominant::<f64>(shape, 3).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let out = solve_batch_on_gpu(&mut gpu, &batch, &p).unwrap();
        let tl = StageTimeline::from_outcome(&out);
        assert_eq!(tl.launches, 5);
        let names: Vec<&str> = tl.stages.iter().map(|e| e.stage.as_str()).collect();
        assert_eq!(names, ["stage1", "stage2", "base"]);
        assert_eq!(tl.stages[0].launches, 3);
        assert_eq!(tl.stages[1].launches, 1);
        assert_eq!(tl.stages[2].launches, 1);
        // The aggregate must preserve the reported simulated time exactly
        // (same sum the solver reports).
        assert!((tl.total_ms - out.sim_time_ms()).abs() < 1e-12);
        let stage_sum: f64 = tl.stages.iter().map(|e| e.sim_time_ms).sum();
        assert!((stage_sum - tl.total_ms).abs() < 1e-12);
        for e in &tl.stages {
            assert!(e.gmem_payload_mib > 0.0);
            assert!(e.mean_warps_per_sm > 0.0);
            assert!((e.exec_time_ms + e.overhead_ms - e.sim_time_ms).abs() < 1e-12);
        }
        assert!(tl.render_table().contains("stage1"));
    }
}
