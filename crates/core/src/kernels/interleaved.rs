//! The interleaved batched-Thomas fast path — the stage-skip alternative to
//! the whole staged CR/PCR pipeline for the many-small-systems regime.
//!
//! The batch is repacked into fully *interleaved* layout (system `i`'s
//! element `j` at `j·batch + i`, coefficient `batch` in the affine map),
//! after which one thread per system runs the serial Thomas algorithm with
//! every global access perfectly coalesced across the warp's systems: thread
//! `i` and thread `i+1` always touch adjacent elements. No shared memory, no
//! block synchronisation, no PCR splitting — the approach of the interleaved
//! batch solvers of Gloster et al. and Carroll et al. (see PAPERS.md), which
//! beats staged PCR outright once the batch is large and the systems small.
//!
//! Three kernels, matching the plan's three stage-skip ops:
//!
//! * [`interleave_batch`] — tiled-transpose repack from system-major to
//!   interleaved layout (both global sides coalesced, like
//!   [`crate::kernels::repack`]);
//! * [`ithomas_solve`] — the single-kernel batched Thomas solve, reading
//!   interleaved coefficients and scattering the interleaved solution;
//! * [`deinterleave_solution`] — tiled-transpose repack of the solution back
//!   to system-major order.
//!
//! Each exports its `LaunchConfig` builder here and its affine access
//! summary in [`crate::kernels::access`], side by side with the five staged
//! families, so `SolvePlan::launch_configs` / `access_summaries` stay zipped
//! 1:1 and the description cannot drift from the execution.

use crate::error::CoreError;
use crate::kernels::base::THOMAS_OPS_PER_EQ;
use crate::kernels::{elem_bytes, CoeffBuffers, GpuScalar};
use crate::params::SPLIT_KERNEL_REGS_PER_THREAD;
use crate::Result;
use std::sync::atomic::{AtomicBool, Ordering};
use trisolve_gpu_sim::{BufferId, Gpu, KernelStats, LaunchConfig, OutMode};
use trisolve_tridiag::system::ChainView;
use trisolve_tridiag::thomas::{self, ChainScratch};

/// Shared-memory accesses per element of the tiled repack transpose (one
/// write into the padded tile, one read out) — same constant family as the
/// chain-repack kernels.
const TRANSPOSE_SMEM_PER_EQ: usize = 2;

/// Registers per thread of the batched-Thomas kernel: the per-system
/// running recurrence needs only a handful of live values (the forward
/// coefficients round-trip through global scratch, not registers).
pub const ITHOMAS_REGS_PER_THREAD: usize = 16;

fn transpose_block_threads(n: usize) -> usize {
    256.min(n.max(32))
}

/// Launch geometry of the interleave (transpose-in) pass (shared between
/// the kernel and the plan validator so the two cannot drift).
pub fn interleave_config(m: usize, n: usize, elem_bytes: usize) -> LaunchConfig {
    LaunchConfig::new(
        format!("interleave[{m}x{n}]"),
        m,
        transpose_block_threads(n),
    )
    .with_regs(SPLIT_KERNEL_REGS_PER_THREAD)
    .with_shared_mem(32 * 33 * elem_bytes) // padded transpose tile
}

/// Launch geometry of the batched-Thomas solve: one thread per system,
/// warp-width blocks, no shared memory at all.
pub fn ithomas_config(m: usize, n: usize, _elem_bytes: usize) -> LaunchConfig {
    let block = 256.min(m.max(32));
    LaunchConfig::new(format!("ithomas[{m}x{n}]"), m.div_ceil(block), block)
        .with_regs(ITHOMAS_REGS_PER_THREAD)
}

/// Launch geometry of the deinterleave (transpose-out) pass.
pub fn deinterleave_config(m: usize, n: usize, elem_bytes: usize) -> LaunchConfig {
    LaunchConfig::new(
        format!("deinterleave[{m}x{n}]"),
        m,
        transpose_block_threads(n),
    )
    .with_regs(SPLIT_KERNEL_REGS_PER_THREAD)
    .with_shared_mem(32 * 33 * elem_bytes)
}

/// Repack the four coefficient arrays from system-major layout (`src`,
/// system `s` contiguous at `s·n`) into fully interleaved layout (`dst`,
/// element `j` of system `s` at `j·m + s`) with a tiled shared-memory
/// transpose: both global sides coalesced, staged through the padded
/// (bank-conflict-free) 32×33 tile.
pub fn interleave_batch<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    dst: CoeffBuffers,
    m: usize,
    n: usize,
) -> Result<KernelStats> {
    let cfg = interleave_config(m, n, elem_bytes::<T>());
    let outputs: Vec<_> = dst.iter().map(|&b| (b, OutMode::Scattered)).collect();
    let stats = gpu.launch(&cfg, &src, &outputs, |ctx, io| {
        let s = ctx.block_id as usize;
        // Tracked copy: logical thread `j` owns element `j` of system `s`.
        // The padded tile's internal staging is not replayed per element
        // (the tile layout is conflict- and race-free by construction).
        for k in 0..4 {
            for j in 0..n {
                let v = io.load(k, s * n + j, j, "interleave::load");
                io.scattered[k].set_at(j * m + s, v, j, "interleave::scatter");
            }
        }
        ctx.gmem_read(4 * n, 1);
        ctx.gmem_write(4 * n, 1);
        ctx.smem(2 * TRANSPOSE_SMEM_PER_EQ * 4 * n);
        ctx.sync();
        ctx.sync();
    })?;
    Ok(stats)
}

/// Solve the whole interleaved batch with one kernel: thread `s` runs the
/// serial Thomas algorithm over system `s`, reading coefficients at
/// `j·m + s` (perfectly coalesced across the warp) and scattering the
/// solution back in the same interleaved layout into `x_interleaved`.
///
/// The forward-elimination coefficients round-trip through global scratch
/// (they do not fit registers for any interesting `n`); the traffic is
/// metered coalesced like every other access of this kernel.
pub fn ithomas_solve<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    x_interleaved: BufferId,
    m: usize,
    n: usize,
) -> Result<KernelStats> {
    let cfg = ithomas_config(m, n, elem_bytes::<T>());
    let block = cfg.block_threads;

    let failed = AtomicBool::new(false);
    let stats = gpu.launch(
        &cfg,
        &src,
        &[(x_interleaved, OutMode::Scattered)],
        |ctx, io| {
            let first = ctx.block_id as usize * block;
            let count = block.min(m.saturating_sub(first));
            if count == 0 {
                return;
            }
            let mut lx = vec![T::ZERO; n];
            let mut scratch = ChainScratch::new();
            for t in 0..count {
                let s = first + t;
                // System `s` as an interleaved chain: element `j` at
                // `j·m + s`.
                let chain = ChainView {
                    offset: s,
                    stride: m,
                    len: n,
                };
                let cur = (
                    chain.gather(io.inputs[0]),
                    chain.gather(io.inputs[1]),
                    chain.gather(io.inputs[2]),
                    chain.gather(io.inputs[3]),
                );
                if ctx.sanitizing() {
                    for k in 0..4 {
                        for j in 0..n {
                            let _ = io.load(k, chain.index(j), t, "ithomas::load");
                        }
                    }
                }
                let local = ChainView {
                    offset: 0,
                    stride: 1,
                    len: n,
                };
                if thomas::solve_thomas_chain(
                    &local,
                    &cur.0,
                    &cur.1,
                    &cur.2,
                    &cur.3,
                    &mut lx,
                    &mut scratch,
                )
                .is_err()
                {
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
                for (j, &v) in lx.iter().enumerate() {
                    if !v.is_finite() {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                    io.scattered[0].set_at(chain.index(j), v, t, "ithomas::store");
                }
            }
            // Coalesced coefficient load, forward-coefficient round trip
            // through global scratch, and the solution store — all stride 1
            // across the warp's adjacent systems.
            ctx.gmem_read(4 * n * count, 1);
            ctx.gmem_write(2 * n * count, 1);
            ctx.gmem_read(2 * n * count, 1);
            ctx.gmem_write(n * count, 1);
            // One serial Thomas sweep pair per system, `count` systems in
            // flight per block: each thread walks `n` dependent steps.
            ctx.serial_phase(n, THOMAS_OPS_PER_EQ, count);
        },
    )?;

    if failed.load(Ordering::Relaxed) {
        return Err(CoreError::NumericalBreakdown {
            kernel: cfg.label.clone(),
        });
    }
    Ok(stats)
}

/// Transpose an interleaved solution vector back to system-major order:
/// element `j` of system `s` moves from `j·m + s` to `s·n + j`, staged
/// through the same padded tile as [`interleave_batch`].
pub fn deinterleave_solution<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    x_interleaved: BufferId,
    x_out: BufferId,
    m: usize,
    n: usize,
) -> Result<KernelStats> {
    let cfg = deinterleave_config(m, n, elem_bytes::<T>());
    let stats = gpu.launch(
        &cfg,
        &[x_interleaved],
        &[(x_out, OutMode::Scattered)],
        |ctx, io| {
            let s = ctx.block_id as usize;
            for j in 0..n {
                let v = io.load(0, j * m + s, j, "deinterleave::load");
                io.scattered[0].set_at(s * n + j, v, j, "deinterleave::scatter");
            }
            ctx.gmem_read(n, 1);
            ctx.gmem_write(n, 1);
            ctx.smem(TRANSPOSE_SMEM_PER_EQ * n);
            ctx.sync();
            ctx.sync();
        },
    )?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::cpu_batch::{solve_batch_sequential, BatchAlgorithm};
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
    use trisolve_tridiag::SystemBatch;

    fn coeffs(gpu: &mut Gpu<f64>, batch: &SystemBatch<f64>) -> CoeffBuffers {
        [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ]
    }

    fn alloc4(gpu: &mut Gpu<f64>, total: usize) -> CoeffBuffers {
        [
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
        ]
    }

    #[test]
    fn interleave_is_a_transpose() {
        let (m, n) = (64usize, 16usize);
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f64>(shape, 5).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = coeffs(&mut gpu, &batch);
        let dst = alloc4(&mut gpu, m * n);
        interleave_batch(&mut gpu, src, dst, m, n).unwrap();
        let out = gpu.download(dst[3]).unwrap();
        for s in 0..m {
            for j in 0..n {
                assert_eq!(out[j * m + s], batch.d[s * n + j], "s={s} j={j}");
            }
        }
    }

    #[test]
    fn full_pipeline_matches_cpu_lu() {
        for (m, n) in [(128usize, 32usize), (100, 48), (1000, 64)] {
            let shape = WorkloadShape::new(m, n);
            let batch = random_dominant::<f64>(shape, 17).unwrap();
            let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            let src = coeffs(&mut gpu, &batch);
            let dst = alloc4(&mut gpu, m * n);
            let xi = gpu.alloc(m * n).unwrap();
            let x = gpu.alloc(m * n).unwrap();
            interleave_batch(&mut gpu, src, dst, m, n).unwrap();
            ithomas_solve(&mut gpu, dst, xi, m, n).unwrap();
            deinterleave_solution(&mut gpu, xi, x, m, n).unwrap();
            let got = gpu.download(x).unwrap();
            let expect = solve_batch_sequential(&batch, BatchAlgorithm::Lu).unwrap();
            let res = batch_worst_relative_residual(&batch, &got).unwrap();
            assert!(res < 1e-10, "m={m} n={n} residual {res:.3e}");
            for (u, v) in got.iter().zip(&expect) {
                assert!((u - v).abs() < 1e-8, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn ithomas_traffic_is_fully_coalesced() {
        let (m, n) = (4096usize, 64usize);
        let batch = random_dominant::<f64>(WorkloadShape::new(m, n), 3).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = coeffs(&mut gpu, &batch);
        let dst = alloc4(&mut gpu, m * n);
        let xi = gpu.alloc(m * n).unwrap();
        interleave_batch(&mut gpu, src, dst, m, n).unwrap();
        let stats = ithomas_solve(&mut gpu, dst, xi, m, n).unwrap();
        assert_eq!(stats.totals.coalescing_efficiency(), 1.0);
        assert_eq!(stats.totals.smem_accesses, 0.0);
        assert_eq!(stats.totals.barriers, 0.0);
    }

    #[test]
    fn ragged_tail_block_solves_every_system() {
        // 300 systems with 256-thread blocks: the second block runs a
        // 44-system ragged tail.
        let (m, n) = (300usize, 32usize);
        let batch = random_dominant::<f64>(WorkloadShape::new(m, n), 9).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let src = coeffs(&mut gpu, &batch);
        let dst = alloc4(&mut gpu, m * n);
        let xi = gpu.alloc(m * n).unwrap();
        let x = gpu.alloc(m * n).unwrap();
        interleave_batch(&mut gpu, src, dst, m, n).unwrap();
        ithomas_solve(&mut gpu, dst, xi, m, n).unwrap();
        deinterleave_solution(&mut gpu, xi, x, m, n).unwrap();
        let got = gpu.download(x).unwrap();
        assert!(batch_worst_relative_residual(&batch, &got).unwrap() < 1e-10);
    }

    #[test]
    fn f32_pipeline_keeps_single_precision_accuracy() {
        let (m, n) = (512usize, 64usize);
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f32>(shape, 7).unwrap();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let src = [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ];
        let dst = [
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
        ];
        let xi = gpu.alloc(m * n).unwrap();
        let x = gpu.alloc(m * n).unwrap();
        interleave_batch(&mut gpu, src, dst, m, n).unwrap();
        ithomas_solve(&mut gpu, dst, xi, m, n).unwrap();
        deinterleave_solution(&mut gpu, xi, x, m, n).unwrap();
        let got = gpu.download(x).unwrap();
        assert!(batch_worst_relative_residual(&batch, &got).unwrap() < 1e-4);
    }

    #[test]
    fn numerical_breakdown_reported_not_propagated_as_nan() {
        // Singular systems (zero diagonal): the solve must error, not emit
        // NaN solutions.
        let (m, n) = (64usize, 16usize);
        let a = vec![0.0f64; m * n];
        let b = vec![0.0f64; m * n];
        let c = vec![0.0f64; m * n];
        let d = vec![1.0f64; m * n];
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&a).unwrap(),
            gpu.alloc_from(&b).unwrap(),
            gpu.alloc_from(&c).unwrap(),
            gpu.alloc_from(&d).unwrap(),
        ];
        let xi = gpu.alloc(m * n).unwrap();
        let err = ithomas_solve(&mut gpu, src, xi, m, n);
        assert!(matches!(err, Err(CoreError::NumericalBreakdown { .. })));
    }

    #[test]
    fn configs_match_kernel_geometry() {
        let cfg = ithomas_config(65536, 64, 4);
        assert_eq!(cfg.block_threads, 256);
        assert_eq!(cfg.grid_blocks, 256);
        assert_eq!(cfg.shared_mem_bytes, 0);
        // Tiny batches still launch warp-width blocks.
        let small = ithomas_config(40, 64, 4);
        assert_eq!(small.block_threads, 40);
        assert_eq!(small.grid_blocks, 1);
        let il = interleave_config(1024, 32, 8);
        assert_eq!(il.grid_blocks, 1024);
        assert_eq!(il.block_threads, 32);
        assert_eq!(il.shared_mem_bytes, 32 * 33 * 8);
        let dl = deinterleave_config(1024, 32, 4);
        assert_eq!(dl.label, "deinterleave[1024x32]");
    }
}
