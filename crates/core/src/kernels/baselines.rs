//! Prior-art on-chip kernels, for the §III-A comparison: pure **PCR**
//! (Zhang et al., Egloff), pure **CR** (Göddeke & Strzodka) and Zhang et
//! al.'s best hybrid, **CR-PCR** — each solving one shared-memory-sized
//! system per block, like the paper's PCR-Thomas base kernel they are
//! compared against.
//!
//! The cost meters encode each algorithm's signature inefficiency:
//!
//! * pure PCR does `O(n log n)` work — every equation active every step;
//! * CR is work-optimal but halves its active threads every level (idle
//!   lanes inside warps once fewer than a warp remain) and needs `2·log n`
//!   barrier-separated steps;
//! * CR-PCR trims CR's inefficient tail by switching to PCR on the reduced
//!   system.

use crate::error::CoreError;
use crate::kernels::{elem_bytes, CoeffBuffers, GpuScalar};
use crate::params::BASE_KERNEL_REGS_PER_THREAD;
use crate::Result;
use std::sync::atomic::{AtomicBool, Ordering};
use trisolve_gpu_sim::{BufferId, Gpu, KernelStats, LaunchConfig, OutMode};
use trisolve_tridiag::system::ChainView;
use trisolve_tridiag::{cr, hybrid, pcr, TridiagonalSystem};

/// Which prior-art on-chip algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineAlgo {
    /// Pure parallel cyclic reduction.
    Pcr,
    /// Pure cyclic reduction.
    Cr,
    /// Zhang et al.'s CR-PCR hybrid: CR until the system is at most
    /// `pcr_threshold` equations, then pure PCR.
    CrPcr {
        /// Reduced-system size at which CR hands over to PCR.
        pcr_threshold: usize,
    },
}

impl BaselineAlgo {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            BaselineAlgo::Pcr => "pcr".into(),
            BaselineAlgo::Cr => "cr".into(),
            BaselineAlgo::CrPcr { pcr_threshold } => format!("cr-pcr[{pcr_threshold}]"),
        }
    }
}

/// Per-equation cost constants shared with the main base kernel.
const PCR_OPS_PER_EQ: usize = 12;
const PCR_SMEM_PER_EQ: usize = 16;
const CR_OPS_PER_EQ: usize = 14;
const CR_SMEM_PER_EQ: usize = 18;

/// Launch geometry of a prior-art baseline kernel (shared between the
/// kernel and validation callers so the two cannot drift).
pub fn baseline_config(
    chains: usize,
    chain_len: usize,
    stride: usize,
    algo: BaselineAlgo,
    elem_bytes: usize,
) -> LaunchConfig {
    LaunchConfig::new(
        format!("baseline[{}@{stride},{}]", chain_len, algo.label()),
        chains,
        chain_len,
    )
    .with_regs(BASE_KERNEL_REGS_PER_THREAD)
    .with_shared_mem(4 * chain_len * elem_bytes)
}

/// Solve every chain of a batch with a prior-art on-chip kernel
/// (one block per chain, same launch geometry as
/// [`crate::kernels::base_solve`]).
#[allow(clippy::too_many_arguments)]
pub fn baseline_solve<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    x: BufferId,
    m: usize,
    n: usize,
    chain_len: usize,
    stride: usize,
    algo: BaselineAlgo,
) -> Result<KernelStats> {
    debug_assert!(chain_len.is_power_of_two());
    debug_assert_eq!(chain_len * stride, n);
    let chains = m * stride;
    let cfg = baseline_config(chains, chain_len, stride, algo, elem_bytes::<T>());

    let word_factor = f64::max(elem_bytes::<T>() as f64 / 4.0, 1.0);
    let failed = AtomicBool::new(false);

    let stats = gpu.launch(&cfg, &src, &[(x, OutMode::Scattered)], |ctx, io| {
        let bid = ctx.block_id as usize;
        let parent = bid / stride;
        let r = bid % stride;
        let chain = ChainView {
            offset: parent * n + r,
            stride,
            len: chain_len,
        };
        let local = TridiagonalSystem::new(
            chain.gather(io.inputs[0]),
            chain.gather(io.inputs[1]),
            chain.gather(io.inputs[2]),
            chain.gather(io.inputs[3]),
        );
        ctx.gmem_read(4 * chain_len, stride);
        if ctx.sanitizing() {
            // Replay the gather through the tracked API so memcheck /
            // initcheck see the kernel's true global read set (values were
            // already read above). The baselines' internal shared-memory
            // choreography differs per algorithm and is not replayed per
            // element; their global read/write sets are what the sanitizer
            // audits here.
            for k in 0..4 {
                for j in 0..chain_len {
                    let _ = io.load(k, chain.index(j), j, "baseline::gather");
                }
            }
        }
        ctx.sync();

        let local = match local {
            Ok(s) => s,
            Err(_) => {
                failed.store(true, Ordering::Relaxed);
                return;
            }
        };

        let warp = ctx.device().queryable().warp_size;
        let solved = match algo {
            BaselineAlgo::Pcr => {
                // log2(n) steps, every equation active every step.
                let steps = pcr::ceil_log2(chain_len);
                for _ in 0..steps {
                    ctx.smem_conflict(PCR_SMEM_PER_EQ * chain_len, word_factor);
                    ctx.ops(PCR_OPS_PER_EQ * chain_len);
                    ctx.sync();
                    ctx.sync();
                }
                pcr::solve_pcr(&local)
            }
            BaselineAlgo::Cr => {
                meter_cr_levels(ctx, chain_len, 1, warp, word_factor);
                cr::solve_cr(&local)
            }
            BaselineAlgo::CrPcr { pcr_threshold } => {
                meter_cr_levels(ctx, chain_len, pcr_threshold, warp, word_factor);
                let reduced = pcr_threshold.min(chain_len);
                let steps = pcr::ceil_log2(reduced.max(1));
                for _ in 0..steps {
                    // The reduced system is small: few active warps, so each
                    // dependent PCR step exposes pipeline latency.
                    ctx.serial_phase(1, PCR_OPS_PER_EQ, reduced);
                    ctx.smem_conflict(PCR_SMEM_PER_EQ * reduced, word_factor);
                    ctx.sync();
                    ctx.sync();
                }
                hybrid::solve_cr_pcr(&local, pcr_threshold)
            }
        };

        match solved {
            Ok(lx) => {
                for (j, v) in lx.iter().enumerate() {
                    if !v.is_finite() {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                    io.scattered[0].set_at(chain.index(j), *v, j, "baseline::store");
                }
                ctx.gmem_write(chain_len, stride);
            }
            Err(_) => failed.store(true, Ordering::Relaxed),
        }
    })?;

    if failed.load(Ordering::Relaxed) {
        return Err(CoreError::NumericalBreakdown {
            kernel: cfg.label.clone(),
        });
    }
    Ok(stats)
}

/// Meter CR's forward-reduction and back-substitution levels down to
/// `threshold` remaining equations: active counts halve per level, but a
/// partially-filled warp still occupies whole-warp issue slots.
fn meter_cr_levels(
    ctx: &mut trisolve_gpu_sim::BlockCtx<'_>,
    n: usize,
    threshold: usize,
    _warp: usize,
    _word_factor: f64,
) {
    let threshold = threshold.max(1);
    // Forward reduction: at each level, size/2 equations are updated,
    // accessing shared memory at a power-of-two stride (bank conflicts!),
    // and each level depends on the previous one (serial-phase latency once
    // too few warps remain).
    let mut size = n;
    let mut stride = 2usize;
    while size > threshold {
        let active = size / 2;
        ctx.serial_phase(1, CR_OPS_PER_EQ, active);
        ctx.smem_strided(CR_SMEM_PER_EQ * active, stride);
        ctx.sync();
        ctx.sync();
        size = active.max(1);
        stride *= 2;
    }
    // Back substitution retraces the levels: recover `back` equations per
    // level on the way up, at shrinking strides.
    let mut back = size;
    while back < n {
        stride /= 2;
        ctx.serial_phase(1, 6, back);
        ctx.smem_strided(8 * back, stride.max(1));
        ctx.sync();
        back *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

    fn run(algo: BaselineAlgo) -> (f64, KernelStats) {
        let shape = WorkloadShape::new(32, 512);
        let batch = random_dominant::<f64>(shape, 3).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ];
        let x = gpu.alloc(shape.total_equations()).unwrap();
        let stats = baseline_solve(&mut gpu, src, x, 32, 512, 512, 1, algo).unwrap();
        let got = gpu.download(x).unwrap();
        let res = batch_worst_relative_residual(&batch, &got).unwrap();
        (res, stats)
    }

    #[test]
    fn all_baselines_solve_correctly() {
        for algo in [
            BaselineAlgo::Pcr,
            BaselineAlgo::Cr,
            BaselineAlgo::CrPcr { pcr_threshold: 64 },
        ] {
            let (res, _) = run(algo);
            assert!(res < 1e-9, "{}: residual {res:.3e}", algo.label());
        }
    }

    #[test]
    fn cr_signature_inefficiencies_are_metered() {
        let (_, pcr_stats) = run(BaselineAlgo::Pcr);
        let (_, cr_stats) = run(BaselineAlgo::Cr);
        // CR accesses shared memory at power-of-two strides: heavy bank
        // conflicts relative to its raw traffic. (In f64 both algorithms
        // carry the 2-way word serialisation, so compare conflict ratios.)
        let conflict_ratio =
            |s: &KernelStats| s.totals.smem_conflict_accesses / s.totals.smem_accesses.max(1.0);
        assert!(conflict_ratio(&cr_stats) > 2.0 * conflict_ratio(&pcr_stats));
        // CR's raw shared traffic is below PCR's O(n log n)...
        assert!(cr_stats.totals.smem_accesses < pcr_stats.totals.smem_accesses);
        // ...but it needs roughly twice the barrier-separated steps.
        assert!(cr_stats.totals.barriers > 1.3 * pcr_stats.totals.barriers);
    }

    #[test]
    fn hybrid_sits_between_cr_and_pcr_in_work() {
        let (_, pcr_stats) = run(BaselineAlgo::Pcr);
        let (_, cr_stats) = run(BaselineAlgo::Cr);
        let (_, hy_stats) = run(BaselineAlgo::CrPcr { pcr_threshold: 64 });
        assert!(hy_stats.totals.thread_ops <= pcr_stats.totals.thread_ops);
        assert!(hy_stats.totals.barriers <= cr_stats.totals.barriers);
        let _ = cr_stats;
    }

    #[test]
    fn baselines_handle_strided_chains() {
        // Pre-split systems: baselines must solve interleaved chains too.
        let shape = WorkloadShape::new(2, 1024);
        let batch = random_dominant::<f64>(shape, 5).unwrap();
        let total = shape.total_equations();
        let (mut a, mut b, mut c, mut d) = (
            vec![0.0; total],
            vec![0.0; total],
            vec![0.0; total],
            vec![0.0; total],
        );
        for s in 0..2 {
            let sys = batch.system(s).unwrap();
            let split = pcr::pcr_split(&sys, 1).unwrap();
            a[s * 1024..(s + 1) * 1024].copy_from_slice(&split.a);
            b[s * 1024..(s + 1) * 1024].copy_from_slice(&split.b);
            c[s * 1024..(s + 1) * 1024].copy_from_slice(&split.c);
            d[s * 1024..(s + 1) * 1024].copy_from_slice(&split.d);
        }
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&a).unwrap(),
            gpu.alloc_from(&b).unwrap(),
            gpu.alloc_from(&c).unwrap(),
            gpu.alloc_from(&d).unwrap(),
        ];
        let x = gpu.alloc(total).unwrap();
        baseline_solve(&mut gpu, src, x, 2, 1024, 512, 2, BaselineAlgo::Pcr).unwrap();
        let got = gpu.download(x).unwrap();
        assert!(batch_worst_relative_residual(&batch, &got).unwrap() < 1e-9);
    }

    #[test]
    fn singular_systems_reported() {
        let n = 64;
        let mut a = vec![1.0f64; n];
        let b = vec![0.0f64; n];
        let mut c = vec![1.0f64; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d = vec![1.0f64; n];
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&a).unwrap(),
            gpu.alloc_from(&b).unwrap(),
            gpu.alloc_from(&c).unwrap(),
            gpu.alloc_from(&d).unwrap(),
        ];
        let x = gpu.alloc(n).unwrap();
        let err = baseline_solve(&mut gpu, src, x, 1, 64, 64, 1, BaselineAlgo::Cr);
        assert!(matches!(err, Err(CoreError::NumericalBreakdown { .. })));
    }
}
