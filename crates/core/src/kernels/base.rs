//! Stage 3 + 4 — the hybrid PCR-Thomas base kernel (paper §III-A).
//!
//! One block per subsystem: the block gathers its chain into shared memory,
//! PCR-splits it in shared memory until `thomas_chains` independent serial
//! chains exist (stage 3), then one thread per chain finishes with the
//! work-optimal Thomas algorithm (stage 4).
//!
//! Two memory-layout variants handle chains that are strided in their parent
//! system:
//!
//! * [`BaseVariant::Strided`] gathers the chain directly at its stride —
//!   uncoalesced transactions (bandwidth waste capped at the minimum
//!   transaction size, plus issue serialisation), but the entire solve then
//!   runs from shared memory.
//! * [`BaseVariant::Coalesced`] streams the contiguous tiles covering the
//!   chain — perfectly coalesced but moving `stride`× the payload.
//!
//! Which wins depends on the stride and the device; the paper resolves the
//! choice empirically with the self-tuner, and so does `trisolve-autotune`.

use crate::error::CoreError;
use crate::kernels::{elem_bytes, CoeffBuffers, GpuScalar};
use crate::params::{BaseVariant, BASE_KERNEL_REGS_PER_THREAD};
use crate::Result;
use std::sync::atomic::{AtomicBool, Ordering};
use trisolve_gpu_sim::{BufferId, Gpu, KernelStats, LaunchConfig, OutMode};
use trisolve_tridiag::pcr;
use trisolve_tridiag::system::ChainView;
use trisolve_tridiag::thomas::{self, ChainScratch};

/// Shared-memory word accesses per equation per on-chip PCR step.
pub const PCR_SMEM_PER_EQ: usize = 16;
/// Thread-operations per equation per on-chip PCR step.
pub const PCR_OPS_PER_EQ: usize = 12;
/// Thread-operations per equation of the serial Thomas phase.
pub const THOMAS_OPS_PER_EQ: usize = 8;
/// Shared-memory word accesses per equation of the Thomas phase.
pub const THOMAS_SMEM_PER_EQ: usize = 5;

/// Launch geometry of the base kernel (shared between the kernel and the
/// plan validator so the two cannot drift). Clamps `thomas_chains` to the
/// chain length exactly as [`base_solve`] does, so the label always matches
/// the launch. `elem_bytes` sizes the shared-memory footprint: the four
/// coefficient arrays, one chain each.
pub fn base_config(
    chains: usize,
    chain_len: usize,
    stride: usize,
    thomas_chains: usize,
    variant: BaseVariant,
    elem_bytes: usize,
) -> LaunchConfig {
    let t4 = thomas_chains.min(chain_len);
    LaunchConfig::new(
        format!("base[{chain_len}@{stride},t4={t4},{variant:?}]"),
        chains,
        chain_len,
    )
    .with_regs(BASE_KERNEL_REGS_PER_THREAD)
    .with_shared_mem(4 * chain_len * elem_bytes)
}

/// Launch the base kernel over every chain of a batch.
///
/// * `m` parent systems of `n` (power-of-two) equations live in `src`,
///   already split into `stride` chains each of `chain_len` equations.
/// * Each block solves one chain on-chip, switching from PCR to Thomas at
///   `thomas_chains` subsystems, and scatters its solution into `x`.
#[allow(clippy::too_many_arguments)]
pub fn base_solve<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    x: BufferId,
    m: usize,
    n: usize,
    chain_len: usize,
    stride: usize,
    thomas_chains: usize,
    variant: BaseVariant,
) -> Result<KernelStats> {
    debug_assert!(n.is_power_of_two());
    debug_assert!(chain_len.is_power_of_two());
    debug_assert_eq!(chain_len * stride, n);
    let chains = m * stride;
    let t4 = thomas_chains.min(chain_len);
    debug_assert!(t4.is_power_of_two());
    let pcr_steps = t4.trailing_zeros();

    let cfg = base_config(
        chains,
        chain_len,
        stride,
        thomas_chains,
        variant,
        elem_bytes::<T>(),
    );

    // Shared-memory accesses serialise per 32-bit word on the banked
    // register-file-like shared memory: 64-bit elements cost two-way
    // conflicts (the double-precision penalty of §III-A).
    let word_factor = f64::max(elem_bytes::<T>() as f64 / 4.0, 1.0);

    let failed = AtomicBool::new(false);
    let stats = gpu.launch(&cfg, &src, &[(x, OutMode::Scattered)], |ctx, io| {
        let bid = ctx.block_id as usize;
        let parent = bid / stride;
        let r = bid % stride;
        let chain = ChainView {
            offset: parent * n + r,
            stride,
            len: chain_len,
        };

        // ---- Load phase (stage-3 entry) -------------------------------
        let mut cur = (
            chain.gather(io.inputs[0]),
            chain.gather(io.inputs[1]),
            chain.gather(io.inputs[2]),
            chain.gather(io.inputs[3]),
        );
        match variant {
            // Interleaved plans never emit a BaseSolve op (the batched-Thomas
            // family replaces the whole staged pipeline); if one is forced
            // through anyway the gather behaves like the strided load.
            BaseVariant::Strided | BaseVariant::Interleaved => {
                ctx.gmem_read(4 * chain_len, stride);
            }
            BaseVariant::Coalesced => {
                ctx.gmem_read_overfetch(4 * chain_len, stride as f64);
            }
        }
        if ctx.sanitizing() {
            // Replay the gather through the tracked APIs: thread `j` loads
            // its four coefficients from global memory and stages them into
            // the block's shared arrays. Shared layout (matching the
            // declared `4 * chain_len` element footprint): array `k`
            // occupies elements `k*chain_len .. (k+1)*chain_len`.
            for k in 0..4 {
                for j in 0..chain_len {
                    let _ = io.load(k, chain.index(j), j, "base::load");
                    ctx.track_smem_write(k * chain_len + j, j, "base::smem_store");
                }
            }
        }
        ctx.sync();

        // ---- Stage 3: PCR in shared memory ----------------------------
        let mut next = (
            vec![T::ZERO; chain_len],
            vec![T::ZERO; chain_len],
            vec![T::ZERO; chain_len],
            vec![T::ZERO; chain_len],
        );
        let mut s = 1usize;
        for _ in 0..pcr_steps {
            pcr::pcr_step(
                s,
                &cur.0,
                &cur.1,
                &cur.2,
                &cur.3,
                &mut next.0,
                &mut next.1,
                &mut next.2,
                &mut next.3,
            );
            std::mem::swap(&mut cur, &mut next);
            ctx.smem_conflict(PCR_SMEM_PER_EQ * chain_len, word_factor);
            ctx.ops(PCR_OPS_PER_EQ * chain_len);
            if ctx.sanitizing() {
                // Read half of the in-place PCR step: thread `j` reads rows
                // `j-s`, `j`, `j+s` of every array (clamped at the ends).
                for j in 0..chain_len {
                    let lo = j.saturating_sub(s);
                    let hi = (j + s).min(chain_len - 1);
                    for k in 0..4 {
                        ctx.track_smem_read(k * chain_len + lo, j, "base::pcr_read");
                        ctx.track_smem_read(k * chain_len + j, j, "base::pcr_read");
                        ctx.track_smem_read(k * chain_len + hi, j, "base::pcr_read");
                    }
                }
            }
            // The declared shared footprint (4 arrays of one chain each) is
            // exactly single-buffered, so each PCR step must update the
            // arrays *in place*: one barrier separates every thread's reads
            // from the writes...
            ctx.sync();
            if ctx.sanitizing() {
                for j in 0..chain_len {
                    for k in 0..4 {
                        ctx.track_smem_write(k * chain_len + j, j, "base::pcr_write");
                    }
                }
            }
            // ...and a second one separates the writes from the next step's
            // reads. The pair is NOT redundant: collapsing it into one
            // barrier would put thread `j`'s write of row `j` in the same
            // interval as thread `j∓s`'s read of that row — a read-write
            // race the sanitizer reports if either sync is removed.
            ctx.sync();
            s *= 2;
        }

        // ---- Stage 4: Thomas, one thread per chain ---------------------
        let mut lx = vec![T::ZERO; chain_len];
        let mut scratch = ChainScratch::new();
        for sub in ChainView::chains_of(0, chain_len, t4) {
            if thomas::solve_thomas_chain(
                &sub,
                &cur.0,
                &cur.1,
                &cur.2,
                &cur.3,
                &mut lx,
                &mut scratch,
            )
            .is_err()
            {
                failed.store(true, Ordering::Relaxed);
                return;
            }
        }
        ctx.serial_phase(chain_len / t4, THOMAS_OPS_PER_EQ, t4);
        ctx.smem_conflict(THOMAS_SMEM_PER_EQ * chain_len, word_factor);
        if ctx.sanitizing() {
            // Thomas replay: thread `t` owns sub-chain `t` and sweeps it,
            // reading all four arrays and overwriting the d-array slots
            // with the solution. Chains are disjoint, so every element is
            // touched by exactly one thread — hazard-free by construction.
            for (t, sub) in ChainView::chains_of(0, chain_len, t4)
                .into_iter()
                .enumerate()
            {
                for i in 0..sub.len {
                    let e = sub.index(i);
                    for k in 0..4 {
                        ctx.track_smem_read(k * chain_len + e, t, "base::thomas_read");
                    }
                    ctx.track_smem_write(3 * chain_len + e, t, "base::thomas_write");
                }
            }
        }
        ctx.sync();

        // ---- Store phase ----------------------------------------------
        for (j, &v) in lx.iter().enumerate() {
            if !v.is_finite() {
                failed.store(true, Ordering::Relaxed);
                return;
            }
            io.scattered[0].set_at(chain.index(j), v, j, "base::store");
        }
        ctx.gmem_write(chain_len, stride);
    })?;

    if failed.load(Ordering::Relaxed) {
        return Err(CoreError::NumericalBreakdown {
            kernel: cfg.label.clone(),
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::cpu_batch::{solve_batch_sequential, BatchAlgorithm};
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};
    use trisolve_tridiag::SystemBatch;

    fn coeffs(gpu: &mut Gpu<f64>, batch: &SystemBatch<f64>) -> CoeffBuffers {
        [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ]
    }

    #[test]
    fn solves_contiguous_small_systems_exactly() {
        let shape = WorkloadShape::new(20, 256);
        let batch = random_dominant::<f64>(shape, 21).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = coeffs(&mut gpu, &batch);
        let x = gpu.alloc(shape.total_equations()).unwrap();
        base_solve(&mut gpu, src, x, 20, 256, 256, 1, 64, BaseVariant::Strided).unwrap();
        let got = gpu.download(x).unwrap();
        let expect = solve_batch_sequential(&batch, BatchAlgorithm::Thomas).unwrap();
        for (u, v) in got.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-8);
        }
        assert!(batch_worst_relative_residual(&batch, &got).unwrap() < 1e-10);
    }

    #[test]
    fn solves_strided_chains_of_presplit_systems() {
        // Split systems on the CPU (2 PCR steps -> 4 chains of 256), upload
        // the transformed coefficients, and let the base kernel finish.
        let shape = WorkloadShape::new(3, 1024);
        let batch = random_dominant::<f64>(shape, 33).unwrap();
        let total = shape.total_equations();
        let (mut a, mut b, mut c, mut d) = (
            vec![0.0; total],
            vec![0.0; total],
            vec![0.0; total],
            vec![0.0; total],
        );
        for s in 0..3 {
            let sys = batch.system(s).unwrap();
            let split = pcr::pcr_split(&sys, 2).unwrap();
            a[s * 1024..(s + 1) * 1024].copy_from_slice(&split.a);
            b[s * 1024..(s + 1) * 1024].copy_from_slice(&split.b);
            c[s * 1024..(s + 1) * 1024].copy_from_slice(&split.c);
            d[s * 1024..(s + 1) * 1024].copy_from_slice(&split.d);
        }
        for variant in [BaseVariant::Strided, BaseVariant::Coalesced] {
            let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            let src = [
                gpu.alloc_from(&a).unwrap(),
                gpu.alloc_from(&b).unwrap(),
                gpu.alloc_from(&c).unwrap(),
                gpu.alloc_from(&d).unwrap(),
            ];
            let x = gpu.alloc(total).unwrap();
            base_solve(&mut gpu, src, x, 3, 1024, 256, 4, 32, variant).unwrap();
            let got = gpu.download(x).unwrap();
            assert!(
                batch_worst_relative_residual(&batch, &got).unwrap() < 1e-10,
                "{variant:?}"
            );
        }
    }

    #[test]
    fn variants_price_the_load_differently() {
        let shape = WorkloadShape::new(2, 4096);
        let batch = random_dominant::<f64>(shape, 4).unwrap();
        let run = |variant: BaseVariant| {
            let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
            let src = coeffs(&mut gpu, &batch);
            let x = gpu.alloc(shape.total_equations()).unwrap();
            base_solve(&mut gpu, src, x, 2, 4096, 512, 8, 64, variant).unwrap()
        };
        let s = run(BaseVariant::Strided);
        let c = run(BaseVariant::Coalesced);
        // Strided: capped transaction waste but serialised issue slots.
        // Coalesced: stride x over-fetch but coalesced slots.
        assert!(s.totals.gmem_txn_bytes < c.totals.gmem_txn_bytes);
        assert!(s.totals.gmem_warp_txns > c.totals.gmem_warp_txns);
        // Payload identical.
        assert_eq!(s.totals.gmem_read_bytes, c.totals.gmem_read_bytes);
    }

    #[test]
    fn f32_solve_keeps_single_precision_accuracy() {
        let shape = WorkloadShape::new(10, 512);
        let batch = random_dominant::<f32>(shape, 6).unwrap();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let src = [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ];
        let x = gpu.alloc(shape.total_equations()).unwrap();
        base_solve(&mut gpu, src, x, 10, 512, 512, 1, 64, BaseVariant::Strided).unwrap();
        let got = gpu.download(x).unwrap();
        assert!(batch_worst_relative_residual(&batch, &got).unwrap() < 1e-4);
    }

    #[test]
    fn f64_pays_sharedmem_conflicts() {
        let shape = WorkloadShape::new(4, 256);
        let b32 = random_dominant::<f32>(shape, 1).unwrap();
        let b64 = random_dominant::<f64>(shape, 1).unwrap();

        let mut g32: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let src = [
            g32.alloc_from(&b32.a).unwrap(),
            g32.alloc_from(&b32.b).unwrap(),
            g32.alloc_from(&b32.c).unwrap(),
            g32.alloc_from(&b32.d).unwrap(),
        ];
        let x = g32.alloc(shape.total_equations()).unwrap();
        let s32 = base_solve(&mut g32, src, x, 4, 256, 256, 1, 64, BaseVariant::Strided).unwrap();

        let mut g64: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let src = coeffs(&mut g64, &b64);
        let x = g64.alloc(shape.total_equations()).unwrap();
        let s64 = base_solve(&mut g64, src, x, 4, 256, 256, 1, 64, BaseVariant::Strided).unwrap();

        assert_eq!(s32.totals.smem_conflict_accesses, 0.0);
        assert!(s64.totals.smem_conflict_accesses > 0.0);
    }

    #[test]
    fn numerical_breakdown_reported_not_propagated_as_nan() {
        // A singular system (zero diagonal everywhere) must produce an error.
        let n = 64;
        let mut a = vec![1.0f64; n];
        let b = vec![0.0f64; n];
        let mut c = vec![1.0f64; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let d = vec![1.0f64; n];
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&a).unwrap(),
            gpu.alloc_from(&b).unwrap(),
            gpu.alloc_from(&c).unwrap(),
            gpu.alloc_from(&d).unwrap(),
        ];
        let x = gpu.alloc(n).unwrap();
        let err = base_solve(&mut gpu, src, x, 1, 64, 64, 1, 16, BaseVariant::Strided);
        assert!(matches!(err, Err(CoreError::NumericalBreakdown { .. })));
    }

    #[test]
    fn rejects_chains_exceeding_block_limits() {
        // chain_len 2048 needs 2048 threads: more than any device allows.
        let shape = WorkloadShape::new(1, 2048);
        let batch = random_dominant::<f64>(shape, 2).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = coeffs(&mut gpu, &batch);
        let x = gpu.alloc(2048).unwrap();
        let err = base_solve(&mut gpu, src, x, 1, 2048, 2048, 1, 64, BaseVariant::Strided);
        assert!(err.is_err());
    }
}
