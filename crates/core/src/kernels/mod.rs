//! The three GPU kernels of the multi-stage solver, written against the
//! simulator's launch API.
//!
//! Every kernel both *computes* (real arithmetic on real buffers, verified
//! against the CPU reference algorithms) and *meters* its memory traffic,
//! arithmetic and synchronisation so the simulator can time it. The metering
//! calls are the performance model of the real CUDA kernels; the analytic
//! expectations they encode are checked by the tests in this module tree.

pub mod access;
pub mod base;
pub mod baselines;
pub mod interleaved;
pub mod repack;
pub mod stage1;
pub mod stage2;

pub use access::{
    base_access_summary, baseline_access_summary, deinterleave_access_summary,
    interleave_access_summary, ithomas_access_summary, repack_access_summary,
    stage1_access_summary, stage2_access_summary, unpack_access_summary, AffineMap, AffineTerm,
    BarrierInterval, GlobalAccess, KernelAccessSummary, SmemAccess, SmemOwner,
};
pub use base::{base_config, base_solve};
pub use baselines::{baseline_config, baseline_solve, BaselineAlgo};
pub use interleaved::{
    deinterleave_config, deinterleave_solution, interleave_batch, interleave_config,
    ithomas_config, ithomas_solve,
};
pub use repack::{repack_chains, repack_config, unpack_config, unpack_solution};
pub use stage1::{stage1_config, stage1_step};
pub use stage2::{stage2_config, stage2_split};

use trisolve_gpu_sim::Element;
use trisolve_tridiag::Scalar;

/// Scalars usable on the simulated GPU (`f32`, `f64`).
pub trait GpuScalar: Scalar + Element {}
impl<T: Scalar + Element> GpuScalar for T {}

/// Element width in bytes of a GPU scalar (disambiguates the `BYTES`
/// constants that both `Scalar` and `Element` define — they agree for every
/// implementor).
pub fn elem_bytes<T: GpuScalar>() -> usize {
    <T as Element>::BYTES
}

/// The four coefficient buffers `(a, b, c, d)` as one handle bundle.
pub type CoeffBuffers = [trisolve_gpu_sim::BufferId; 4];
