//! Stage 2 — independent splitting.
//!
//! One block per independent chain; the block applies as many PCR steps as
//! needed to bring its chain down to the on-chip size, synchronising only
//! within the block — so the whole stage is a *single launch*, the decisive
//! cost advantage over stage 1 (§III-B, Figure 4).
//!
//! Chains produced by stage 1 are strided in their parent system, so every
//! global access of this kernel carries the parent stride; when stage 1 was
//! skipped (`stride_in == 1`) each block owns a contiguous system and the
//! accesses are coalesced. The functional execution gathers the chain once
//! and iterates locally (blocks own their chains exclusively), while the
//! meters charge the per-step global read/write traffic the real kernel —
//! which cannot keep an over-shared-memory-sized chain on chip — would
//! generate.

use crate::kernels::stage1::{
    PCR_LOADS_PER_EQ, PCR_OPS_PER_EQ, PCR_STAGING_SMEM_PER_EQ, PCR_STORES_PER_EQ,
    PCR_UNIQUE_LOADS_PER_EQ,
};
use crate::kernels::{CoeffBuffers, GpuScalar};
use crate::params::{SPLIT_KERNEL_REGS_PER_THREAD, SPLIT_KERNEL_THREADS};
use crate::Result;
use trisolve_gpu_sim::{Gpu, KernelStats, LaunchConfig, OutMode};
use trisolve_tridiag::pcr;
use trisolve_tridiag::system::ChainView;

/// Launch geometry of the independent splitting stage (shared between the
/// kernel and the plan validator so the two cannot drift).
pub fn stage2_config(m: usize, n: usize, stride_in: usize, steps: u32) -> LaunchConfig {
    let chains = m * stride_in;
    let chain_len = n / stride_in;
    LaunchConfig::new(
        format!("stage2[chains={chains},steps={steps}]"),
        chains,
        SPLIT_KERNEL_THREADS.min(chain_len),
    )
    .with_regs(SPLIT_KERNEL_REGS_PER_THREAD)
}

/// Launch the independent splitting stage.
///
/// * `m` parent systems of `n` equations (power of two) live in `src`.
/// * On entry each parent is already split into `stride_in` chains
///   (by stage 1); the grid has `m * stride_in` blocks, one per chain.
/// * Each block applies `steps` PCR steps to its chain; the transformed
///   coefficients land in `dst` at the chain's (strided) positions.
#[allow(clippy::too_many_arguments)]
pub fn stage2_split<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    dst: CoeffBuffers,
    m: usize,
    n: usize,
    stride_in: usize,
    steps: u32,
) -> Result<KernelStats> {
    debug_assert!(n.is_power_of_two());
    debug_assert!(stride_in.is_power_of_two());
    debug_assert!(steps >= 1);
    let chain_len = n / stride_in;
    let cfg = stage2_config(m, n, stride_in, steps);

    let outputs: Vec<_> = dst.iter().map(|&b| (b, OutMode::Scattered)).collect();

    let stats = gpu.launch(&cfg, &src, &outputs, |ctx, io| {
        let bid = ctx.block_id as usize;
        let parent = bid / stride_in;
        let r = bid % stride_in;
        let chain = ChainView {
            offset: parent * n + r,
            stride: stride_in,
            len: chain_len,
        };
        // Gather the chain into chain-contiguous working arrays.
        let mut cur = (
            chain.gather(io.inputs[0]),
            chain.gather(io.inputs[1]),
            chain.gather(io.inputs[2]),
            chain.gather(io.inputs[3]),
        );
        if ctx.sanitizing() {
            // Replay the gather through the tracked API (the values were
            // already read above) so memcheck/initcheck see the kernel's
            // true global read set. Logical thread `j` owns chain element
            // `j`. The per-step streaming below double-buffers through
            // global memory (`src` → `dst`), so it is race-free by
            // construction and needs no shared-memory replay.
            for k in 0..4 {
                for j in 0..chain_len {
                    let _ = io.load(k, chain.index(j), j, "stage2::gather");
                }
            }
        }
        let mut next = (
            vec![T::ZERO; chain_len],
            vec![T::ZERO; chain_len],
            vec![T::ZERO; chain_len],
            vec![T::ZERO; chain_len],
        );
        let mut local_stride = 1usize;
        for _ in 0..steps {
            pcr::pcr_step(
                local_stride,
                &cur.0,
                &cur.1,
                &cur.2,
                &cur.3,
                &mut next.0,
                &mut next.1,
                &mut next.2,
                &mut next.3,
            );
            std::mem::swap(&mut cur, &mut next);
            local_stride *= 2;
            // The real kernel streams the chain through global memory every
            // step (it exceeds shared capacity by construction).
            ctx.gmem_read_staged(
                PCR_LOADS_PER_EQ * chain_len,
                PCR_UNIQUE_LOADS_PER_EQ * chain_len,
                stride_in,
            );
            ctx.gmem_write(PCR_STORES_PER_EQ * chain_len, stride_in);
            ctx.smem(PCR_STAGING_SMEM_PER_EQ * chain_len);
            ctx.ops(PCR_OPS_PER_EQ * chain_len);
            ctx.sync();
        }
        // Scatter the final coefficients to the chain's parent positions.
        for j in 0..chain_len {
            let g = chain.index(j);
            io.scattered[0].set_at(g, cur.0[j], j, "stage2::scatter");
            io.scattered[1].set_at(g, cur.1[j], j, "stage2::scatter");
            io.scattered[2].set_at(g, cur.2[j], j, "stage2::scatter");
            io.scattered[3].set_at(g, cur.3[j], j, "stage2::scatter");
        }
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

    fn gpu470() -> Gpu<f64> {
        Gpu::new(DeviceSpec::gtx_470())
    }

    fn coeffs(gpu: &mut Gpu<f64>, batch: &trisolve_tridiag::SystemBatch<f64>) -> CoeffBuffers {
        [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ]
    }

    fn fresh(gpu: &mut Gpu<f64>, total: usize) -> CoeffBuffers {
        [
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
        ]
    }

    #[test]
    fn contiguous_systems_match_cpu_pcr_split() {
        // m systems, no prior stage-1 splitting: stride_in = 1.
        let shape = WorkloadShape::new(4, 1024);
        let batch = random_dominant::<f64>(shape, 5).unwrap();
        let mut gpu = gpu470();
        let src = coeffs(&mut gpu, &batch);
        let dst = fresh(&mut gpu, shape.total_equations());
        stage2_split(&mut gpu, src, dst, 4, 1024, 1, 2).unwrap();

        let gb = gpu.download(dst[1]).unwrap();
        let gd = gpu.download(dst[3]).unwrap();
        for s in 0..4 {
            let sys = batch.system(s).unwrap();
            let split = pcr::pcr_split(&sys, 2).unwrap();
            for i in 0..1024 {
                assert!((gb[s * 1024 + i] - split.b[i]).abs() < 1e-12);
                assert!((gd[s * 1024 + i] - split.d[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn strided_chains_compose_with_prior_split() {
        // Apply 2 steps via two single-step stage-2 calls with growing
        // stride_in, and compare against one 2-step call.
        let shape = WorkloadShape::new(1, 2048);
        let batch = random_dominant::<f64>(shape, 9).unwrap();

        let mut g1 = gpu470();
        let src = coeffs(&mut g1, &batch);
        let dst = fresh(&mut g1, 2048);
        stage2_split(&mut g1, src, dst, 1, 2048, 1, 2).unwrap();
        let direct_b = g1.download(dst[1]).unwrap();

        let mut g2 = gpu470();
        let src2 = coeffs(&mut g2, &batch);
        let mid = fresh(&mut g2, 2048);
        let fin = fresh(&mut g2, 2048);
        stage2_split(&mut g2, src2, mid, 1, 2048, 1, 1).unwrap();
        stage2_split(&mut g2, mid, fin, 1, 2048, 2, 1).unwrap();
        let composed_b = g2.download(fin[1]).unwrap();

        for i in 0..2048 {
            assert!(
                (direct_b[i] - composed_b[i]).abs() < 1e-10,
                "i={i}: {} vs {}",
                direct_b[i],
                composed_b[i]
            );
        }
    }

    #[test]
    fn single_launch_regardless_of_steps() {
        let shape = WorkloadShape::new(8, 4096);
        let batch = random_dominant::<f64>(shape, 3).unwrap();
        let mut gpu = gpu470();
        let src = coeffs(&mut gpu, &batch);
        let dst = fresh(&mut gpu, shape.total_equations());
        stage2_split(&mut gpu, src, dst, 8, 4096, 1, 3).unwrap();
        assert_eq!(gpu.timeline().len(), 1);
    }

    #[test]
    fn strided_chains_pay_coalescing_penalty() {
        let shape = WorkloadShape::new(1, 4096);
        let batch = random_dominant::<f64>(shape, 3).unwrap();

        // stride_in = 1: coalesced.
        let mut g1 = gpu470();
        let src = coeffs(&mut g1, &batch);
        let dst = fresh(&mut g1, 4096);
        let s1 = stage2_split(&mut g1, src, dst, 1, 4096, 1, 1).unwrap();
        // Contiguous chains: only the missed fraction of the redundant
        // neighbour streams costs anything.
        assert!(s1.totals.coalescing_efficiency() > 0.7);

        // stride_in = 8: wasteful transactions.
        let mut g2 = gpu470();
        let src2 = coeffs(&mut g2, &batch);
        // Pre-split on the CPU so the data is meaningful (not required for
        // the traffic check, but keeps the kernel numerically sensible).
        let dst2 = fresh(&mut g2, 4096);
        let s2 = stage2_split(&mut g2, src2, dst2, 1, 4096, 8, 1).unwrap();
        assert!(s2.totals.coalescing_efficiency() < 0.5);
    }

    #[test]
    fn chain_scatter_covers_everything_without_races() {
        // Race checking is on by default: a successful launch proves chains
        // are disjoint and cover the buffer.
        let shape = WorkloadShape::new(2, 1024);
        let batch = random_dominant::<f64>(shape, 8).unwrap();
        let mut gpu = gpu470();
        gpu.race_check = true;
        let src = coeffs(&mut gpu, &batch);
        let dst = fresh(&mut gpu, 2048);
        stage2_split(&mut gpu, src, dst, 2, 1024, 4, 1).unwrap();
    }
}
