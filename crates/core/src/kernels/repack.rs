//! Chain repacking — the third answer to §III-A's strided-subsystem
//! problem, beyond the paper's two base-kernel variants: spend one
//! tiled-transpose pass making every chain *contiguous*, solve with the
//! fully-coalesced stride-1 base kernel, then transpose the solution back.
//!
//! A tiled shared-memory transpose reads and writes global memory
//! coalesced on both sides (the staging tile absorbs the stride), at the
//! price of two extra passes over the data and the tile's shared traffic.
//! Whether that beats the strided gather is exactly the kind of
//! workload-dependent tradeoff the paper's self-tuner exists to settle —
//! `ablation_repack` measures the three-way crossover.

use crate::kernels::{CoeffBuffers, GpuScalar};
use crate::params::SPLIT_KERNEL_REGS_PER_THREAD;
use crate::Result;
use trisolve_gpu_sim::{BufferId, Gpu, KernelStats, LaunchConfig, OutMode};
use trisolve_tridiag::system::ChainView;

/// Shared-memory accesses per element of a tiled transpose (one write into
/// the tile, one read out).
const TRANSPOSE_SMEM_PER_EQ: usize = 2;

/// Launch geometry of the repack (transpose-in) pass (shared between the
/// kernel and the plan validator so the two cannot drift).
pub fn repack_config(m: usize, n: usize, stride: usize, elem_bytes: usize) -> LaunchConfig {
    let chain_len = n / stride;
    let chains = m * stride;
    LaunchConfig::new(
        format!("repack[{chains}x{chain_len}@{stride}]"),
        chains,
        256.min(chain_len.max(32)),
    )
    .with_regs(SPLIT_KERNEL_REGS_PER_THREAD)
    .with_shared_mem(32 * 33 * elem_bytes) // padded transpose tile
}

/// Launch geometry of the unpack (transpose-out) pass.
pub fn unpack_config(m: usize, n: usize, stride: usize, elem_bytes: usize) -> LaunchConfig {
    let chain_len = n / stride;
    let chains = m * stride;
    LaunchConfig::new(
        format!("unpack[{chains}x{chain_len}@{stride}]"),
        chains,
        256.min(chain_len.max(32)),
    )
    .with_regs(SPLIT_KERNEL_REGS_PER_THREAD)
    .with_shared_mem(32 * 33 * elem_bytes)
}

/// Repack the four coefficient arrays from interleaved chains (stride `k`
/// inside each parent of `n` equations) into chain-major contiguous layout:
/// chain `c` of parent `p` lands at `(p*k + c) * (n/k)`.
///
/// After this pass the chains are ordinary contiguous systems, so the base
/// kernel runs with unit stride (fully coalesced loads and stores).
pub fn repack_chains<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    dst: CoeffBuffers,
    m: usize,
    n: usize,
    stride: usize,
) -> Result<KernelStats> {
    debug_assert!(n.is_multiple_of(stride));
    let chain_len = n / stride;
    let cfg = repack_config(m, n, stride, std::mem::size_of::<T>());

    let outputs: Vec<_> = dst
        .iter()
        .map(|&b| (b, OutMode::Chunked { chunk: chain_len }))
        .collect();
    let stats = gpu.launch(&cfg, &src, &outputs, |ctx, io| {
        let bid = ctx.block_id as usize;
        let parent = bid / stride;
        let r = bid % stride;
        let chain = ChainView {
            offset: parent * n + r,
            stride,
            len: chain_len,
        };
        // Tracked copy: logical thread `j` owns chain element `j`. The
        // padded shared tile's internal staging is not replayed per element
        // (the tile layout is conflict- and race-free by construction).
        for k in 0..4 {
            for j in 0..chain_len {
                let v = io.load(k, chain.index(j), j, "repack::gather");
                io.store(k, j, v, j, "repack::store");
            }
        }
        // Tiled transpose: both global sides coalesced, staged through a
        // padded (bank-conflict-free) shared tile.
        ctx.gmem_read(4 * chain_len, 1);
        ctx.gmem_write(4 * chain_len, 1);
        ctx.smem(2 * TRANSPOSE_SMEM_PER_EQ * 4 * chain_len);
        ctx.sync();
        ctx.sync();
    })?;
    Ok(stats)
}

/// Transpose a chain-major solution vector back to the original
/// (interleaved) equation order.
pub fn unpack_solution<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    x_chain_major: BufferId,
    x_out: BufferId,
    m: usize,
    n: usize,
    stride: usize,
) -> Result<KernelStats> {
    debug_assert!(n.is_multiple_of(stride));
    let chain_len = n / stride;
    let cfg = unpack_config(m, n, stride, std::mem::size_of::<T>());

    let stats = gpu.launch(
        &cfg,
        &[x_chain_major],
        &[(x_out, OutMode::Scattered)],
        |ctx, io| {
            let bid = ctx.block_id as usize;
            let parent = bid / stride;
            let r = bid % stride;
            let chain = ChainView {
                offset: parent * n + r,
                stride,
                len: chain_len,
            };
            for j in 0..chain_len {
                let v = io.load(0, bid * chain_len + j, j, "unpack::load");
                io.scattered[0].set_at(chain.index(j), v, j, "unpack::scatter");
            }
            ctx.gmem_read(chain_len, 1);
            ctx.gmem_write(chain_len, 1);
            ctx.smem(TRANSPOSE_SMEM_PER_EQ * chain_len);
            ctx.sync();
            ctx.sync();
        },
    )?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::base_solve;
    use crate::params::BaseVariant;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::pcr;
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

    /// Split on the CPU, repack on the GPU, solve the repacked (contiguous)
    /// chains with the unit-stride base kernel, unpack — the full repack
    /// pipeline must produce the same answer as the strided base kernel.
    #[test]
    fn repack_pipeline_solves_correctly() {
        let (m, n, stride) = (3usize, 2048usize, 8usize);
        let chain_len = n / stride;
        let shape = WorkloadShape::new(m, n);
        let batch = random_dominant::<f64>(shape, 12).unwrap();
        let total = m * n;

        // CPU-side split to `stride` chains per system.
        let (mut a, mut b, mut c, mut d) = (
            vec![0.0; total],
            vec![0.0; total],
            vec![0.0; total],
            vec![0.0; total],
        );
        for s in 0..m {
            let sys = batch.system(s).unwrap();
            let split = pcr::pcr_split(&sys, stride.trailing_zeros()).unwrap();
            a[s * n..(s + 1) * n].copy_from_slice(&split.a);
            b[s * n..(s + 1) * n].copy_from_slice(&split.b);
            c[s * n..(s + 1) * n].copy_from_slice(&split.c);
            d[s * n..(s + 1) * n].copy_from_slice(&split.d);
        }

        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            gpu.alloc_from(&a).unwrap(),
            gpu.alloc_from(&b).unwrap(),
            gpu.alloc_from(&c).unwrap(),
            gpu.alloc_from(&d).unwrap(),
        ];
        let packed = [
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
        ];
        let x_packed = gpu.alloc(total).unwrap();
        let x_out = gpu.alloc(total).unwrap();

        repack_chains(&mut gpu, src, packed, m, n, stride).unwrap();
        // Repacked chains are contiguous systems of chain_len.
        base_solve(
            &mut gpu,
            packed,
            x_packed,
            m * stride,
            chain_len,
            chain_len,
            1,
            64,
            BaseVariant::Strided,
        )
        .unwrap();
        unpack_solution(&mut gpu, x_packed, x_out, m, n, stride).unwrap();

        let x = gpu.download(x_out).unwrap();
        let res = batch_worst_relative_residual(&batch, &x).unwrap();
        assert!(res < 1e-10, "repack pipeline residual {res:.3e}");
    }

    #[test]
    fn repack_meters_coalesced_traffic() {
        let (m, n, stride) = (2usize, 1024usize, 16usize);
        let batch = random_dominant::<f32>(WorkloadShape::new(m, n), 3).unwrap();
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_280());
        let src = [
            gpu.alloc_from(&batch.a).unwrap(),
            gpu.alloc_from(&batch.b).unwrap(),
            gpu.alloc_from(&batch.c).unwrap(),
            gpu.alloc_from(&batch.d).unwrap(),
        ];
        let dst = [
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
            gpu.alloc(m * n).unwrap(),
        ];
        let stats = repack_chains(&mut gpu, src, dst, m, n, stride).unwrap();
        // The whole point: no transaction waste despite the stride.
        assert_eq!(stats.totals.coalescing_efficiency(), 1.0);
        assert!(stats.totals.smem_accesses > 0.0);
    }

    #[test]
    fn unpack_restores_equation_order() {
        let (m, n, stride) = (2usize, 256usize, 4usize);
        let chain_len = n / stride;
        // Chain-major data: value = parent-index it should land at.
        let mut chain_major = vec![0.0f32; m * n];
        for p in 0..m {
            for r in 0..stride {
                for j in 0..chain_len {
                    chain_major[(p * stride + r) * chain_len + j] = (p * n + r + j * stride) as f32;
                }
            }
        }
        let mut gpu: Gpu<f32> = Gpu::new(DeviceSpec::gtx_470());
        let src = gpu.alloc_from(&chain_major).unwrap();
        let dst = gpu.alloc(m * n).unwrap();
        unpack_solution(&mut gpu, src, dst, m, n, stride).unwrap();
        let out = gpu.download(dst).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }
}
