//! Affine access summaries — the static mirror of every kernel family's
//! memory behaviour.
//!
//! Each kernel in this module's siblings touches global and shared memory
//! through index expressions that are *affine* in a handful of bounded
//! iteration variables (block id decomposed into `parent`/`r`, logical
//! thread id, per-thread loop counters, PCR step). This module captures
//! those expressions as data — [`AffineMap`]s over explicit iteration
//! boxes — so `trisolve-analyze` can prove out-of-bounds freedom, write
//! disjointness and inter-barrier race freedom *symbolically*, for every
//! `(device, plan, size)` point, without executing anything.
//!
//! The summaries are built by constructors that live next to the launch
//! config builders and take the same parameters, for the same reason the
//! config builders are shared with the kernels: the description and the
//! execution cannot drift apart silently. The dynamic sanitizer replay
//! (`ctx.sanitizing()` blocks in each kernel) is the ground truth these
//! summaries are cross-validated against — see `trisolve analyze`'s
//! cross-validation mode.

use crate::params::{BaseVariant, SPLIT_KERNEL_THREADS};
use serde::Serialize;
use trisolve_tridiag::pcr::ceil_log2;

use super::baselines::BaselineAlgo;

/// One bounded iteration variable of an [`AffineMap`]:
/// contributes `coeff * v` with `v ∈ [0, extent)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AffineTerm {
    /// Variable name (for reports): `"parent"`, `"r"`, `"j"`, `"t"`, …
    pub var: &'static str,
    /// Multiplier of the variable.
    pub coeff: usize,
    /// Exclusive upper bound of the variable (`extent == 0` ⇒ empty map).
    pub extent: usize,
}

/// An affine index set: `{ offset + Σ coeffᵢ·vᵢ | vᵢ ∈ [0, extentᵢ) }`.
///
/// All coefficients are non-negative (they are `usize`), so interval
/// analysis over the iteration box is *exact*: the minimum is `offset`,
/// the maximum is `offset + Σ coeffᵢ·(extentᵢ−1)`. This is the abstract
/// domain of the whole analyzer; its soundness argument is three lines
/// of arithmetic (see DESIGN.md §3.10).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AffineMap {
    /// Constant base index.
    pub offset: usize,
    /// The iteration variables.
    pub terms: Vec<AffineTerm>,
}

impl AffineMap {
    /// A map with only a constant offset (a single index).
    pub fn at(offset: usize) -> Self {
        AffineMap {
            offset,
            terms: Vec::new(),
        }
    }

    /// Builder: add an iteration variable.
    #[must_use]
    pub fn term(mut self, var: &'static str, coeff: usize, extent: usize) -> Self {
        self.terms.push(AffineTerm { var, coeff, extent });
        self
    }

    /// Number of iteration points (not necessarily distinct indices).
    pub fn points(&self) -> usize {
        self.terms.iter().map(|t| t.extent).product()
    }

    /// True when the iteration box is empty.
    pub fn is_empty(&self) -> bool {
        self.points() == 0
    }

    /// Smallest index of the set (`None` when empty).
    pub fn min_index(&self) -> Option<usize> {
        (!self.is_empty()).then_some(self.offset)
    }

    /// Largest index of the set (`None` when empty). Exact, because every
    /// coefficient is non-negative.
    pub fn max_index(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        Some(
            self.offset
                + self
                    .terms
                    .iter()
                    .map(|t| t.coeff * (t.extent - 1))
                    .sum::<usize>(),
        )
    }

    /// Coefficient of a variable (0 when absent).
    pub fn coeff_of(&self, var: &'static str) -> usize {
        self.terms
            .iter()
            .find(|t| t.var == var)
            .map_or(0, |t| t.coeff)
    }

    /// Sufficient (and for our mixed-radix maps, tight) injectivity test:
    /// sort the non-trivial terms by coefficient and require each
    /// coefficient to exceed the total reach of the smaller ones —
    /// the "digits do not overlap" argument. Injective maps prove write
    /// disjointness: distinct iteration points (in particular, points
    /// owned by distinct threads or blocks) hit distinct indices.
    pub fn is_injective(&self) -> bool {
        let mut terms: Vec<&AffineTerm> = self.terms.iter().filter(|t| t.extent > 1).collect();
        if terms.iter().any(|t| t.coeff == 0) {
            return false;
        }
        terms.sort_by_key(|t| t.coeff);
        let mut reach = 0usize;
        for t in terms {
            if t.coeff <= reach {
                return false;
            }
            reach += t.coeff * (t.extent - 1);
        }
        true
    }

    /// True when the image is *exactly* the interval
    /// `[offset, offset + points())` — a perfect mixed-radix decomposition,
    /// i.e. the write both partitions and covers its footprint.
    pub fn covers_exactly(&self) -> bool {
        let mut terms: Vec<&AffineTerm> = self.terms.iter().filter(|t| t.extent > 1).collect();
        if terms.iter().any(|t| t.coeff == 0) {
            return false;
        }
        terms.sort_by_key(|t| t.coeff);
        let mut reach = 0usize;
        for t in terms {
            if t.coeff != reach + 1 {
                return false;
            }
            reach += t.coeff * (t.extent - 1);
        }
        true
    }
}

/// One global-memory access site of a kernel: the union over the whole
/// grid of the indices the site touches, plus the per-warp stride the
/// coalescing classifier needs.
#[derive(Debug, Clone, Serialize)]
pub struct GlobalAccess {
    /// Site label, matching the dynamic sanitizer's tracked-API site
    /// string (e.g. `"base::load"`), so static verdicts and dynamic
    /// hazards can be joined.
    pub site: &'static str,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// The index set, as a map over the grid/thread iteration box.
    pub map: AffineMap,
    /// Element stride between consecutive logical threads of a warp
    /// (1 = perfectly coalesced).
    pub warp_stride: usize,
    /// The site also reads neighbour rows at `pos ± stride`, clamped to
    /// the footprint (identity rows are substituted outside it) — the
    /// clamp keeps the range inside `map`, so OOB bounds are unchanged.
    pub clamped_neighbours: bool,
    /// Writes that must *partition* their footprint: the race-freedom
    /// proof obligation requires [`AffineMap::is_injective`].
    pub exclusive: bool,
}

/// Thread-ownership signature of a shared-memory access:
/// `thread = (element % row_len) % modulus`. Two accesses with equal
/// owners in the same barrier interval are same-thread-only conflicts —
/// not races.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SmemOwner {
    /// Length of one logical row of the shared array.
    pub row_len: usize,
    /// Sub-chain interleaving modulus (`row_len` itself for one element
    /// per thread).
    pub modulus: usize,
}

/// One shared-memory access site inside a barrier interval.
#[derive(Debug, Clone, Serialize)]
pub struct SmemAccess {
    /// Site label, matching the sanitizer's `track_smem_*` site string.
    pub site: &'static str,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// Element index set over the thread/loop iteration box. The thread
    /// variable is named `"t"` by convention.
    pub map: AffineMap,
    /// Row-relative displacements also read (PCR neighbour rows `±s`);
    /// each displaced index is clamped into `[0, clamp_row)` before the
    /// array base is added, exactly like the kernel clamps.
    pub displacements: Vec<isize>,
    /// Clamp row length; must be `Some` whenever `displacements` is
    /// non-empty.
    pub clamp_row: Option<usize>,
    /// Thread-ownership signature, when the access has one.
    pub owner: Option<SmemOwner>,
    /// Element stride between consecutive threads (bank-conflict input).
    pub thread_coeff: usize,
}

impl SmemAccess {
    /// Largest element index the access can touch. For displaced accesses
    /// the kernel clamps the *row* index (offset + thread term) into
    /// `[0, clamp_row)`, so the bound is the last row element plus the
    /// reach of the array-selection terms outside the clamp.
    pub fn max_elem(&self) -> Option<usize> {
        match self.clamp_row {
            None => self.map.max_index(),
            Some(row) => {
                if self.map.is_empty() || row == 0 {
                    return None;
                }
                let outside: usize = self
                    .map
                    .terms
                    .iter()
                    .filter(|t| t.var != "t")
                    .map(|t| t.coeff * (t.extent - 1))
                    .sum();
                Some(row - 1 + outside)
            }
        }
    }
}

/// The shared-memory accesses between two consecutive `ctx.sync()`
/// barriers. Race-freedom is proven per interval: the barriers are the
/// only ordering the block guarantees.
#[derive(Debug, Clone, Serialize)]
pub struct BarrierInterval {
    /// Human-readable interval label (e.g. `"pcr_read[s=4]"`).
    pub label: String,
    /// The access sites active in this interval.
    pub accesses: Vec<SmemAccess>,
}

/// Everything the analyzer needs to know about one kernel launch:
/// global footprints, shared-memory choreography, and the extents they
/// must stay within.
#[derive(Debug, Clone, Serialize)]
pub struct KernelAccessSummary {
    /// Kernel label (matches the launch config label's family).
    pub label: String,
    /// Length, in elements, of the global buffers the kernel addresses
    /// (coefficients and solution all span `m · n_padded`).
    pub buffer_len: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// Modeled shared-memory footprint in elements (0 = no shared state
    /// worth modeling; the declared launch footprint must cover this).
    pub smem_elems: usize,
    /// Global access sites.
    pub global: Vec<GlobalAccess>,
    /// Barrier-separated shared-memory choreography.
    pub intervals: Vec<BarrierInterval>,
}

/// The strided chain gather/scatter map shared by stage 2, the base
/// kernel and the baselines: block `bid` decomposes into
/// `parent = bid / stride`, `r = bid % stride`, and element `j` of the
/// chain sits at `parent·n + r + j·stride`. With `chain_len·stride == n`
/// this is a perfect mixed-radix decomposition of `[0, m·n)`.
fn chain_map(m: usize, n: usize, stride: usize, chain_len: usize) -> AffineMap {
    AffineMap::at(0)
        .term("r", 1, stride)
        .term("j", stride, chain_len)
        .term("parent", n, m)
}

/// Access summary of one stage-1 cooperative splitting launch
/// (`stage1_config(m, n, stride)`): blocks cover contiguous chunks, each
/// element reads its own row plus two neighbour rows clamped to its
/// system, and writes its own position of the chunk.
pub fn stage1_access_summary(m: usize, n: usize, stride: usize) -> KernelAccessSummary {
    let chunk = n.min(1024);
    let grid = (m * n) / chunk;
    let map = AffineMap::at(0)
        .term("i", 1, chunk)
        .term("block", chunk, grid);
    KernelAccessSummary {
        label: format!("stage1[stride={stride}]"),
        buffer_len: m * n,
        block_threads: SPLIT_KERNEL_THREADS,
        smem_elems: 0,
        global: vec![
            GlobalAccess {
                site: "stage1::row",
                is_write: false,
                map: map.clone(),
                warp_stride: 1,
                clamped_neighbours: true,
                exclusive: false,
            },
            GlobalAccess {
                site: "stage1::store",
                is_write: true,
                map,
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: Vec::new(),
    }
}

/// Access summary of the single stage-2 independent-splitting launch
/// (`stage2_config(m, n, stride_in, steps)`): each block gathers its
/// chain, iterates locally double-buffering through *global* memory
/// (hence no shared-memory intervals to prove), and scatters back to the
/// chain's strided positions.
pub fn stage2_access_summary(
    m: usize,
    n: usize,
    stride_in: usize,
    steps: u32,
) -> KernelAccessSummary {
    let chain_len = n / stride_in;
    let map = chain_map(m, n, stride_in, chain_len);
    KernelAccessSummary {
        label: format!("stage2[chains={},steps={steps}]", m * stride_in),
        buffer_len: m * n,
        block_threads: SPLIT_KERNEL_THREADS.min(chain_len),
        smem_elems: 0,
        global: vec![
            GlobalAccess {
                site: "stage2::gather",
                is_write: false,
                map: map.clone(),
                warp_stride: stride_in,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "stage2::scatter",
                is_write: true,
                map,
                warp_stride: stride_in,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: Vec::new(),
    }
}

/// The four coefficient arrays staged in shared memory: array `k`
/// occupies elements `k·chain_len .. (k+1)·chain_len`.
fn staged_rows_map(chain_len: usize) -> AffineMap {
    AffineMap::at(0)
        .term("t", 1, chain_len)
        .term("k", chain_len, 4)
}

/// Access summary of the hybrid PCR-Thomas base kernel
/// (`base_config(chains, chain_len, stride, thomas_chains, variant, _)`),
/// including its full barrier choreography: load→sync, then per PCR step
/// a read interval (rows `j±s`, clamped) and a write interval (row `j`)
/// separated by the double sync, then the Thomas interval where thread
/// `t` exclusively owns the interleaved sub-chain `t`.
pub fn base_access_summary(
    m: usize,
    n: usize,
    chain_len: usize,
    stride: usize,
    thomas_chains: usize,
    variant: BaseVariant,
) -> KernelAccessSummary {
    let t4 = thomas_chains.min(chain_len);
    let pcr_steps = t4.trailing_zeros();
    let chain = chain_map(m, n, stride, chain_len);
    // The Coalesced variant streams the contiguous tiles covering the
    // chain, so consecutive threads touch consecutive elements; Strided
    // gathers directly at the chain stride.
    let warp_stride = match variant {
        BaseVariant::Strided => stride,
        // Coalesced streams contiguous tiles. Interleaved never reaches the
        // base kernel (the plan replaces the whole staged pipeline with the
        // batched-Thomas family), but the summary stays total.
        BaseVariant::Coalesced | BaseVariant::Interleaved => 1,
    };
    let one_per_thread = SmemOwner {
        row_len: chain_len,
        modulus: chain_len,
    };

    let mut intervals = vec![BarrierInterval {
        label: "load".into(),
        accesses: vec![SmemAccess {
            site: "base::smem_store",
            is_write: true,
            map: staged_rows_map(chain_len),
            displacements: Vec::new(),
            clamp_row: None,
            owner: Some(one_per_thread),
            thread_coeff: 1,
        }],
    }];
    for step in 0..pcr_steps {
        let s = 1usize << step;
        intervals.push(BarrierInterval {
            label: format!("pcr_read[s={s}]"),
            accesses: vec![SmemAccess {
                site: "base::pcr_read",
                is_write: false,
                map: staged_rows_map(chain_len),
                displacements: vec![-(s as isize), 0, s as isize],
                clamp_row: Some(chain_len),
                owner: None,
                thread_coeff: 1,
            }],
        });
        intervals.push(BarrierInterval {
            label: format!("pcr_write[s={s}]"),
            accesses: vec![SmemAccess {
                site: "base::pcr_write",
                is_write: true,
                map: staged_rows_map(chain_len),
                displacements: Vec::new(),
                clamp_row: None,
                owner: Some(one_per_thread),
                thread_coeff: 1,
            }],
        });
    }
    let sub_chains = SmemOwner {
        row_len: chain_len,
        modulus: t4,
    };
    intervals.push(BarrierInterval {
        label: "thomas".into(),
        accesses: vec![
            SmemAccess {
                site: "base::thomas_read",
                is_write: false,
                map: AffineMap::at(0)
                    .term("t", 1, t4)
                    .term("i", t4, chain_len / t4)
                    .term("k", chain_len, 4),
                displacements: Vec::new(),
                clamp_row: None,
                owner: Some(sub_chains),
                thread_coeff: 1,
            },
            SmemAccess {
                site: "base::thomas_write",
                is_write: true,
                map: AffineMap::at(3 * chain_len)
                    .term("t", 1, t4)
                    .term("i", t4, chain_len / t4),
                displacements: Vec::new(),
                clamp_row: None,
                owner: Some(sub_chains),
                thread_coeff: 1,
            },
        ],
    });

    KernelAccessSummary {
        label: format!("base[{chain_len}@{stride},t4={t4},{variant:?}]"),
        buffer_len: m * n,
        block_threads: chain_len,
        smem_elems: 4 * chain_len,
        global: vec![
            GlobalAccess {
                site: "base::load",
                is_write: false,
                map: chain.clone(),
                warp_stride,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "base::store",
                is_write: true,
                map: chain,
                warp_stride,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals,
    }
}

/// Access summary of the repack (transpose-in) pass: strided gather,
/// chunk-contiguous store, staged through the padded 32×33 tile whose
/// post-transpose read stride of 33 is what makes it bank-conflict-free.
pub fn repack_access_summary(m: usize, n: usize, stride: usize) -> KernelAccessSummary {
    let chain_len = n / stride;
    let chains = m * stride;
    let chunked = AffineMap::at(0)
        .term("j", 1, chain_len)
        .term("block", chain_len, chains);
    KernelAccessSummary {
        label: format!("repack[{chains}x{chain_len}@{stride}]"),
        buffer_len: m * n,
        block_threads: 256.min(chain_len.max(32)),
        smem_elems: 32 * 33,
        global: vec![
            GlobalAccess {
                site: "repack::gather",
                is_write: false,
                map: chain_map(m, n, stride, chain_len),
                // The tile absorbs the stride: both global sides coalesced.
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "repack::store",
                is_write: true,
                map: chunked,
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: transpose_tile_intervals(),
    }
}

/// Access summary of the unpack (transpose-out) pass: chunk-contiguous
/// load, strided scatter, same padded tile.
pub fn unpack_access_summary(m: usize, n: usize, stride: usize) -> KernelAccessSummary {
    let chain_len = n / stride;
    let chains = m * stride;
    let chunked = AffineMap::at(0)
        .term("j", 1, chain_len)
        .term("block", chain_len, chains);
    KernelAccessSummary {
        label: format!("unpack[{chains}x{chain_len}@{stride}]"),
        buffer_len: m * n,
        block_threads: 256.min(chain_len.max(32)),
        smem_elems: 32 * 33,
        global: vec![
            GlobalAccess {
                site: "unpack::load",
                is_write: false,
                map: chunked,
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "unpack::scatter",
                is_write: true,
                map: chain_map(m, n, stride, chain_len),
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: transpose_tile_intervals(),
    }
}

/// The fully *interleaved* batch map: element `j` of system `s` sits at
/// `j·m + s`, i.e. the affine map with coefficient `batch` on the element
/// variable. With `s ∈ [0, m)` and `j ∈ [0, n)` this is a perfect
/// mixed-radix decomposition of `[0, m·n)` — injective and exactly
/// covering, so the write-partition and OOB proofs extend to the
/// interleaved family with no new abstract domain.
fn interleaved_map(m: usize, n: usize) -> AffineMap {
    AffineMap::at(0).term("s", 1, m).term("j", m, n)
}

/// The system-major batch map (system `s` contiguous at `s·n`): the layout
/// the host uploads and the transpose passes convert from/to.
fn system_major_map(m: usize, n: usize) -> AffineMap {
    AffineMap::at(0).term("j", 1, n).term("s", n, m)
}

/// Access summary of the interleave (transpose-in) pass
/// (`interleave_config(m, n, _)`): system-major read, interleaved
/// scatter, staged through the same padded 32×33 tile as the chain
/// repack so both global sides are coalesced.
pub fn interleave_access_summary(m: usize, n: usize) -> KernelAccessSummary {
    KernelAccessSummary {
        label: format!("interleave[{m}x{n}]"),
        buffer_len: m * n,
        block_threads: 256.min(n.max(32)),
        smem_elems: 32 * 33,
        global: vec![
            GlobalAccess {
                site: "interleave::load",
                is_write: false,
                map: system_major_map(m, n),
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "interleave::scatter",
                is_write: true,
                map: interleaved_map(m, n),
                // The tile absorbs the transpose: coalesced on both sides.
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: transpose_tile_intervals(),
    }
}

/// Access summary of the single-kernel batched-Thomas solve
/// (`ithomas_config(m, n, _)`): thread `s` walks system `s` through the
/// interleaved coefficients — every access warp-stride 1 by construction —
/// with no shared memory and no barriers at all, which is exactly why the
/// family wins the many-small regime.
pub fn ithomas_access_summary(m: usize, n: usize) -> KernelAccessSummary {
    KernelAccessSummary {
        label: format!("ithomas[{m}x{n}]"),
        buffer_len: m * n,
        block_threads: 256.min(m.max(32)),
        smem_elems: 0,
        global: vec![
            GlobalAccess {
                site: "ithomas::load",
                is_write: false,
                map: interleaved_map(m, n),
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "ithomas::store",
                is_write: true,
                map: interleaved_map(m, n),
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: Vec::new(),
    }
}

/// Access summary of the deinterleave (transpose-out) pass
/// (`deinterleave_config(m, n, _)`): interleaved read of the solution,
/// system-major scatter, same padded tile.
pub fn deinterleave_access_summary(m: usize, n: usize) -> KernelAccessSummary {
    KernelAccessSummary {
        label: format!("deinterleave[{m}x{n}]"),
        buffer_len: m * n,
        block_threads: 256.min(n.max(32)),
        smem_elems: 32 * 33,
        global: vec![
            GlobalAccess {
                site: "deinterleave::load",
                is_write: false,
                map: interleaved_map(m, n),
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "deinterleave::scatter",
                is_write: true,
                map: system_major_map(m, n),
                warp_stride: 1,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals: transpose_tile_intervals(),
    }
}

/// The padded 32×33 transpose tile: threads write rows (stride 1),
/// sync, then read columns — whose stride is the *padded* row length 33,
/// coprime to every pow2 bank count, hence conflict-free.
fn transpose_tile_intervals() -> Vec<BarrierInterval> {
    vec![
        BarrierInterval {
            label: "tile_in".into(),
            accesses: vec![SmemAccess {
                site: "repack::tile_store",
                is_write: true,
                map: AffineMap::at(0).term("t", 1, 32).term("ty", 33, 32),
                displacements: Vec::new(),
                clamp_row: None,
                owner: None,
                thread_coeff: 1,
            }],
        },
        BarrierInterval {
            label: "tile_out".into(),
            accesses: vec![SmemAccess {
                site: "repack::tile_load",
                is_write: false,
                map: AffineMap::at(0).term("t", 33, 32).term("ty", 1, 32),
                displacements: Vec::new(),
                clamp_row: None,
                owner: None,
                thread_coeff: 33,
            }],
        },
    ]
}

/// Access summary of a prior-art baseline kernel
/// (`baseline_config(chains, chain_len, stride, algo, _)`). Global side
/// matches the base kernel's strided gather/scatter; the shared-memory
/// choreography is per algorithm — notably CR's pow2-strided levels,
/// whose widening thread stride is the textbook bank-conflict source the
/// analyzer's conflict counts surface.
pub fn baseline_access_summary(
    m: usize,
    n: usize,
    chain_len: usize,
    stride: usize,
    algo: BaselineAlgo,
) -> KernelAccessSummary {
    let chain = chain_map(m, n, stride, chain_len);
    let one_per_thread = SmemOwner {
        row_len: chain_len,
        modulus: chain_len,
    };
    let mut intervals = Vec::new();
    let pcr_intervals = |intervals: &mut Vec<BarrierInterval>, rows: usize, row_stride: usize| {
        // PCR over `rows` active rows spaced `row_stride` apart, one
        // read + one write interval per step (the double sync).
        for step in 0..ceil_log2(rows.max(1)) {
            let s = 1usize << step;
            let map = AffineMap::at(0)
                .term("t", row_stride, rows)
                .term("k", chain_len, 4);
            intervals.push(BarrierInterval {
                label: format!("pcr_read[s={s}]"),
                accesses: vec![SmemAccess {
                    site: "baseline::pcr_read",
                    is_write: false,
                    map: map.clone(),
                    displacements: vec![-((s * row_stride) as isize), 0, (s * row_stride) as isize],
                    clamp_row: Some(chain_len),
                    owner: None,
                    thread_coeff: row_stride,
                }],
            });
            intervals.push(BarrierInterval {
                label: format!("pcr_write[s={s}]"),
                accesses: vec![SmemAccess {
                    site: "baseline::pcr_write",
                    is_write: true,
                    map,
                    displacements: Vec::new(),
                    clamp_row: None,
                    owner: (row_stride == 1).then_some(one_per_thread),
                    thread_coeff: row_stride,
                }],
            });
        }
    };
    let cr_levels = |intervals: &mut Vec<BarrierInterval>, threshold: usize| -> usize {
        // CR forward reduction: level `l` updates the `chain_len >> l`
        // rows at offset `2^l − 1`, stride `2^l` — active threads halve,
        // the pow2 stride doubles.
        let mut level = 1usize;
        while (chain_len >> level) > 0 && (chain_len >> level) >= threshold.max(1) {
            let active = chain_len >> level;
            let row_stride = 1usize << level;
            let map = AffineMap::at(row_stride - 1)
                .term("t", row_stride, active)
                .term("k", chain_len, 4);
            intervals.push(BarrierInterval {
                label: format!("cr_read[l={level}]"),
                accesses: vec![SmemAccess {
                    site: "baseline::cr_read",
                    is_write: false,
                    map: map.clone(),
                    displacements: vec![-((row_stride / 2) as isize), 0, (row_stride / 2) as isize],
                    clamp_row: Some(chain_len),
                    owner: None,
                    thread_coeff: row_stride,
                }],
            });
            intervals.push(BarrierInterval {
                label: format!("cr_write[l={level}]"),
                accesses: vec![SmemAccess {
                    site: "baseline::cr_write",
                    is_write: true,
                    map,
                    displacements: Vec::new(),
                    clamp_row: None,
                    owner: None,
                    thread_coeff: row_stride,
                }],
            });
            level += 1;
        }
        chain_len >> (level - 1)
    };
    match algo {
        BaselineAlgo::Pcr => pcr_intervals(&mut intervals, chain_len, 1),
        BaselineAlgo::Cr => {
            cr_levels(&mut intervals, 1);
        }
        BaselineAlgo::CrPcr { pcr_threshold } => {
            let reduced = cr_levels(&mut intervals, pcr_threshold.max(1));
            let row_stride = chain_len / reduced.max(1);
            pcr_intervals(&mut intervals, reduced.max(1), row_stride.max(1));
        }
    }
    KernelAccessSummary {
        label: format!("baseline[{chain_len}@{stride},{}]", algo.label()),
        buffer_len: m * n,
        block_threads: chain_len,
        smem_elems: 4 * chain_len,
        global: vec![
            GlobalAccess {
                site: "baseline::gather",
                is_write: false,
                map: chain.clone(),
                warp_stride: stride,
                clamped_neighbours: false,
                exclusive: false,
            },
            GlobalAccess {
                site: "baseline::store",
                is_write: true,
                map: chain,
                warp_stride: stride,
                clamped_neighbours: false,
                exclusive: true,
            },
        ],
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_bounds_are_exact() {
        let m = AffineMap::at(5).term("a", 3, 4).term("b", 12, 2);
        assert_eq!(m.min_index(), Some(5));
        assert_eq!(m.max_index(), Some(5 + 3 * 3 + 12));
        assert_eq!(m.points(), 8);
        let empty = AffineMap::at(0).term("a", 1, 0);
        assert!(empty.is_empty());
        assert_eq!(empty.max_index(), None);
    }

    #[test]
    fn chain_map_is_a_mixed_radix_bijection() {
        // parent·n + r + j·stride with chain_len·stride == n partitions
        // and exactly covers [0, m·n).
        for (m, n, stride) in [(3usize, 1024usize, 4usize), (1, 2048, 64), (7, 256, 1)] {
            let map = chain_map(m, n, stride, n / stride);
            assert!(map.is_injective(), "m={m} n={n} stride={stride}");
            assert!(map.covers_exactly(), "m={m} n={n} stride={stride}");
            assert_eq!(map.max_index(), Some(m * n - 1));
            assert_eq!(map.points(), m * n);
        }
    }

    #[test]
    fn broken_radix_is_not_injective() {
        // stride 4 chains of length 3 inside rows of 8: element 4 of
        // chain 0 collides with element 0 of... nothing — but the reach
        // test rejects the gap-free cover; construct a genuine collision:
        // coeff 2 with extent 3 overlaps coeff 1 with extent 3.
        let m = AffineMap::at(0).term("a", 1, 3).term("b", 2, 3);
        assert!(!m.is_injective());
        // Zero coefficient ⇒ every b collides.
        let z = AffineMap::at(0).term("a", 0, 2).term("b", 1, 4);
        assert!(!z.is_injective());
    }

    #[test]
    fn clamped_displacement_bound_uses_row_length() {
        // A CR-style displaced read: rows at stride 8, array term k.
        // Unclamped map max is (3·8+7) + 3·32; the clamp bounds the row
        // part by the full row length 32 instead.
        let a = SmemAccess {
            site: "test",
            is_write: false,
            map: AffineMap::at(7).term("t", 8, 4).term("k", 32, 4),
            displacements: vec![-4, 0, 4],
            clamp_row: Some(32),
            owner: None,
            thread_coeff: 8,
        };
        assert_eq!(a.max_elem(), Some(31 + 3 * 32));
        // Without a clamp the plain map bound applies.
        let b = SmemAccess {
            clamp_row: None,
            displacements: Vec::new(),
            ..a
        };
        assert_eq!(b.max_elem(), b.map.max_index());
    }

    #[test]
    fn summaries_cover_all_five_families() {
        let s1 = stage1_access_summary(4, 2048, 2);
        assert_eq!(s1.buffer_len, 4 * 2048);
        assert!(s1.global.iter().any(|g| g.is_write && g.exclusive));

        let s2 = stage2_access_summary(4, 2048, 4, 2);
        assert_eq!(s2.global[1].map.max_index(), Some(4 * 2048 - 1));
        assert!(s2.intervals.is_empty());

        let b = base_access_summary(4, 2048, 256, 8, 32, BaseVariant::Strided);
        assert_eq!(b.smem_elems, 4 * 256);
        // load + (read+write) per PCR step + thomas.
        assert_eq!(b.intervals.len(), 1 + 2 * 5 + 1);
        assert_eq!(b.global[0].warp_stride, 8);
        let bc = base_access_summary(4, 2048, 256, 8, 32, BaseVariant::Coalesced);
        assert_eq!(bc.global[0].warp_stride, 1);

        let r = repack_access_summary(2, 1024, 16);
        assert_eq!(r.smem_elems, 32 * 33);
        let u = unpack_access_summary(2, 1024, 16);
        assert_eq!(u.global[1].site, "unpack::scatter");

        let il = interleave_access_summary(65536, 64);
        assert_eq!(il.global[1].map.coeff_of("j"), 65536, "coefficient batch");
        let it = ithomas_access_summary(65536, 64);
        assert!(it.intervals.is_empty() && it.smem_elems == 0);
        assert!(it.global.iter().all(|g| g.warp_stride == 1));
        let dl = deinterleave_access_summary(65536, 64);
        assert_eq!(dl.global[1].site, "deinterleave::scatter");

        for algo in [
            BaselineAlgo::Pcr,
            BaselineAlgo::Cr,
            BaselineAlgo::CrPcr { pcr_threshold: 32 },
        ] {
            let s = baseline_access_summary(8, 256, 256, 1, algo);
            assert!(!s.intervals.is_empty(), "{algo:?}");
            assert_eq!(s.buffer_len, 8 * 256);
        }
    }

    #[test]
    fn interleaved_map_is_a_mixed_radix_bijection() {
        // s + j·m over s∈[0,m), j∈[0,n): injective, exactly covering
        // [0, m·n) — the property the write-partition proof relies on.
        for (m, n) in [(65536usize, 64usize), (100, 48), (32, 1)] {
            let map = interleaved_map(m, n);
            assert!(map.is_injective(), "m={m} n={n}");
            assert!(map.covers_exactly(), "m={m} n={n}");
            assert_eq!(map.max_index(), Some(m * n - 1));
            let back = system_major_map(m, n);
            assert!(back.is_injective() && back.covers_exactly());
        }
    }

    #[test]
    fn cr_levels_stay_in_bounds_and_widen_stride() {
        let s = baseline_access_summary(1, 256, 256, 1, BaselineAlgo::Cr);
        let mut max_coeff = 0;
        for iv in &s.intervals {
            for a in &iv.accesses {
                let hi = a.max_elem();
                assert!(hi.unwrap() < s.smem_elems, "{} in {}", a.site, iv.label);
                max_coeff = max_coeff.max(a.thread_coeff);
            }
        }
        assert!(max_coeff >= 64, "CR stride must widen, got {max_coeff}");
    }
}
