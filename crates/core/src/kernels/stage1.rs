//! Stage 1 — cooperative splitting.
//!
//! One PCR step at a given stride, applied to *every* equation of every
//! system by the whole machine: blocks cover contiguous equation ranges, so
//! all global accesses are coalesced, and the split factor of every system
//! doubles. Because the next step needs the values written by this one,
//! each step is its own kernel launch — the global synchronisation whose
//! fixed cost (launch overhead) is exactly why the paper leaves stage 1 as
//! soon as there are enough independent systems (§III-C).

use crate::kernels::{CoeffBuffers, GpuScalar};
use crate::params::{SPLIT_KERNEL_REGS_PER_THREAD, SPLIT_KERNEL_THREADS};
use crate::Result;
use trisolve_gpu_sim::{BlockIo, Gpu, KernelStats, LaunchConfig, OutMode};

/// Per-equation thread-operations of one PCR row update.
pub const PCR_OPS_PER_EQ: usize = 12;
/// Per-equation global loads of one PCR row update: own row plus two
/// neighbour rows, 4 values each. The neighbour streams overlap the own-row
/// stream and are staged through shared memory / caught by the texture
/// cache, so only `PCR_UNIQUE_LOADS_PER_EQ` of them are unique traffic.
pub const PCR_LOADS_PER_EQ: usize = 12;
/// Unique per-equation global loads of one PCR row update.
pub const PCR_UNIQUE_LOADS_PER_EQ: usize = 4;
/// Shared-memory accesses per equation for the neighbour staging.
pub const PCR_STAGING_SMEM_PER_EQ: usize = 12;
/// Per-equation global stores of one PCR row update.
pub const PCR_STORES_PER_EQ: usize = 4;

/// Launch geometry of one cooperative splitting step. The kernel launches
/// with exactly this configuration, so static validation of the config *is*
/// validation of the launch — the two cannot drift.
pub fn stage1_config(m: usize, n: usize, stride: usize) -> LaunchConfig {
    let total = m * n;
    let chunk = n.min(1024);
    let grid = total / chunk;
    LaunchConfig::new(
        format!("stage1[stride={stride}]"),
        grid,
        SPLIT_KERNEL_THREADS,
    )
    .with_regs(SPLIT_KERNEL_REGS_PER_THREAD)
}

/// Launch one cooperative splitting step: PCR at `stride` over a batch of
/// `m` systems of `n` (power-of-two) equations, reading `src` and writing
/// `dst`.
pub fn stage1_step<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    src: CoeffBuffers,
    dst: CoeffBuffers,
    m: usize,
    n: usize,
    stride: usize,
) -> Result<KernelStats> {
    debug_assert!(n.is_power_of_two());
    let chunk = n.min(1024);
    let cfg = stage1_config(m, n, stride);

    let outputs: Vec<_> = dst
        .iter()
        .map(|&b| (b, OutMode::Chunked { chunk }))
        .collect();

    let stats = gpu.launch(&cfg, &src, &outputs, |ctx, io| {
        let base = ctx.block_id as usize * chunk;
        // Fetch a full row, treating indices outside this equation's system
        // as identity rows (b = 1, everything else 0). Logical thread `tid`
        // owns element `tid` of the block's chunk.
        let row = |io: &BlockIo<T>, sys: usize, pos: isize, tid: usize| -> (T, T, T, T) {
            if pos < 0 || pos as usize >= n {
                (T::ZERO, T::ONE, T::ZERO, T::ZERO)
            } else {
                let g = sys * n + pos as usize;
                (
                    io.load(0, g, tid, "stage1::row"),
                    io.load(1, g, tid, "stage1::row"),
                    io.load(2, g, tid, "stage1::row"),
                    io.load(3, g, tid, "stage1::row"),
                )
            }
        };
        for i in 0..chunk {
            let g = base + i;
            let sys = g / n;
            let pos = (g % n) as isize;
            let (ai, bi, ci, di) = row(io, sys, pos, i);
            let (am, bm, cm, dm) = row(io, sys, pos - stride as isize, i);
            let (ap, bp, cp, dp) = row(io, sys, pos + stride as isize, i);
            let alpha = -ai / bm;
            let gamma = -ci / bp;
            io.store(0, i, alpha * am, i, "stage1::store");
            io.store(1, i, bi + alpha * cm + gamma * ap, i, "stage1::store");
            io.store(2, i, gamma * cp, i, "stage1::store");
            io.store(3, i, di + alpha * dm + gamma * dp, i, "stage1::store");
        }
        ctx.gmem_read_staged(PCR_LOADS_PER_EQ * chunk, PCR_UNIQUE_LOADS_PER_EQ * chunk, 1);
        ctx.gmem_write(PCR_STORES_PER_EQ * chunk, 1);
        ctx.smem(PCR_STAGING_SMEM_PER_EQ * chunk);
        ctx.ops(PCR_OPS_PER_EQ * chunk);
        ctx.sync();
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::pcr;
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

    fn upload(gpu: &mut Gpu<f64>, v: &[f64]) -> trisolve_gpu_sim::BufferId {
        gpu.alloc_from(v).unwrap()
    }

    #[test]
    fn matches_cpu_pcr_step() {
        let shape = WorkloadShape::new(3, 2048);
        let batch = random_dominant::<f64>(shape, 11).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let src = [
            upload(&mut gpu, &batch.a),
            upload(&mut gpu, &batch.b),
            upload(&mut gpu, &batch.c),
            upload(&mut gpu, &batch.d),
        ];
        let total = shape.total_equations();
        let dst = [
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
        ];
        for stride in [1usize, 2, 4] {
            stage1_step(&mut gpu, src, dst, 3, 2048, stride).unwrap();
            // CPU reference: apply one PCR step per system.
            for s in 0..3 {
                let sys = batch.system(s).unwrap();
                let n = 2048;
                let mut ea = vec![0.0; n];
                let mut eb = vec![0.0; n];
                let mut ec = vec![0.0; n];
                let mut ed = vec![0.0; n];
                pcr::pcr_step(
                    stride, &sys.a, &sys.b, &sys.c, &sys.d, &mut ea, &mut eb, &mut ec, &mut ed,
                );
                let ga = gpu.download(dst[0]).unwrap();
                let gb = gpu.download(dst[1]).unwrap();
                let gc = gpu.download(dst[2]).unwrap();
                let gd = gpu.download(dst[3]).unwrap();
                for i in 0..n {
                    let g = s * n + i;
                    assert!((ga[g] - ea[i]).abs() < 1e-12, "a stride={stride} i={i}");
                    assert!((gb[g] - eb[i]).abs() < 1e-12, "b stride={stride} i={i}");
                    assert!((gc[g] - ec[i]).abs() < 1e-12, "c stride={stride} i={i}");
                    assert!((gd[g] - ed[i]).abs() < 1e-12, "d stride={stride} i={i}");
                }
            }
        }
    }

    #[test]
    fn traffic_is_coalesced_and_proportional() {
        let shape = WorkloadShape::new(4, 1024);
        let batch = random_dominant::<f64>(shape, 1).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let src = [
            upload(&mut gpu, &batch.a),
            upload(&mut gpu, &batch.b),
            upload(&mut gpu, &batch.c),
            upload(&mut gpu, &batch.d),
        ];
        let total = shape.total_equations();
        let dst = [
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
            gpu.alloc(total).unwrap(),
        ];
        let stats = stage1_step(&mut gpu, src, dst, 4, 1024, 1).unwrap();
        let expect_read = (PCR_UNIQUE_LOADS_PER_EQ * total * 8) as f64;
        let expect_write = (PCR_STORES_PER_EQ * total * 8) as f64;
        assert_eq!(stats.totals.gmem_read_bytes, expect_read);
        assert_eq!(stats.totals.gmem_write_bytes, expect_write);
        // Staging captures most of the redundant neighbour reads, but the
        // missed fraction still moves across the bus.
        let eff = stats.totals.coalescing_efficiency();
        assert!(eff > 0.5 && eff <= 1.0, "efficiency {eff}");
        // Each launch pays overhead: this is the stage-1 penalty.
        assert!(stats.overhead_s > 0.0);
    }

    #[test]
    fn each_step_is_one_launch() {
        let shape = WorkloadShape::new(1, 4096);
        let batch = random_dominant::<f64>(shape, 2).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::geforce_8800_gtx());
        let src = [
            upload(&mut gpu, &batch.a),
            upload(&mut gpu, &batch.b),
            upload(&mut gpu, &batch.c),
            upload(&mut gpu, &batch.d),
        ];
        let dst = [
            gpu.alloc(4096).unwrap(),
            gpu.alloc(4096).unwrap(),
            gpu.alloc(4096).unwrap(),
            gpu.alloc(4096).unwrap(),
        ];
        stage1_step(&mut gpu, src, dst, 1, 4096, 1).unwrap();
        stage1_step(&mut gpu, dst, src, 1, 4096, 2).unwrap();
        assert_eq!(gpu.timeline().len(), 2);
    }
}
