//! Error type for the multi-stage solver.

use std::fmt;
use trisolve_gpu_sim::{SimError, ValidationReport};
use trisolve_tridiag::SolverError;

/// Errors from planning or executing a multi-stage solve.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid or device-incompatible solver parameters.
    BadParams {
        /// What was wrong.
        detail: String,
    },
    /// The tridiagonal algebra failed (zero pivot, bad shapes, …).
    Algebra(SolverError),
    /// The simulated device rejected a launch or allocation.
    Device(SimError),
    /// Static launch validation rejected the plan before any kernel ran:
    /// at least one of its launch configurations exceeds a device limit.
    PlanRejected {
        /// The full diagnostic report (errors plus any warnings).
        report: ValidationReport,
    },
    /// A kernel produced non-finite values (numerical breakdown inside the
    /// pivot-free GPU algorithm; use the CPU LU solver for such systems).
    NumericalBreakdown {
        /// Which kernel flagged the breakdown.
        kernel: String,
    },
    /// Every step of the resilience degradation chain failed (see
    /// [`crate::resilience`]): retries were exhausted on every plan and the
    /// CPU reference either failed or was not allowed by the policy.
    ResilienceExhausted {
        /// Total solve attempts across all chain steps.
        attempts: usize,
        /// The last failure observed (error message or residual report).
        last_error: String,
    },
}

impl CoreError {
    /// True for failures that a retry of the same operation can plausibly
    /// clear — currently exactly the transient device faults (see
    /// [`SimError::is_transient`]). Parameter, algebra and validation
    /// errors are deterministic: retrying them verbatim cannot succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::Device(e) if e.is_transient())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadParams { detail } => write!(f, "bad solver parameters: {detail}"),
            CoreError::Algebra(e) => write!(f, "algebra error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::PlanRejected { report } => {
                let total = report.errors().count();
                match report.errors().next() {
                    Some(first) => write!(
                        f,
                        "plan rejected by launch validation: {first}{}",
                        if total > 1 {
                            format!(" (+{} more)", total - 1)
                        } else {
                            String::new()
                        }
                    ),
                    None => write!(f, "plan rejected by launch validation"),
                }
            }
            CoreError::NumericalBreakdown { kernel } => {
                write!(f, "numerical breakdown in kernel `{kernel}`")
            }
            CoreError::ResilienceExhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "resilience chain exhausted after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Algebra(e) => Some(e),
            CoreError::Device(e) => Some(e),
            CoreError::PlanRejected { report } => Some(report),
            _ => None,
        }
    }
}

impl From<SolverError> for CoreError {
    fn from(e: SolverError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::{validate_launch, DeviceSpec, LaunchConfig};

    /// A report that actually rejects: one launch asking for far too many
    /// threads per block.
    fn rejecting_report() -> ValidationReport {
        let cfg = LaunchConfig::new("huge", 1, 1 << 20);
        let report = validate_launch(DeviceSpec::gtx_470().queryable(), &cfg);
        assert!(report.has_errors());
        report
    }

    #[test]
    fn conversions_and_display() {
        let e: CoreError = SolverError::EmptySystem.into();
        assert!(matches!(e, CoreError::Algebra(_)));
        assert!(e.to_string().contains("algebra"));

        let e: CoreError = SimError::InvalidBuffer { id: 1 }.into();
        assert!(matches!(e, CoreError::Device(_)));

        let e = CoreError::NumericalBreakdown {
            kernel: "base".into(),
        };
        assert!(e.to_string().contains("base"));
    }

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::BadParams {
                    detail: "onchip_size = 0".into(),
                },
                "bad solver parameters",
            ),
            (CoreError::Algebra(SolverError::EmptySystem), "algebra"),
            (
                CoreError::Device(SimError::InvalidBuffer { id: 7 }),
                "device error",
            ),
            (
                CoreError::PlanRejected {
                    report: rejecting_report(),
                },
                "plan rejected by launch validation",
            ),
            (
                CoreError::NumericalBreakdown {
                    kernel: "pcr".into(),
                },
                "numerical breakdown",
            ),
            (
                CoreError::ResilienceExhausted {
                    attempts: 9,
                    last_error: "residual 3.0e-1 over tolerance".into(),
                },
                "resilience chain exhausted after 9 attempts",
            ),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "`{s}` should contain `{needle}`");
        }
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: CoreError = SolverError::EmptySystem.into();
        assert!(e.source().is_some());
        let e: CoreError = SimError::InvalidBuffer { id: 1 }.into();
        assert!(e.source().is_some());
        let e = CoreError::PlanRejected {
            report: rejecting_report(),
        };
        let src = e.source().expect("rejected plan exposes its report");
        assert!(src.to_string().contains("threads"));
        let e = CoreError::BadParams { detail: "x".into() };
        assert!(e.source().is_none());
        let e = CoreError::ResilienceExhausted {
            attempts: 1,
            last_error: "x".into(),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn transience_follows_the_device_error() {
        assert!(
            CoreError::Device(SimError::TransientLaunchFailure { kernel: "k".into() })
                .is_transient()
        );
        assert!(CoreError::Device(SimError::KernelTimeout { kernel: "k".into() }).is_transient());
        assert!(!CoreError::Device(SimError::InvalidBuffer { id: 0 }).is_transient());
        assert!(!CoreError::BadParams { detail: "x".into() }.is_transient());
        assert!(!CoreError::Algebra(SolverError::EmptySystem).is_transient());
    }
}
