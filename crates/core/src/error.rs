//! Error type for the multi-stage solver.

use std::fmt;
use trisolve_gpu_sim::{SimError, ValidationReport};
use trisolve_tridiag::SolverError;

/// Errors from planning or executing a multi-stage solve.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid or device-incompatible solver parameters.
    BadParams {
        /// What was wrong.
        detail: String,
    },
    /// The tridiagonal algebra failed (zero pivot, bad shapes, …).
    Algebra(SolverError),
    /// The simulated device rejected a launch or allocation.
    Device(SimError),
    /// Static launch validation rejected the plan before any kernel ran:
    /// at least one of its launch configurations exceeds a device limit.
    PlanRejected {
        /// The full diagnostic report (errors plus any warnings).
        report: ValidationReport,
    },
    /// A kernel produced non-finite values (numerical breakdown inside the
    /// pivot-free GPU algorithm; use the CPU LU solver for such systems).
    NumericalBreakdown {
        /// Which kernel flagged the breakdown.
        kernel: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadParams { detail } => write!(f, "bad solver parameters: {detail}"),
            CoreError::Algebra(e) => write!(f, "algebra error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::PlanRejected { report } => {
                let total = report.errors().count();
                match report.errors().next() {
                    Some(first) => write!(
                        f,
                        "plan rejected by launch validation: {first}{}",
                        if total > 1 {
                            format!(" (+{} more)", total - 1)
                        } else {
                            String::new()
                        }
                    ),
                    None => write!(f, "plan rejected by launch validation"),
                }
            }
            CoreError::NumericalBreakdown { kernel } => {
                write!(f, "numerical breakdown in kernel `{kernel}`")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Algebra(e) => Some(e),
            CoreError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for CoreError {
    fn from(e: SolverError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = SolverError::EmptySystem.into();
        assert!(matches!(e, CoreError::Algebra(_)));
        assert!(e.to_string().contains("algebra"));

        let e: CoreError = SimError::InvalidBuffer { id: 1 }.into();
        assert!(matches!(e, CoreError::Device(_)));

        let e = CoreError::NumericalBreakdown {
            kernel: "base".into(),
        };
        assert!(e.to_string().contains("base"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: CoreError = SolverError::EmptySystem.into();
        assert!(e.source().is_some());
        let e = CoreError::BadParams { detail: "x".into() };
        assert!(e.source().is_none());
    }
}
