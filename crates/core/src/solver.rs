//! The one-shot solver entry points, built on [`crate::engine`]'s reusable
//! [`SolveSession`](crate::engine::SolveSession): pad, upload, execute the
//! plan's stage sequence with double-buffered coefficient arrays, download
//! and unpad. Callers that solve the same shape repeatedly should hold a
//! session (or a [`crate::engine::Backend`]) instead.

use crate::engine::SolveSession;
use crate::kernels::GpuScalar;
use crate::params::SolverParams;
use crate::plan::SolvePlan;
use crate::Result;
use trisolve_gpu_sim::{Gpu, KernelStats};
use trisolve_tridiag::workloads::WorkloadShape;
use trisolve_tridiag::{Scalar, SystemBatch};

/// The result of a multi-stage GPU solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome<T: Scalar> {
    /// Flat solution vector (system-major, original — unpadded — sizes).
    pub x: Vec<T>,
    /// Simulated seconds the solve took (kernel time + launch overheads;
    /// host⇄device transfers excluded, as in the paper's timings).
    pub sim_time_s: f64,
    /// Per-launch statistics, in execution order.
    pub kernel_stats: Vec<KernelStats>,
    /// The plan that was executed.
    pub plan: SolvePlan,
}

impl<T: Scalar> SolveOutcome<T> {
    /// Simulated milliseconds.
    pub fn sim_time_ms(&self) -> f64 {
        self.sim_time_s * 1e3
    }
}

/// Solve a batch of tridiagonal systems on the simulated GPU with the
/// multi-stage solver.
///
/// This is the crate's main entry point: it builds the Figure 1 plan for
/// `params`, pads systems to a power of two if needed, runs the stage
/// kernels, and returns the solution plus the simulated timing profile.
pub fn solve_batch_on_gpu<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> Result<SolveOutcome<T>> {
    let shape = WorkloadShape::new(batch.num_systems, batch.system_size);
    let mut session = SolveSession::new(gpu, shape)?;
    session.solve(gpu, batch, params)
    // The session drops here: its RAII buffer guards release every device
    // allocation — on the error path too, with no cleanup bookkeeping.
}

/// Solve and report only the simulated time — the measurement primitive the
/// dynamic tuner's micro-benchmarks use.
pub fn measure_solve_time<T: GpuScalar>(
    gpu: &mut Gpu<T>,
    batch: &SystemBatch<T>,
    params: &SolverParams,
) -> Result<f64> {
    Ok(solve_batch_on_gpu(gpu, batch, params)?.sim_time_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BaseVariant;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::norms::batch_worst_relative_residual;
    use trisolve_tridiag::workloads::{self, WorkloadShape};

    fn params(p1: usize, s3: usize, t4: usize, variant: BaseVariant) -> SolverParams {
        SolverParams {
            stage1_target_systems: p1,
            onchip_size: s3,
            thomas_switch: t4,
            variant,
        }
    }

    fn check(shape: WorkloadShape, p: &SolverParams, dev: DeviceSpec, tol: f64) {
        let batch = workloads::random_dominant::<f64>(shape, 77).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(dev);
        let out = solve_batch_on_gpu(&mut gpu, &batch, p).unwrap();
        assert_eq!(out.x.len(), shape.total_equations());
        let res = batch_worst_relative_residual(&batch, &out.x).unwrap();
        assert!(res < tol, "residual {res} for {}", shape.label());
        assert!(out.sim_time_s > 0.0);
        // All buffers freed.
        assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn small_systems_base_only() {
        check(
            WorkloadShape::new(64, 128),
            &params(16, 256, 32, BaseVariant::Strided),
            DeviceSpec::gtx_470(),
            1e-9,
        );
    }

    #[test]
    fn many_large_systems_stage2_path() {
        check(
            WorkloadShape::new(32, 2048),
            &params(16, 512, 64, BaseVariant::Strided),
            DeviceSpec::gtx_470(),
            1e-9,
        );
    }

    #[test]
    fn few_large_systems_full_pipeline() {
        // 2 systems of 8192: stage 1 (to 16 systems) + stage 2 + base.
        check(
            WorkloadShape::new(2, 8192),
            &params(16, 512, 128, BaseVariant::Strided),
            DeviceSpec::gtx_470(),
            1e-9,
        );
    }

    #[test]
    fn coalesced_variant_full_pipeline() {
        check(
            WorkloadShape::new(2, 8192),
            &params(16, 512, 128, BaseVariant::Coalesced),
            DeviceSpec::gtx_470(),
            1e-9,
        );
    }

    #[test]
    fn single_huge_system() {
        check(
            WorkloadShape::new(1, 65536),
            &params(16, 256, 64, BaseVariant::Strided),
            DeviceSpec::geforce_8800_gtx(),
            1e-9,
        );
    }

    #[test]
    fn non_power_of_two_padding_round_trip() {
        check(
            WorkloadShape::new(5, 1000),
            &params(16, 256, 32, BaseVariant::Strided),
            DeviceSpec::gtx_280(),
            1e-9,
        );
    }

    #[test]
    fn plan_launch_count_matches_profile() {
        let shape = WorkloadShape::new(2, 8192);
        let p = params(16, 512, 64, BaseVariant::Strided);
        let batch = workloads::random_dominant::<f64>(shape, 3).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let out = solve_batch_on_gpu(&mut gpu, &batch, &p).unwrap();
        assert_eq!(out.kernel_stats.len(), out.plan.num_launches());
        // 2 -> 16 systems: 3 stage-1 launches; remaining splits 8192->512 is
        // 4 total, so stage 2 does 1 step; plus base = 5 launches.
        assert_eq!(out.plan.stage1_steps, 3);
        assert_eq!(out.plan.stage2_steps, 1);
        assert_eq!(out.kernel_stats.len(), 5);
    }

    #[test]
    fn all_paper_devices_solve_the_paper_workloads_small() {
        // Scaled-down versions of the Figure 7 grid for test speed.
        for dev in DeviceSpec::paper_devices() {
            let s3 = SolverParams::max_onchip_size(dev.queryable(), 8).min(256);
            check(
                WorkloadShape::new(64, 1024),
                &params(16, s3, 32, BaseVariant::Strided),
                dev.clone(),
                1e-9,
            );
            check(
                WorkloadShape::new(1, 32768),
                &params(16, s3, 32, BaseVariant::Strided),
                dev,
                1e-9,
            );
        }
    }

    #[test]
    fn timing_profile_is_self_consistent() {
        let shape = WorkloadShape::new(8, 4096);
        let p = params(16, 512, 64, BaseVariant::Strided);
        let batch = workloads::random_dominant::<f64>(shape, 5).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let out = solve_batch_on_gpu(&mut gpu, &batch, &p).unwrap();
        let sum: f64 = out
            .kernel_stats
            .iter()
            .map(trisolve_gpu_sim::KernelStats::total_time_s)
            .sum();
        assert!((sum - out.sim_time_s).abs() < 1e-12);
    }

    #[test]
    fn measure_matches_solve() {
        let shape = WorkloadShape::new(16, 1024);
        let p = params(16, 256, 64, BaseVariant::Strided);
        let batch = workloads::random_dominant::<f64>(shape, 5).unwrap();
        let mut g1: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let mut g2: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let t1 = measure_solve_time(&mut g1, &batch, &p).unwrap();
        let t2 = solve_batch_on_gpu(&mut g2, &batch, &p).unwrap().sim_time_s;
        assert_eq!(t1, t2); // deterministic simulation
    }
}
