//! CPU cross-checks for the GPU solver: verify outcomes against the
//! pivoting LU reference (routed through the [`CpuBackend`] engine) and
//! replay a plan's algebra on the host.

use crate::engine::{Backend, CpuBackend};
use crate::kernels::GpuScalar;
use crate::plan::{SolvePlan, StageOp};
use crate::solver::SolveOutcome;
use crate::Result;
use trisolve_gpu_sim::CpuSpec;
use trisolve_tridiag::norms;
use trisolve_tridiag::{Scalar, SystemBatch};

/// Worst relative residual of a GPU outcome over every system of the batch.
pub fn verify_outcome<T: Scalar>(batch: &SystemBatch<T>, outcome: &SolveOutcome<T>) -> Result<f64> {
    Ok(norms::batch_worst_relative_residual(batch, &outcome.x)?)
}

/// Worst component-wise deviation between a GPU outcome and the LU
/// reference solution, obtained through the [`CpuBackend`] engine (the same
/// path `autotune` dispatches host solves to).
pub fn compare_with_lu<T: GpuScalar>(
    batch: &SystemBatch<T>,
    outcome: &SolveOutcome<T>,
) -> Result<f64> {
    let mut backend = CpuBackend::new(CpuSpec::core_i5_dual_3_4ghz());
    // Seed the session with the outcome's own plan: no re-validation
    // against a reference device the solve never ran on.
    let mut session = backend.prepare_with_plan(outcome.plan.clone());
    let reference = backend.solve(&mut session, batch, &outcome.plan.params)?;
    Ok(norms::max_abs_diff(&outcome.x, &reference.x))
}

/// Replay a plan's stage algebra entirely on the CPU: the same PCR split
/// schedule followed by per-chain PCR-Thomas. Used by tests to show the GPU
/// kernels compute *exactly* the planned algorithm (bit-for-bit in f64 up to
/// associativity-neutral operations), not merely something with a small
/// residual.
pub fn replay_plan_on_cpu<T: Scalar>(batch: &SystemBatch<T>, plan: &SolvePlan) -> Result<Vec<T>> {
    use trisolve_tridiag::pcr;
    use trisolve_tridiag::system::ChainView;
    use trisolve_tridiag::thomas::{solve_thomas_chain, ChainScratch};

    let m = batch.num_systems;
    let n = batch.system_size;
    let np = plan.padded_size;

    let total_steps = plan.stage1_steps + plan.stage2_steps;
    let (chain_len, t4) = match plan.ops.last().expect("plans always end with a base solve") {
        StageOp::BaseSolve {
            chain_len,
            thomas_chains,
            ..
        } => (*chain_len, *thomas_chains),
        _ => unreachable!("plans always end with BaseSolve"),
    };

    let mut x_all = Vec::with_capacity(m * n);
    let mut scratch = ChainScratch::new();
    for s in 0..m {
        let sys = batch.system(s)?;
        // Pad like the GPU driver does.
        let mut a = sys.a.clone();
        let mut b = sys.b.clone();
        let mut c = sys.c.clone();
        let mut d = sys.d.clone();
        a.resize(np, T::ZERO);
        b.resize(np, T::ONE);
        c.resize(np, T::ZERO);
        d.resize(np, T::ZERO);
        let padded = trisolve_tridiag::TridiagonalSystem::new(a, b, c, d)?;

        // Global splitting (stages 1+2).
        let split = pcr::pcr_split(&padded, total_steps)?;
        debug_assert_eq!(split.stride, plan.split_factor);

        // Per-chain base solve (stages 3+4).
        let mut x = vec![T::ZERO; np];
        for chain in split.chains() {
            // PCR within the chain to t4 subsystems...
            let ga = chain.gather(&split.a);
            let gb = chain.gather(&split.b);
            let gc = chain.gather(&split.c);
            let gd = chain.gather(&split.d);
            let local = trisolve_tridiag::TridiagonalSystem::new(ga, gb, gc, gd)?;
            let steps = t4.min(chain_len).trailing_zeros();
            let lsplit = pcr::pcr_split(&local, steps)?;
            let mut lx = vec![T::ZERO; chain_len];
            for sub in ChainView::chains_of(0, chain_len, t4.min(chain_len)) {
                solve_thomas_chain(
                    &sub,
                    &lsplit.a,
                    &lsplit.b,
                    &lsplit.c,
                    &lsplit.d,
                    &mut lx,
                    &mut scratch,
                )?;
            }
            chain.scatter(&lx, &mut x);
        }
        x_all.extend_from_slice(&x[..n]);
    }
    Ok(x_all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BaseVariant, SolverParams};
    use crate::solver::solve_batch_on_gpu;
    use trisolve_gpu_sim::{DeviceSpec, Gpu};
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

    #[test]
    fn gpu_solver_matches_cpu_replay_exactly() {
        let shape = WorkloadShape::new(3, 4096);
        let batch = random_dominant::<f64>(shape, 55).unwrap();
        let params = SolverParams {
            stage1_target_systems: 16,
            onchip_size: 512,
            thomas_switch: 64,
            variant: BaseVariant::Strided,
        };
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        let out = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
        let replay = replay_plan_on_cpu(&batch, &out.plan).unwrap();
        // Same arithmetic in the same order: results agree to roundoff-free
        // identity in all but degenerate cancellation cases.
        for (i, (u, v)) in out.x.iter().zip(&replay).enumerate() {
            assert!(
                (u - v).abs() <= 1e-12 * (1.0 + v.abs()),
                "i={i}: gpu {u} vs replay {v}"
            );
        }
    }

    #[test]
    fn verify_and_compare_helpers() {
        let shape = WorkloadShape::new(4, 512);
        let batch = random_dominant::<f64>(shape, 2).unwrap();
        let params = SolverParams::default_untuned();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_280());
        let out = solve_batch_on_gpu(&mut gpu, &batch, &params).unwrap();
        assert!(verify_outcome(&batch, &out).unwrap() < 1e-10);
        assert!(compare_with_lu(&batch, &out).unwrap() < 1e-8);
    }
}
