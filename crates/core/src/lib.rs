#![warn(missing_docs)]

//! # trisolve-core
//!
//! The paper's primary contribution: a **multi-stage tridiagonal solver**
//! that handles workloads from many small systems to a single system filling
//! global memory, running on the simulated GPU of `trisolve-gpu-sim`.
//!
//! The solver composes four stages (paper §III, Figure 1):
//!
//! 1. **Stage 1 — cooperative splitting** (`kernels::stage1`): all
//!    processors cooperate to PCR-split the systems one step per *kernel
//!    launch* (a global synchronisation each time). Used only while there
//!    are too few independent systems to keep the machine busy.
//! 2. **Stage 2 — independent splitting** (`kernels::stage2`): one block per
//!    (sub)system, splitting in global memory down to the on-chip size with
//!    block-local synchronisation only — a single launch.
//! 3. **Stage 3 — on-chip PCR** (`kernels::base_kernel`): each block gathers
//!    one subsystem into shared memory and PCR-splits it until there are
//!    `thomas_switch` independent serial chains.
//! 4. **Stage 4 — Thomas**: each thread solves one chain serially,
//!    work-optimally.
//!
//! The three *switch points* between stages plus the base kernel's memory
//! layout variant form [`params::SolverParams`] — the tuning space explored
//! by `trisolve-autotune`.

pub mod engine;
pub mod error;
pub mod kernels;
pub mod params;
pub mod plan;
pub mod reference;
pub mod resilience;
pub mod solver;

pub use engine::{
    Backend, CpuBackend, CpuSession, GpuBackend, SolveSession, StageTimeline, StageTimelineEntry,
};
pub use error::CoreError;
pub use params::{BaseVariant, SolverParams, BASE_KERNEL_REGS_PER_THREAD};
pub use plan::{SolvePlan, StageOp};
pub use resilience::{RecoveryAction, RecoveryEvent, ResiliencePolicy, ResilientOutcome};
pub use solver::{solve_batch_on_gpu, SolveOutcome};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
