//! Resilient solving: retries, residual-verified recovery, and graceful
//! degradation to the CPU reference.
//!
//! The paper's pipeline assumes every launch succeeds and every PCR split
//! is numerically benign. A production solver cannot: transient device
//! faults happen (see [`trisolve_gpu_sim::fault`]) and PCR/CR lose accuracy
//! on non-diagonally-dominant systems where pivoted LU does not. This
//! module wraps [`SolveSession::solve`] in a [`ResiliencePolicy`]:
//!
//! 1. **Retries with backoff** — transient device errors (injected launch
//!    failures, watchdog timeouts, spurious OOM) are retried up to
//!    [`ResiliencePolicy::max_retries`] times per chain step, charging
//!    exponential backoff to the *simulated* clock so recovery cost is
//!    visible in `sim_time`.
//! 2. **Residual verification** — every solve that returns is checked:
//!    `‖A·x − d‖∞ / ‖d‖∞` must not exceed
//!    [`ResiliencePolicy::residual_tolerance`]. Silent corruption (ECC bit
//!    flips, transfer corruption) fails this check and triggers a retry —
//!    re-uploading the coefficients repairs corrupted device buffers.
//! 3. **Graceful degradation** — when a step's retries are exhausted (or it
//!    fails non-transiently) the chain falls back:
//!    tuned plan → default plan (§IV-B) → alternate memory layout →
//!    CPU LU reference (partial pivoting, stable on systems the pivot-free
//!    GPU algorithm cannot handle).
//!
//! Every recovery action emits a `resilience` trace event (`fault` events
//! come from the injector itself): `retry`, `fallback` and `residual`
//! instants plus `retries` / `fallbacks` / `residual_checks` /
//! `residual_failures` counters, all rolled up by
//! [`trisolve_obs::MetricsReport`].

use crate::engine::{Backend, CpuBackend, SolveSession};
use crate::error::CoreError;
use crate::kernels::GpuScalar;
use crate::params::{BaseVariant, SolverParams};
use crate::solver::SolveOutcome;
use crate::Result;
use trisolve_gpu_sim::{CpuSpec, Gpu};
use trisolve_obs::{arg, Tracer};
use trisolve_tridiag::norms::batch_worst_relative_residual;
use trisolve_tridiag::SystemBatch;

/// How hard to fight for a solution before giving up.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Extra attempts per degradation-chain step after the first (so a
    /// step makes at most `max_retries + 1` attempts).
    pub max_retries: usize,
    /// Backoff charged to the simulated clock before retry `k` of a step:
    /// `backoff_base_s * 2^(k-1)` seconds.
    pub backoff_base_s: f64,
    /// Acceptance threshold for the worst relative residual
    /// `‖A·x − d‖∞ / ‖d‖∞` over the batch. A non-finite residual always
    /// fails.
    pub residual_tolerance: f64,
    /// Fall back to the paper's default parameters (§IV-B) when the tuned
    /// plan keeps failing.
    pub try_default_plan: bool,
    /// Fall back to the tuned plan with the opposite base-kernel memory
    /// layout (strided ↔ coalesced) — sidesteps layout-correlated faults.
    pub try_alternate_layout: bool,
    /// Last resort: solve on the CPU with pivoted LU.
    pub cpu_fallback: bool,
}

impl Default for ResiliencePolicy {
    /// Two retries per step, 100 simulated µs base backoff, a residual
    /// tolerance of `1e-4` (safe for `f32`; tighten for `f64` with
    /// [`ResiliencePolicy::for_elem_bytes`]), full degradation chain.
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_s: 100e-6,
            residual_tolerance: 1e-4,
            try_default_plan: true,
            try_alternate_layout: true,
            cpu_fallback: true,
        }
    }
}

impl ResiliencePolicy {
    /// The default policy with a residual tolerance matched to the element
    /// width: `1e-4` for 4-byte floats, `1e-8` for 8-byte.
    #[must_use]
    pub fn for_elem_bytes(elem_bytes: usize) -> Self {
        Self {
            residual_tolerance: if elem_bytes <= 4 { 1e-4 } else { 1e-8 },
            ..Self::default()
        }
    }

    /// Set the retry budget per chain step.
    #[must_use]
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Set the residual acceptance threshold.
    #[must_use]
    pub fn with_residual_tolerance(mut self, tol: f64) -> Self {
        self.residual_tolerance = tol;
        self
    }

    /// Set the base backoff charged to the simulated clock per retry.
    #[must_use]
    pub fn with_backoff_base_s(mut self, seconds: f64) -> Self {
        self.backoff_base_s = seconds;
        self
    }

    /// Enable or disable the CPU last-resort step.
    #[must_use]
    pub fn with_cpu_fallback(mut self, enabled: bool) -> Self {
        self.cpu_fallback = enabled;
        self
    }

    /// GPU-only policy: no plan fallbacks, no CPU — retries only. Useful
    /// for isolating what a single plan survives.
    #[must_use]
    pub fn retries_only(retries: usize) -> Self {
        Self {
            max_retries: retries,
            try_default_plan: false,
            try_alternate_layout: false,
            cpu_fallback: false,
            ..Self::default()
        }
    }
}

/// What one recovery action was, for the structured report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The step was re-attempted after a transient fault or a rejected
    /// residual.
    Retry,
    /// The chain moved on to the next degradation step.
    Fallback,
    /// A solve returned but its residual exceeded the tolerance.
    ResidualReject,
    /// A solve returned and its residual passed: this is the result.
    Accepted,
}

/// One entry of the recovery narrative.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Which chain step acted (`"tuned-plan"`, `"default-plan"`,
    /// `"alternate-layout"`, `"cpu-reference"`).
    pub step: &'static str,
    /// What happened.
    pub action: RecoveryAction,
    /// Specifics: the error retried past, the residual value, …
    pub detail: String,
}

/// A successful resilient solve: the outcome plus how it was won.
#[derive(Debug, Clone)]
pub struct ResilientOutcome<T: GpuScalar> {
    /// The accepted solve (solution, simulated time, plan, stats).
    pub outcome: SolveOutcome<T>,
    /// The verified worst relative residual of the accepted solution.
    pub residual: f64,
    /// Which chain step produced it.
    pub recovered_by: &'static str,
    /// Total solve attempts, the successful one included.
    pub attempts: usize,
    /// Re-attempts after transient faults or rejected residuals.
    pub retries: usize,
    /// Chain steps abandoned before the accepted one.
    pub fallbacks: usize,
    /// The full recovery narrative, in order.
    pub events: Vec<RecoveryEvent>,
}

impl<T: GpuScalar> ResilientOutcome<T> {
    /// True when the solve needed no recovery at all: first step, first
    /// attempt.
    #[must_use]
    pub fn first_try(&self) -> bool {
        self.retries == 0 && self.fallbacks == 0
    }
}

/// The degradation chain a policy unrolls for a tuned parameter point:
/// deduplicated, in fallback order, CPU step excluded.
fn chain(params: &SolverParams, policy: &ResiliencePolicy) -> Vec<(&'static str, SolverParams)> {
    let mut steps: Vec<(&'static str, SolverParams)> = vec![("tuned-plan", *params)];
    if policy.try_default_plan {
        let d = SolverParams::default_untuned();
        if steps.iter().all(|(_, p)| *p != d) {
            steps.push(("default-plan", d));
        }
    }
    if policy.try_alternate_layout {
        let mut alt = *params;
        alt.variant = match alt.variant {
            BaseVariant::Strided => BaseVariant::Coalesced,
            // A persistently faulting interleaved fast path degrades to the
            // staged pipeline in its safe default layout.
            BaseVariant::Coalesced | BaseVariant::Interleaved => BaseVariant::Strided,
        };
        if steps.iter().all(|(_, p)| *p != alt) {
            steps.push(("alternate-layout", alt));
        }
    }
    steps
}

impl<T: GpuScalar> SolveSession<T> {
    /// Solve under a [`ResiliencePolicy`]: retry transient faults with
    /// backoff, verify every result's residual, degrade through
    /// tuned → default → alternate-layout → CPU-reference until one step
    /// produces an accepted solution.
    ///
    /// With no faults injected and a first-attempt residual under
    /// tolerance, the returned outcome is bit-identical to
    /// [`SolveSession::solve`] — the residual check reads the solution on
    /// the host and costs no simulated time.
    ///
    /// # Errors
    ///
    /// [`CoreError::ResilienceExhausted`] when every permitted step fails;
    /// the message carries the last failure. Errors in the host-side
    /// residual computation itself (shape mismatches) propagate as-is.
    pub fn solve_resilient(
        &mut self,
        gpu: &mut Gpu<T>,
        batch: &SystemBatch<T>,
        params: &SolverParams,
        policy: &ResiliencePolicy,
    ) -> Result<ResilientOutcome<T>> {
        let tracer = gpu.tracer().clone();
        let steps = chain(params, policy);
        let mut attempts = 0usize;
        let mut retries = 0usize;
        let mut fallbacks = 0usize;
        let mut events: Vec<RecoveryEvent> = Vec::new();
        let mut last_error = String::from("no attempt was permitted by the policy");

        for (step_idx, (step, p)) in steps.iter().enumerate() {
            if step_idx > 0 {
                fallbacks += 1;
                emit_fallback(&tracer, gpu, steps[step_idx - 1].0, step, &last_error);
                events.push(RecoveryEvent {
                    step,
                    action: RecoveryAction::Fallback,
                    detail: last_error.clone(),
                });
            }
            let mut attempt = 0usize;
            loop {
                attempts += 1;
                match self.solve(gpu, batch, p) {
                    Ok(outcome) => {
                        let residual = batch_worst_relative_residual(batch, &outcome.x)?;
                        let accepted = residual <= policy.residual_tolerance;
                        emit_residual(&tracer, gpu, step, residual, policy, accepted);
                        if accepted {
                            events.push(RecoveryEvent {
                                step,
                                action: RecoveryAction::Accepted,
                                detail: format!("residual {residual:.3e}"),
                            });
                            return Ok(ResilientOutcome {
                                outcome,
                                residual,
                                recovered_by: step,
                                attempts,
                                retries,
                                fallbacks,
                                events,
                            });
                        }
                        last_error = format!(
                            "residual {residual:.3e} exceeds tolerance {:.1e} under `{step}`",
                            policy.residual_tolerance
                        );
                        events.push(RecoveryEvent {
                            step,
                            action: RecoveryAction::ResidualReject,
                            detail: last_error.clone(),
                        });
                    }
                    Err(e) if e.is_transient() => last_error = e.to_string(),
                    Err(e) => {
                        // Deterministic failure: retrying this step verbatim
                        // cannot succeed, move down the chain.
                        last_error = e.to_string();
                        break;
                    }
                }
                if attempt >= policy.max_retries {
                    break;
                }
                attempt += 1;
                retries += 1;
                // Exponential backoff, charged to the simulated clock; the
                // retry's re-upload also repairs corrupted device buffers.
                let backoff_s = policy.backoff_base_s * f64::from(1u32 << (attempt - 1).min(20));
                gpu.advance_clock(backoff_s);
                emit_retry(&tracer, gpu, step, attempt, backoff_s, &last_error);
                events.push(RecoveryEvent {
                    step,
                    action: RecoveryAction::Retry,
                    detail: last_error.clone(),
                });
            }
        }

        if policy.cpu_fallback {
            fallbacks += 1;
            let from = steps.last().map_or("tuned-plan", |(s, _)| s);
            emit_fallback(&tracer, gpu, from, "cpu-reference", &last_error);
            events.push(RecoveryEvent {
                step: "cpu-reference",
                action: RecoveryAction::Fallback,
                detail: last_error.clone(),
            });
            attempts += 1;
            match self.cpu_reference_solve(gpu, batch) {
                Ok(outcome) => {
                    let residual = batch_worst_relative_residual(batch, &outcome.x)?;
                    let accepted = residual <= policy.residual_tolerance;
                    emit_residual(&tracer, gpu, "cpu-reference", residual, policy, accepted);
                    if accepted {
                        events.push(RecoveryEvent {
                            step: "cpu-reference",
                            action: RecoveryAction::Accepted,
                            detail: format!("residual {residual:.3e}"),
                        });
                        return Ok(ResilientOutcome {
                            outcome,
                            residual,
                            recovered_by: "cpu-reference",
                            attempts,
                            retries,
                            fallbacks,
                            events,
                        });
                    }
                    last_error = format!(
                        "CPU reference residual {residual:.3e} exceeds tolerance {:.1e} \
                         (system effectively singular at this precision)",
                        policy.residual_tolerance
                    );
                }
                Err(e) => last_error = format!("CPU reference failed: {e}"),
            }
        }

        Err(CoreError::ResilienceExhausted {
            attempts,
            last_error,
        })
    }

    /// The chain's last resort: sequential pivoted LU on the host, timed by
    /// the calibrated CPU model, with the record-keeping plan built against
    /// this session's device.
    fn cpu_reference_solve(
        &mut self,
        gpu: &Gpu<T>,
        batch: &SystemBatch<T>,
    ) -> Result<SolveOutcome<T>> {
        let mut cpu = CpuBackend::new(CpuSpec::core_i5_dual_3_4ghz())
            .with_reference_device(gpu.spec().queryable().clone());
        let p = SolverParams::default_untuned();
        let mut session = Backend::<T>::prepare(&mut cpu, self.shape(), &p)?;
        Backend::<T>::solve(&mut cpu, &mut session, batch, &p)
    }
}

/// Emit a `retry` instant plus counter (no-op without a tracer).
fn emit_retry<T: GpuScalar>(
    tracer: &Tracer,
    gpu: &Gpu<T>,
    step: &str,
    attempt: usize,
    backoff_s: f64,
    error: &str,
) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.instant(
        "resilience",
        "retry",
        gpu.elapsed_s() * 1e6,
        vec![
            arg("step", step.to_string()),
            arg("attempt", attempt),
            arg("backoff_s", backoff_s),
            arg("error", error.to_string()),
        ],
    );
    tracer.counter_add("retries", 1);
}

/// Emit a `fallback` instant plus counter (no-op without a tracer).
fn emit_fallback<T: GpuScalar>(tracer: &Tracer, gpu: &Gpu<T>, from: &str, to: &str, reason: &str) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.instant(
        "resilience",
        "fallback",
        gpu.elapsed_s() * 1e6,
        vec![
            arg("from", from.to_string()),
            arg("to", to.to_string()),
            arg("reason", reason.to_string()),
        ],
    );
    tracer.counter_add("fallbacks", 1);
}

/// Emit a `residual` instant plus counters (no-op without a tracer).
fn emit_residual<T: GpuScalar>(
    tracer: &Tracer,
    gpu: &Gpu<T>,
    step: &str,
    residual: f64,
    policy: &ResiliencePolicy,
    accepted: bool,
) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.instant(
        "resilience",
        "residual",
        gpu.elapsed_s() * 1e6,
        vec![
            arg("step", step.to_string()),
            arg("value", residual),
            arg("tolerance", policy.residual_tolerance),
            arg("accepted", u64::from(accepted)),
        ],
    );
    tracer.counter_add("residual_checks", 1);
    if !accepted {
        tracer.counter_add("residual_failures", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::{DeviceSpec, FaultPlan, SimError};
    use trisolve_tridiag::workloads::{random_dominant, WorkloadShape};

    fn setup(plan: FaultPlan) -> (Gpu<f64>, SolveSession<f64>, SystemBatch<f64>) {
        let shape = WorkloadShape::new(4, 512);
        let batch = random_dominant::<f64>(shape, 42).unwrap();
        let mut gpu: Gpu<f64> = Gpu::new(DeviceSpec::gtx_470());
        gpu.enable_faults(plan);
        let session = SolveSession::new(&mut gpu, shape).unwrap();
        (gpu, session, batch)
    }

    fn policy() -> ResiliencePolicy {
        ResiliencePolicy::for_elem_bytes(8)
    }

    #[test]
    fn clean_run_is_first_try_and_matches_plain_solve() {
        let params = SolverParams::default_untuned();
        let (mut gpu, mut session, batch) = setup(FaultPlan::disabled());
        let r = session
            .solve_resilient(&mut gpu, &batch, &params, &policy())
            .unwrap();
        assert!(r.first_try());
        assert_eq!(r.recovered_by, "tuned-plan");
        assert_eq!(r.attempts, 1);
        assert!(r.residual <= 1e-8);

        let (mut gpu2, mut session2, _) = setup(FaultPlan::disabled());
        let plain = session2.solve(&mut gpu2, &batch, &params).unwrap();
        assert_eq!(plain.x, r.outcome.x, "bit-identical to plain solve");
        assert_eq!(
            plain.sim_time_s.to_bits(),
            r.outcome.sim_time_s.to_bits(),
            "bit-identical simulated time"
        );
    }

    #[test]
    fn transient_launch_failures_are_retried_with_backoff() {
        let params = SolverParams::default_untuned();
        let plan = FaultPlan::seeded(7)
            .with_launch_failures(1.0)
            .with_max_faults(2);
        let (mut gpu, mut session, batch) = setup(plan);
        let before = gpu.elapsed_s();
        let r = session
            .solve_resilient(&mut gpu, &batch, &params, &policy())
            .unwrap();
        assert_eq!(r.recovered_by, "tuned-plan");
        assert_eq!(r.retries, 2);
        assert_eq!(r.attempts, 3);
        assert_eq!(r.fallbacks, 0);
        // Backoff was charged to the simulated clock: 100µs + 200µs beyond
        // the solve itself.
        assert!(gpu.elapsed_s() - before > 300e-6);
    }

    #[test]
    fn persistent_faults_degrade_to_cpu_reference() {
        let params = SolverParams::default_untuned();
        let plan = FaultPlan::seeded(3).with_launch_failures(1.0);
        let (mut gpu, mut session, batch) = setup(plan);
        let r = session
            .solve_resilient(&mut gpu, &batch, &params, &policy())
            .unwrap();
        assert_eq!(r.recovered_by, "cpu-reference");
        assert!(r.fallbacks >= 1);
        assert!(r.residual <= 1e-8);
        assert!(r.outcome.kernel_stats.is_empty(), "no GPU kernels ran");
    }

    #[test]
    fn bit_flips_are_caught_by_residual_verification() {
        let params = SolverParams::default_untuned();
        // Seed 0 deterministically lands its single budgeted flip on a bit
        // that pushes the residual over tolerance (seeds whose flip hits a
        // low-order mantissa bit are accepted outright — correctly so).
        let plan = FaultPlan::seeded(0).with_bit_flips(1.0).with_max_faults(1);
        let (mut gpu, mut session, batch) = setup(plan);
        let r = session
            .solve_resilient(&mut gpu, &batch, &params, &policy())
            .unwrap();
        // The flip corrupts attempt 1; the residual check rejects it and
        // the clean retry wins.
        assert_eq!(r.recovered_by, "tuned-plan");
        assert_eq!(r.retries, 1);
        assert!(r
            .events
            .iter()
            .any(|e| e.action == RecoveryAction::ResidualReject));
        assert!(r.residual <= 1e-8);
    }

    #[test]
    fn exhausted_chain_fails_loudly() {
        let params = SolverParams::default_untuned();
        let plan = FaultPlan::seeded(9).with_launch_failures(1.0);
        let (mut gpu, mut session, batch) = setup(plan);
        let p = ResiliencePolicy::retries_only(1);
        let err = session
            .solve_resilient(&mut gpu, &batch, &params, &p)
            .unwrap_err();
        match err {
            CoreError::ResilienceExhausted {
                attempts,
                last_error,
            } => {
                assert_eq!(attempts, 2);
                assert!(last_error.contains("transient launch failure"));
            }
            other => panic!("expected ResilienceExhausted, got {other}"),
        }
    }

    #[test]
    fn chain_deduplicates_and_orders_steps() {
        let tuned = SolverParams {
            stage1_target_systems: 8,
            onchip_size: 512,
            thomas_switch: 64,
            variant: BaseVariant::Coalesced,
        };
        let steps = chain(&tuned, &ResiliencePolicy::default());
        let names: Vec<&str> = steps.iter().map(|(s, _)| *s).collect();
        assert_eq!(names, ["tuned-plan", "default-plan", "alternate-layout"]);
        // Tuned == default ⇒ the default step disappears.
        let steps = chain(
            &SolverParams::default_untuned(),
            &ResiliencePolicy::default(),
        );
        let names: Vec<&str> = steps.iter().map(|(s, _)| *s).collect();
        assert_eq!(names, ["tuned-plan", "alternate-layout"]);
    }

    #[test]
    fn recovery_emits_resilience_trace_events_and_counters() {
        let params = SolverParams::default_untuned();
        let plan = FaultPlan::seeded(7)
            .with_launch_failures(1.0)
            .with_max_faults(1);
        let (mut gpu, mut session, batch) = setup(plan);
        let tracer = Tracer::enabled();
        gpu.set_tracer(tracer.clone());
        session
            .solve_resilient(&mut gpu, &batch, &params, &policy())
            .unwrap();
        let events = tracer.events();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.cat == "resilience")
            .map(|e| e.name.as_str())
            .collect();
        assert!(names.contains(&"fault"));
        assert!(names.contains(&"retry"));
        assert!(names.contains(&"residual"));
        let counters = tracer.counters();
        assert!(counters.contains(&("retries", 1)));
        assert!(counters.contains(&("residual_checks", 1)));
        assert!(counters.contains(&("faults_injected", 1)));
    }

    #[test]
    fn transience_matching_is_what_the_retry_loop_relies_on() {
        assert!(
            CoreError::Device(SimError::TransientLaunchFailure { kernel: "k".into() })
                .is_transient()
        );
        assert!(!CoreError::BadParams { detail: "x".into() }.is_transient());
    }
}
