//! The Figure 1 decision workflow: given a workload `(m, n)`, a device and a
//! parameter set, produce the executable sequence of stage invocations.

use crate::error::CoreError;
use crate::kernels;
use crate::kernels::{
    base_config, deinterleave_config, interleave_config, ithomas_config, stage1_config,
    stage2_config,
};
use crate::params::{BaseVariant, SolverParams, INTERLEAVED_MIN_SYSTEMS};
use crate::Result;
use serde::Serialize;
use trisolve_gpu_sim::{validate_launches, LaunchConfig, QueryableProps, ValidationReport};
use trisolve_tridiag::workloads::WorkloadShape;

/// One stage invocation in a solve plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StageOp {
    /// One cooperative splitting launch: a single PCR step at the given
    /// parent stride, applied to every equation by the whole machine.
    /// `systems_now` independent subsystems exist *before* this step.
    Stage1Split {
        /// Parent stride of this PCR step (`2^step`).
        stride: usize,
        /// Independent subsystems before the step.
        systems_now: usize,
    },
    /// One independent-splitting launch: each block owns one chain and
    /// applies `steps` PCR steps with block-local synchronisation.
    Stage2Split {
        /// Number of independent chains (= blocks).
        chains: usize,
        /// Parent stride of each chain at entry.
        stride_in: usize,
        /// PCR steps to apply inside the launch.
        steps: u32,
    },
    /// The on-chip base kernel: one block per chain, PCR in shared memory to
    /// `thomas_chains` serial chains, then Thomas.
    BaseSolve {
        /// Number of chains (= blocks).
        chains: usize,
        /// Chain length (equations per block; the *stage-3 system size*).
        chain_len: usize,
        /// Parent stride of each chain.
        stride: usize,
        /// Serial chains per block handed to the Thomas phase (the
        /// stage-3→4 switch after clamping to the chain length).
        thomas_chains: usize,
        /// Memory-layout variant.
        variant: BaseVariant,
    },
    /// Transpose the batch from system-major into fully interleaved layout
    /// (element `j` of system `s` moves to `j·systems + s`) — the entry op
    /// of the stage-skip [`BaseVariant::Interleaved`] plan.
    InterleavePack {
        /// Number of systems (`batch`, the interleaved map's coefficient).
        systems: usize,
        /// Padded equations per system.
        size: usize,
    },
    /// The single-kernel batched-Thomas solve over the interleaved batch:
    /// one thread per system, no PCR stages at all.
    InterleavedThomas {
        /// Number of systems (= threads).
        systems: usize,
        /// Padded equations per system.
        size: usize,
    },
    /// Transpose the interleaved solution back to system-major layout —
    /// the exit op of the stage-skip plan.
    Deinterleave {
        /// Number of systems.
        systems: usize,
        /// Padded equations per system.
        size: usize,
    },
}

/// An executable multi-stage solve plan.
#[derive(Debug, Clone, Serialize)]
pub struct SolvePlan {
    /// The workload this plan solves.
    pub shape: WorkloadShape,
    /// System size after padding to a power of two.
    pub padded_size: usize,
    /// Parameters the plan was built from.
    pub params: SolverParams,
    /// Number of stage-1 launches.
    pub stage1_steps: u32,
    /// Number of PCR steps performed by the single stage-2 launch (0 = no
    /// stage-2 launch).
    pub stage2_steps: u32,
    /// Final on-chip subsystem length.
    pub chain_len: usize,
    /// Total split factor (`padded_size / chain_len`).
    pub split_factor: usize,
    /// The ordered stage invocations.
    pub ops: Vec<StageOp>,
}

impl SolvePlan {
    /// Build the plan for a workload on a device.
    ///
    /// Mirrors the paper's workflow (Figure 1):
    /// * systems already fitting on-chip go straight to the base kernel;
    /// * with at least `stage1_target_systems` independent systems, stage 2
    ///   splits each system independently in one launch;
    /// * otherwise stage 1 splits cooperatively (one launch per step) until
    ///   the target count is reached, then stage 2 finishes the splitting.
    ///
    /// ```
    /// use trisolve_core::{SolvePlan, SolverParams};
    /// use trisolve_gpu_sim::DeviceSpec;
    /// use trisolve_tridiag::workloads::WorkloadShape;
    ///
    /// // One 2M-equation system on a GTX 470 with default parameters:
    /// // stage 1 runs until 16 subsystems exist, stage 2 finishes the
    /// // splitting, the base kernel solves 8192 chains of 256.
    /// let plan = SolvePlan::build(
    ///     WorkloadShape::new(1, 2 * 1024 * 1024),
    ///     &SolverParams::default_untuned(),
    ///     DeviceSpec::gtx_470().queryable(),
    ///     4,
    /// ).unwrap();
    /// assert_eq!(plan.stage1_steps, 4);
    /// assert_eq!(plan.stage2_steps, 9);
    /// assert_eq!(plan.num_launches(), 6); // 4 + 1 + base kernel
    /// assert_eq!(plan.split_factor, 8192);
    /// ```
    pub fn build(
        shape: WorkloadShape,
        params: &SolverParams,
        device: &QueryableProps,
        elem_bytes: usize,
    ) -> Result<SolvePlan> {
        params.validate(device, elem_bytes)?;
        if shape.num_systems == 0 || shape.system_size == 0 {
            return Err(CoreError::BadParams {
                detail: "workload must have at least one system and one equation".into(),
            });
        }
        let m = shape.num_systems;
        let n = shape.system_size.next_power_of_two();

        // The stage-skip fast path: no splitting, no on-chip stage — repack
        // into interleaved layout, one batched-Thomas launch, repack back.
        // Only admissible with at least a warp's worth of systems, otherwise
        // the layout's coalescing premise (consecutive threads own
        // consecutive systems) collapses.
        if params.variant == BaseVariant::Interleaved {
            if m < INTERLEAVED_MIN_SYSTEMS {
                return Err(CoreError::BadParams {
                    detail: format!(
                        "Interleaved layout needs >= {INTERLEAVED_MIN_SYSTEMS} systems, got {m}"
                    ),
                });
            }
            let ops = vec![
                StageOp::InterleavePack {
                    systems: m,
                    size: n,
                },
                StageOp::InterleavedThomas {
                    systems: m,
                    size: n,
                },
                StageOp::Deinterleave {
                    systems: m,
                    size: n,
                },
            ];
            return Ok(SolvePlan {
                shape,
                padded_size: n,
                params: *params,
                stage1_steps: 0,
                stage2_steps: 0,
                chain_len: n,
                split_factor: 1,
                ops,
            });
        }

        let chain_len = params.onchip_size.min(n);
        let split_factor = n / chain_len;
        let total_split_steps = split_factor.trailing_zeros();

        // Stage 1 runs while independent systems < target, up to the number
        // of splits available.
        let mut stage1_steps = 0u32;
        if split_factor > 1 {
            let mut systems = m;
            while systems < params.stage1_target_systems && stage1_steps < total_split_steps {
                systems *= 2;
                stage1_steps += 1;
            }
        }
        let stage2_steps = total_split_steps - stage1_steps;

        let mut ops = Vec::new();
        let mut stride = 1usize;
        let mut systems = m;
        for _ in 0..stage1_steps {
            ops.push(StageOp::Stage1Split {
                stride,
                systems_now: systems,
            });
            stride *= 2;
            systems *= 2;
        }
        if stage2_steps > 0 {
            ops.push(StageOp::Stage2Split {
                chains: systems,
                stride_in: stride,
                steps: stage2_steps,
            });
            stride <<= stage2_steps;
            systems <<= stage2_steps;
        }
        let thomas_chains = params.thomas_switch.min(chain_len);
        ops.push(StageOp::BaseSolve {
            chains: systems,
            chain_len,
            stride,
            thomas_chains,
            variant: if stride == 1 {
                // With unit stride both variants coincide; normalise.
                BaseVariant::Strided
            } else {
                params.variant
            },
        });

        Ok(SolvePlan {
            shape,
            padded_size: n,
            params: *params,
            stage1_steps,
            stage2_steps,
            chain_len,
            split_factor,
            ops,
        })
    }

    /// Total number of kernel launches this plan performs.
    pub fn num_launches(&self) -> usize {
        self.ops.len()
    }

    /// The launch configuration of every stage invocation, in execution
    /// order. Built by the *same* config constructors the kernels launch
    /// with, so validating these configurations is validating the actual
    /// launches — the two cannot drift.
    pub fn launch_configs(&self, elem_bytes: usize) -> Vec<LaunchConfig> {
        let m = self.shape.num_systems;
        let np = self.padded_size;
        self.ops
            .iter()
            .map(|op| match *op {
                StageOp::Stage1Split { stride, .. } => stage1_config(m, np, stride),
                StageOp::Stage2Split {
                    stride_in, steps, ..
                } => stage2_config(m, np, stride_in, steps),
                StageOp::BaseSolve {
                    chains,
                    chain_len,
                    stride,
                    thomas_chains,
                    variant,
                } => base_config(
                    chains,
                    chain_len,
                    stride,
                    thomas_chains,
                    variant,
                    elem_bytes,
                ),
                StageOp::InterleavePack { systems, size } => {
                    interleave_config(systems, size, elem_bytes)
                }
                StageOp::InterleavedThomas { systems, size } => {
                    ithomas_config(systems, size, elem_bytes)
                }
                StageOp::Deinterleave { systems, size } => {
                    deinterleave_config(systems, size, elem_bytes)
                }
            })
            .collect()
    }

    /// The affine access summary of every stage invocation, in execution
    /// order — the static mirror of what each launch touches. Built by
    /// constructors living next to the config builders
    /// ([`crate::kernels::access`]) and zipped 1:1 with
    /// [`Self::launch_configs`] by the `trisolve-analyze` prover.
    pub fn access_summaries(&self) -> Vec<kernels::access::KernelAccessSummary> {
        let m = self.shape.num_systems;
        let np = self.padded_size;
        self.ops
            .iter()
            .map(|op| match *op {
                StageOp::Stage1Split { stride, .. } => {
                    kernels::access::stage1_access_summary(m, np, stride)
                }
                StageOp::Stage2Split {
                    stride_in, steps, ..
                } => kernels::access::stage2_access_summary(m, np, stride_in, steps),
                StageOp::BaseSolve {
                    chain_len,
                    stride,
                    thomas_chains,
                    variant,
                    ..
                } => kernels::access::base_access_summary(
                    m,
                    np,
                    chain_len,
                    stride,
                    thomas_chains,
                    variant,
                ),
                StageOp::InterleavePack { systems, size } => {
                    kernels::access::interleave_access_summary(systems, size)
                }
                StageOp::InterleavedThomas { systems, size } => {
                    kernels::access::ithomas_access_summary(systems, size)
                }
                StageOp::Deinterleave { systems, size } => {
                    kernels::access::deinterleave_access_summary(systems, size)
                }
            })
            .collect()
    }

    /// Statically validate every launch of this plan against a device's
    /// queryable limits, *before* any kernel runs. Errors mean the device
    /// would reject a launch outright; warnings flag launches that run but
    /// under-utilise the machine (see [`trisolve_gpu_sim::validate_launch`]).
    pub fn validate(&self, device: &QueryableProps, elem_bytes: usize) -> ValidationReport {
        validate_launches(device, &self.launch_configs(elem_bytes))
    }

    /// Human-readable one-line summary, e.g.
    /// `1x2M: 4x stage1 + stage2(x8) + base[512@4096]`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.stage1_steps > 0 {
            parts.push(format!("{}x stage1", self.stage1_steps));
        }
        if self.stage2_steps > 0 {
            parts.push(format!("stage2(x{})", self.stage2_steps));
        }
        match self.ops.last() {
            Some(StageOp::BaseSolve {
                chain_len, stride, ..
            }) => parts.push(format!("base[{chain_len}@{stride}]")),
            Some(StageOp::Deinterleave { systems, size }) => {
                parts.push(format!(
                    "interleave + ithomas[{systems}x{size}] + deinterleave"
                ));
            }
            _ => {}
        }
        format!("{}: {}", self.shape.label(), parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    fn q470() -> QueryableProps {
        DeviceSpec::gtx_470().queryable().clone()
    }

    fn params(p1: usize, s3: usize, t4: usize) -> SolverParams {
        SolverParams {
            stage1_target_systems: p1,
            onchip_size: s3,
            thomas_switch: t4,
            variant: BaseVariant::Strided,
        }
    }

    #[test]
    fn small_systems_go_straight_to_base() {
        let plan = SolvePlan::build(
            WorkloadShape::new(1000, 256),
            &params(16, 512, 64),
            &q470(),
            4,
        )
        .unwrap();
        assert_eq!(plan.stage1_steps, 0);
        assert_eq!(plan.stage2_steps, 0);
        assert_eq!(plan.ops.len(), 1);
        assert!(matches!(
            plan.ops[0],
            StageOp::BaseSolve {
                chains: 1000,
                chain_len: 256,
                stride: 1,
                thomas_chains: 64,
                ..
            }
        ));
    }

    #[test]
    fn many_large_systems_use_stage2_only() {
        let plan = SolvePlan::build(
            WorkloadShape::new(1024, 4096),
            &params(16, 512, 64),
            &q470(),
            4,
        )
        .unwrap();
        assert_eq!(plan.stage1_steps, 0);
        assert_eq!(plan.stage2_steps, 3); // 4096 -> 512 is 3 halvings
        assert_eq!(plan.split_factor, 8);
        assert_eq!(plan.ops.len(), 2);
        assert!(matches!(
            plan.ops[1],
            StageOp::BaseSolve {
                chains: 8192,
                chain_len: 512,
                stride: 8,
                ..
            }
        ));
    }

    #[test]
    fn single_huge_system_uses_stage1_then_stage2() {
        let plan = SolvePlan::build(
            WorkloadShape::new(1, 2 * 1024 * 1024),
            &params(16, 512, 128),
            &q470(),
            4,
        )
        .unwrap();
        // 1 -> 16 systems needs 4 stage-1 steps; 2M/512 = 4096 = 2^12 total.
        assert_eq!(plan.stage1_steps, 4);
        assert_eq!(plan.stage2_steps, 8);
        assert_eq!(plan.num_launches(), 4 + 1 + 1);
        // Stage-1 strides double per step.
        let strides: Vec<usize> = plan
            .ops
            .iter()
            .filter_map(|op| match op {
                StageOp::Stage1Split { stride, .. } => Some(*stride),
                _ => None,
            })
            .collect();
        assert_eq!(strides, vec![1, 2, 4, 8]);
        assert!(matches!(
            plan.ops[4],
            StageOp::Stage2Split {
                chains: 16,
                stride_in: 16,
                steps: 8
            }
        ));
    }

    #[test]
    fn stage1_stops_when_fully_split() {
        // Tiny split budget: target 64 systems but only 2 splits available.
        let plan = SolvePlan::build(
            WorkloadShape::new(1, 1024),
            &params(64, 256, 32),
            &q470(),
            4,
        )
        .unwrap();
        assert_eq!(plan.stage1_steps, 2);
        assert_eq!(plan.stage2_steps, 0);
        assert_eq!(plan.split_factor, 4);
    }

    #[test]
    fn non_power_of_two_systems_are_padded() {
        let plan = SolvePlan::build(
            WorkloadShape::new(4, 1000),
            &params(16, 256, 32),
            &q470(),
            4,
        )
        .unwrap();
        assert_eq!(plan.padded_size, 1024);
        assert_eq!(plan.split_factor, 4);
    }

    #[test]
    fn thomas_switch_clamped_to_chain_length() {
        let plan =
            SolvePlan::build(WorkloadShape::new(8, 64), &params(16, 512, 128), &q470(), 4).unwrap();
        assert!(matches!(
            plan.ops[0],
            StageOp::BaseSolve {
                chain_len: 64,
                thomas_chains: 64,
                ..
            }
        ));
    }

    #[test]
    fn unit_stride_normalises_variant() {
        let mut p = params(16, 512, 64);
        p.variant = BaseVariant::Coalesced;
        let plan = SolvePlan::build(WorkloadShape::new(10, 512), &p, &q470(), 4).unwrap();
        assert!(matches!(
            plan.ops[0],
            StageOp::BaseSolve {
                variant: BaseVariant::Strided,
                ..
            }
        ));
        // But with real splitting the requested variant is preserved.
        let plan = SolvePlan::build(WorkloadShape::new(100, 4096), &p, &q470(), 4).unwrap();
        assert!(matches!(
            plan.ops.last().unwrap(),
            StageOp::BaseSolve {
                variant: BaseVariant::Coalesced,
                ..
            }
        ));
    }

    #[test]
    fn equation_conservation() {
        // chains * chain_len == m * padded_size for every plan.
        for (m, n) in [(1usize, 1 << 21), (7, 300), (1024, 1024), (3, 8192)] {
            let plan = SolvePlan::build(WorkloadShape::new(m, n), &params(16, 256, 64), &q470(), 4)
                .unwrap();
            if let Some(StageOp::BaseSolve {
                chains, chain_len, ..
            }) = plan.ops.last()
            {
                assert_eq!(chains * chain_len, m * plan.padded_size, "m={m} n={n}");
            } else {
                panic!("plan must end with BaseSolve");
            }
        }
    }

    #[test]
    fn interleaved_plan_skips_every_stage() {
        let mut p = params(16, 256, 32);
        p.variant = BaseVariant::Interleaved;
        let plan = SolvePlan::build(WorkloadShape::new(65536, 64), &p, &q470(), 4).unwrap();
        assert_eq!(plan.stage1_steps, 0);
        assert_eq!(plan.stage2_steps, 0);
        assert_eq!(plan.split_factor, 1);
        assert_eq!(plan.chain_len, 64);
        assert_eq!(
            plan.ops,
            vec![
                StageOp::InterleavePack {
                    systems: 65536,
                    size: 64
                },
                StageOp::InterleavedThomas {
                    systems: 65536,
                    size: 64
                },
                StageOp::Deinterleave {
                    systems: 65536,
                    size: 64
                },
            ]
        );
        // Configs and summaries stay zipped 1:1 with the ops.
        let cfgs = plan.launch_configs(4);
        let sums = plan.access_summaries();
        assert_eq!(cfgs.len(), 3);
        assert_eq!(sums.len(), 3);
        for (c, s) in cfgs.iter().zip(&sums) {
            assert_eq!(c.label, s.label);
        }
        assert!(!plan.validate(&q470(), 4).has_errors());
        assert!(plan.summary().contains("ithomas[65536x64]"));
    }

    #[test]
    fn interleaved_plan_pads_system_size() {
        let mut p = params(16, 256, 32);
        p.variant = BaseVariant::Interleaved;
        let plan = SolvePlan::build(WorkloadShape::new(1024, 48), &p, &q470(), 8).unwrap();
        assert_eq!(plan.padded_size, 64);
        assert!(matches!(
            plan.ops[1],
            StageOp::InterleavedThomas {
                systems: 1024,
                size: 64
            }
        ));
    }

    #[test]
    fn interleaved_rejects_tiny_batches() {
        let mut p = params(16, 256, 32);
        p.variant = BaseVariant::Interleaved;
        let err = SolvePlan::build(WorkloadShape::new(8, 64), &p, &q470(), 4);
        assert!(matches!(err, Err(CoreError::BadParams { .. })));
        // A full warp of systems is the floor.
        assert!(SolvePlan::build(WorkloadShape::new(32, 64), &p, &q470(), 4).is_ok());
    }

    #[test]
    fn empty_workload_rejected() {
        assert!(
            SolvePlan::build(WorkloadShape::new(0, 128), &params(16, 256, 32), &q470(), 4).is_err()
        );
    }

    #[test]
    fn summary_mentions_stages() {
        let plan = SolvePlan::build(
            WorkloadShape::new(1, 2 * 1024 * 1024),
            &params(16, 512, 128),
            &q470(),
            4,
        )
        .unwrap();
        let s = plan.summary();
        assert!(s.contains("stage1"));
        assert!(s.contains("stage2"));
        assert!(s.contains("base[512@4096]"));
    }
}
