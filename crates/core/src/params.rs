//! Solver parameters: the paper's three switch points plus the base-kernel
//! memory-layout variant. This is the tuning space.

use crate::error::CoreError;
use crate::Result;
use serde::{Deserialize, Serialize};
use trisolve_gpu_sim::QueryableProps;

/// Registers per thread used by the hybrid base kernel. The paper's §V text
/// ties the maximum on-chip system size to register pressure (256/512/1024
/// on the 8800/280/470); this constant reproduces those caps against each
/// device's register file.
pub const BASE_KERNEL_REGS_PER_THREAD: usize = 24;

/// Registers per thread used by the splitting kernels (stages 1 and 2).
pub const SPLIT_KERNEL_REGS_PER_THREAD: usize = 16;

/// Threads per block used by the splitting kernels.
pub const SPLIT_KERNEL_THREADS: usize = 256;

/// Minimum batch size for [`BaseVariant::Interleaved`]: with fewer systems
/// than a warp, consecutive threads cannot own consecutive systems and the
/// layout's coalescing premise collapses, so the plan builder refuses the
/// variant outright (and the tuners' pruning hook inherits the rule).
pub const INTERLEAVED_MIN_SYSTEMS: usize = 32;

/// Which base-kernel memory layout to use when subsystems are strided
/// chains of a larger parent system (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaseVariant {
    /// Gather the chain directly at its stride: the load is uncoalesced
    /// (transaction waste + issue serialisation), but the whole solve then
    /// runs from shared memory.
    Strided,
    /// Load contiguous tiles covering the chain (perfectly coalesced but
    /// over-fetching `stride`× the payload), staging through shared memory.
    Coalesced,
    /// Skip the staged pipeline entirely: repack the batch into fully
    /// *interleaved* layout (system `i`'s element `j` at `j·batch + i`),
    /// solve every system with one thread running the serial Thomas
    /// algorithm, and repack the solution back. Every global access is
    /// perfectly coalesced across the warp's systems, so this wins for
    /// huge batches of small systems (the many-small regime) despite the
    /// two extra transpose passes.
    Interleaved,
}

impl BaseVariant {
    /// Lower-case memory-layout name for trace labels. Tuner telemetry
    /// attaches this to every candidate evaluation so trace viewers can
    /// group rows by layout and distinguish all three variants.
    pub fn layout_name(self) -> &'static str {
        match self {
            BaseVariant::Strided => "strided",
            BaseVariant::Coalesced => "coalesced",
            BaseVariant::Interleaved => "interleaved",
        }
    }
}

/// The multi-stage solver's tunable parameters.
///
/// | Field | Paper name | Meaning |
/// |---|---|---|
/// | `stage1_target_systems` | stage-1→2 switch | keep cooperative-splitting until this many independent systems exist |
/// | `onchip_size` | stage-2→3 switch | largest subsystem solved in shared memory |
/// | `thomas_switch` | stage-3→4 switch | number of serial chains handed to the Thomas phase |
/// | `variant` | base-kernel choice | strided vs. coalesced chain loading |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SolverParams {
    /// Stage-1→2 switch point: stage 1 keeps splitting until the workload
    /// has at least this many independent systems.
    pub stage1_target_systems: usize,
    /// Stage-2→3 switch point: subsystems of at most this many equations are
    /// solved on-chip. Must be a power of two.
    pub onchip_size: usize,
    /// Stage-3→4 switch point: the on-chip PCR splits each subsystem into
    /// this many serial chains before switching to Thomas. Must be a power
    /// of two (clamped to the subsystem size at plan time).
    pub thomas_switch: usize,
    /// Base-kernel memory-layout variant.
    pub variant: BaseVariant,
}

impl SolverParams {
    /// The paper's machine-oblivious **default** parameters (§IV-B): an
    /// on-chip size of 256 ("the weakest architecture is only able to fit
    /// 256 elements at a time"), sixteen systems out of stage 1, and a
    /// warp-sized Thomas switch — values that must merely *work* everywhere.
    pub fn default_untuned() -> Self {
        Self {
            stage1_target_systems: 16,
            onchip_size: 256,
            thomas_switch: 32,
            variant: BaseVariant::Strided,
        }
    }

    /// Largest power-of-two subsystem size the base kernel can solve on-chip
    /// for a device, given the element width — limited by shared memory
    /// (four coefficient arrays), the register file and the block-size cap.
    ///
    /// This is a *machine-query* computation (it sees only
    /// [`QueryableProps`]) and is the static tuner's stage-2→3 guess.
    pub fn max_onchip_size(q: &QueryableProps, elem_bytes: usize) -> usize {
        let by_shmem = q.shared_mem_per_sm_bytes / (4 * elem_bytes);
        let by_regs = q.registers_per_sm / BASE_KERNEL_REGS_PER_THREAD;
        let by_threads = q.max_threads_per_block;
        let cap = by_shmem.min(by_regs).min(by_threads).max(1);
        prev_power_of_two(cap)
    }

    /// Validate against a device (and element width), so that every launch
    /// the plan will make is admissible.
    pub fn validate(&self, q: &QueryableProps, elem_bytes: usize) -> Result<()> {
        if !self.onchip_size.is_power_of_two() {
            return Err(CoreError::BadParams {
                detail: format!("onchip_size {} must be a power of two", self.onchip_size),
            });
        }
        if !self.thomas_switch.is_power_of_two() {
            return Err(CoreError::BadParams {
                detail: format!(
                    "thomas_switch {} must be a power of two",
                    self.thomas_switch
                ),
            });
        }
        if self.thomas_switch > self.onchip_size {
            return Err(CoreError::BadParams {
                detail: format!(
                    "thomas_switch {} exceeds onchip_size {}",
                    self.thomas_switch, self.onchip_size
                ),
            });
        }
        if self.stage1_target_systems == 0 {
            return Err(CoreError::BadParams {
                detail: "stage1_target_systems must be >= 1".into(),
            });
        }
        let max = Self::max_onchip_size(q, elem_bytes);
        if self.onchip_size > max {
            return Err(CoreError::BadParams {
                detail: format!(
                    "onchip_size {} exceeds device capacity {} on {} ({}‑byte elements)",
                    self.onchip_size, max, q.name, elem_bytes
                ),
            });
        }
        Ok(())
    }
}

/// Largest power of two `<= n` (`n >= 1`).
pub fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    let mut p = 1usize;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn default_params_valid_on_all_paper_devices_f32() {
        let p = SolverParams::default_untuned();
        for d in DeviceSpec::paper_devices() {
            p.validate(d.queryable(), 4)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
        }
    }

    #[test]
    fn max_onchip_size_reproduces_paper_caps() {
        // §V: 256 / 512 / 1024 for the 8800 / 280 / 470 (f32).
        assert_eq!(
            SolverParams::max_onchip_size(DeviceSpec::geforce_8800_gtx().queryable(), 4),
            256
        );
        assert_eq!(
            SolverParams::max_onchip_size(DeviceSpec::gtx_280().queryable(), 4),
            512
        );
        assert_eq!(
            SolverParams::max_onchip_size(DeviceSpec::gtx_470().queryable(), 4),
            1024
        );
    }

    #[test]
    fn f64_halves_the_shared_memory_cap() {
        // With 8-byte elements the 16 KB devices can only fit 512 elements
        // by shared memory; registers cap the 8800 at 256 first.
        assert_eq!(
            SolverParams::max_onchip_size(DeviceSpec::geforce_8800_gtx().queryable(), 8),
            256
        );
        assert_eq!(
            SolverParams::max_onchip_size(DeviceSpec::gtx_280().queryable(), 8),
            512
        );
        assert_eq!(
            SolverParams::max_onchip_size(DeviceSpec::gtx_470().queryable(), 8),
            1024
        );
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let q = DeviceSpec::gtx_470();
        let q = q.queryable();
        let base = SolverParams::default_untuned();

        let p = SolverParams {
            onchip_size: 300,
            ..base
        };
        assert!(p.validate(q, 4).is_err());

        let p = SolverParams {
            thomas_switch: 48,
            ..base
        };
        assert!(p.validate(q, 4).is_err());

        let p = SolverParams {
            thomas_switch: 512,
            onchip_size: 256,
            ..base
        };
        assert!(p.validate(q, 4).is_err());

        let p = SolverParams {
            stage1_target_systems: 0,
            ..base
        };
        assert!(p.validate(q, 4).is_err());
    }

    #[test]
    fn validation_rejects_oversized_onchip() {
        let d = DeviceSpec::geforce_8800_gtx();
        let p = SolverParams {
            onchip_size: 512,
            ..SolverParams::default_untuned()
        };
        assert!(matches!(
            p.validate(d.queryable(), 4),
            Err(CoreError::BadParams { .. })
        ));
    }

    #[test]
    fn prev_power_of_two_values() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(1000), 512);
        assert_eq!(prev_power_of_two(1024), 1024);
    }

    #[test]
    fn params_serialize_round_trip() {
        let p = SolverParams::default_untuned();
        let s = serde_json::to_string(&p).unwrap();
        let back: SolverParams = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
