//! Plan-level lints: structural invariants of a [`SolvePlan`] that the
//! builder is supposed to guarantee, re-proven here from the emitted op
//! sequence alone.
//!
//! A lint at [`LintLevel::Error`] marks a plan that is internally
//! inconsistent — stages out of the Figure 1 order, a broken stride
//! ladder, dead launches, or lost equations. These never fire on plans
//! built by [`SolvePlan::build`]; the linter exists to catch drift
//! between the builder and the kernels it schedules (and is exercised
//! against hand-corrupted plans in the fixture tests).

use serde::Serialize;
use trisolve_core::{SolvePlan, SolverParams, StageOp};
use trisolve_gpu_sim::{validate_launch, QueryableProps};

use crate::proof::Obligation;

/// Severity of a plan lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LintLevel {
    /// The plan is internally inconsistent and must not run.
    Error,
    /// The plan runs correctly but leaves something on the table.
    Advice,
}

/// One plan-level finding.
#[derive(Debug, Clone, Serialize)]
pub struct Lint {
    /// Severity.
    pub level: LintLevel,
    /// Stable machine-readable code, e.g. `"stride-ladder"`.
    pub code: &'static str,
    /// Human-readable explanation with the offending numbers.
    pub message: String,
}

impl Lint {
    fn error(code: &'static str, message: String) -> Self {
        Lint {
            level: LintLevel::Error,
            code,
            message,
        }
    }

    fn advice(code: &'static str, message: String) -> Self {
        Lint {
            level: LintLevel::Advice,
            code,
            message,
        }
    }
}

/// Lint a plan's op sequence for structural invariants.
///
/// Checks, in order:
///
/// * **stage order** — zero or more `Stage1Split`, then at most one
///   `Stage2Split`, then exactly one terminal `BaseSolve`;
/// * **stride ladder monotonicity** — stage-1 strides double from 1,
///   stage 2 enters at the next stride and applies `steps` further
///   halvings, and the base kernel's stride equals the ladder's top;
/// * **switch-point consistency** — `systems_now` doubles along stage 1,
///   `thomas_chains == thomas_switch.min(chain_len)`, and the
///   `chain_len` matches `onchip_size.min(padded_size)`;
/// * **dead stages** — a stage-1 launch scheduled after the target
///   system count is already reached, or a stage-2 launch with zero
///   steps, does work no later stage needs;
/// * **equation conservation** — the base kernel's
///   `chains * chain_len` must equal `num_systems * padded_size`.
///
/// An **interleaved** plan (the stage-skip fast path) is held to its own
/// invariants instead: exactly the pack → batched-Thomas → unpack triple,
/// every launch agreeing on the batch geometry, the batch at or above
/// [`trisolve_core::params::INTERLEAVED_MIN_SYSTEMS`], and equation
/// conservation (`systems * size == num_systems * padded_size`). Mixing
/// staged and interleaved launches in one plan is a `stage-order` error.
pub fn lint_plan(plan: &SolvePlan) -> Vec<Lint> {
    let mut lints = Vec::new();
    let p = &plan.params;
    let m = plan.shape.num_systems;

    let is_interleaved_op = |op: &StageOp| {
        matches!(
            op,
            StageOp::InterleavePack { .. }
                | StageOp::InterleavedThomas { .. }
                | StageOp::Deinterleave { .. }
        )
    };
    if plan.ops.iter().any(is_interleaved_op) {
        if !plan.ops.iter().all(is_interleaved_op) {
            lints.push(Lint::error(
                "stage-order",
                "staged and interleaved launches mixed in one plan".into(),
            ));
        }
        lint_interleaved(plan, &mut lints);
        return lints;
    }

    // Stage order.
    let mut seen_stage2 = false;
    let mut seen_base = false;
    for op in &plan.ops {
        match op {
            StageOp::Stage1Split { .. } if seen_stage2 || seen_base => {
                lints.push(Lint::error(
                    "stage-order",
                    "stage-1 launch scheduled after stage 2 or the base kernel".into(),
                ));
            }
            StageOp::Stage1Split { .. } => {}
            StageOp::Stage2Split { .. } => {
                if seen_stage2 {
                    lints.push(Lint::error(
                        "stage-order",
                        "more than one stage-2 launch in the plan".into(),
                    ));
                }
                if seen_base {
                    lints.push(Lint::error(
                        "stage-order",
                        "stage-2 launch scheduled after the base kernel".into(),
                    ));
                }
                seen_stage2 = true;
            }
            StageOp::BaseSolve { .. } => {
                if seen_base {
                    lints.push(Lint::error(
                        "stage-order",
                        "more than one base-kernel launch in the plan".into(),
                    ));
                }
                seen_base = true;
            }
            // Interleaved launches never reach this loop: plans containing
            // any are fully linted by `lint_interleaved` and returned above.
            _ => {}
        }
    }
    if !matches!(plan.ops.last(), Some(StageOp::BaseSolve { .. })) {
        lints.push(Lint::error(
            "stage-order",
            "plan does not end with the base kernel".into(),
        ));
    }

    // Stride ladder + switch points + dead stages + conservation.
    let mut stride = 1usize;
    let mut systems = m;
    for op in &plan.ops {
        match *op {
            StageOp::Stage1Split {
                stride: s,
                systems_now,
            } => {
                if s != stride {
                    lints.push(Lint::error(
                        "stride-ladder",
                        format!(
                            "stage-1 stride {s} breaks the doubling ladder (expected {stride})"
                        ),
                    ));
                }
                if systems_now != systems {
                    lints.push(Lint::error(
                        "switch-points",
                        format!(
                            "stage-1 reports {systems_now} systems where the ladder implies {systems}"
                        ),
                    ));
                }
                if systems_now >= p.stage1_target_systems {
                    lints.push(Lint::error(
                        "dead-stage",
                        format!(
                            "stage-1 launch with {systems_now} systems already at/above the \
                             target {}; the switch point was missed",
                            p.stage1_target_systems
                        ),
                    ));
                }
                stride = s.max(1) * 2;
                systems = systems_now.max(1) * 2;
            }
            StageOp::Stage2Split {
                chains,
                stride_in,
                steps,
            } => {
                if stride_in != stride {
                    lints.push(Lint::error(
                        "stride-ladder",
                        format!(
                            "stage-2 enters at stride {stride_in} but the ladder is at {stride}"
                        ),
                    ));
                }
                if chains != systems {
                    lints.push(Lint::error(
                        "switch-points",
                        format!("stage-2 owns {chains} chains where the ladder implies {systems}"),
                    ));
                }
                if steps == 0 {
                    lints.push(Lint::error(
                        "dead-stage",
                        "stage-2 launch with zero PCR steps does nothing".into(),
                    ));
                }
                stride = stride_in << steps;
                systems = chains << steps;
            }
            StageOp::BaseSolve {
                chains,
                chain_len,
                stride: s,
                thomas_chains,
                ..
            } => {
                if s != stride {
                    lints.push(Lint::error(
                        "stride-ladder",
                        format!("base kernel at stride {s} but the ladder is at {stride}"),
                    ));
                }
                if chains != systems {
                    lints.push(Lint::error(
                        "switch-points",
                        format!(
                            "base kernel owns {chains} chains where the ladder implies {systems}"
                        ),
                    ));
                }
                if chain_len != p.onchip_size.min(plan.padded_size) {
                    lints.push(Lint::error(
                        "switch-points",
                        format!(
                            "chain length {chain_len} does not match \
                             onchip_size.min(padded) = {}",
                            p.onchip_size.min(plan.padded_size)
                        ),
                    ));
                }
                if thomas_chains != p.thomas_switch.min(chain_len) {
                    lints.push(Lint::error(
                        "switch-points",
                        format!(
                            "thomas switch {thomas_chains} does not match \
                             thomas_switch.min(chain_len) = {}",
                            p.thomas_switch.min(chain_len)
                        ),
                    ));
                }
                if chains * chain_len != m * plan.padded_size {
                    lints.push(Lint::error(
                        "equation-conservation",
                        format!(
                            "{chains} chains x {chain_len} equations != \
                             {m} systems x {} padded size",
                            plan.padded_size
                        ),
                    ));
                }
            }
            // Interleaved launches: handled by `lint_interleaved` above.
            _ => {}
        }
    }

    // Advice: a fully split plan with more stage-1 launches than needed
    // to hit the target burns global bandwidth per extra step.
    if plan.stage1_steps > 0 && m >= p.stage1_target_systems {
        lints.push(Lint::advice(
            "stage1-overuse",
            format!(
                "{} stage-1 launches although the workload already has {m} \
                 independent systems (target {})",
                plan.stage1_steps, p.stage1_target_systems
            ),
        ));
    }

    lints
}

/// Lint the interleaved (stage-skip) op triple. Called by [`lint_plan`]
/// whenever a plan contains any interleaved launch.
fn lint_interleaved(plan: &SolvePlan, lints: &mut Vec<Lint>) {
    use trisolve_core::params::INTERLEAVED_MIN_SYSTEMS;
    let m = plan.shape.num_systems;

    let interleaved: Vec<&StageOp> = plan
        .ops
        .iter()
        .filter(|op| {
            matches!(
                op,
                StageOp::InterleavePack { .. }
                    | StageOp::InterleavedThomas { .. }
                    | StageOp::Deinterleave { .. }
            )
        })
        .collect();
    let well_ordered = matches!(
        interleaved.as_slice(),
        [
            StageOp::InterleavePack { .. },
            StageOp::InterleavedThomas { .. },
            StageOp::Deinterleave { .. },
        ]
    );
    if !well_ordered {
        lints.push(Lint::error(
            "stage-order",
            format!(
                "interleaved plan must be exactly pack -> batched Thomas -> unpack, \
                 got {} interleaved launch(es)",
                interleaved.len()
            ),
        ));
    }

    for op in interleaved {
        let (label, systems, size) = match *op {
            StageOp::InterleavePack { systems, size } => ("interleave", systems, size),
            StageOp::InterleavedThomas { systems, size } => ("ithomas", systems, size),
            StageOp::Deinterleave { systems, size } => ("deinterleave", systems, size),
            _ => continue,
        };
        if systems != m || size != plan.padded_size {
            lints.push(Lint::error(
                "switch-points",
                format!(
                    "{label} launch covers {systems}x{size} but the workload is \
                     {m}x{} (padded)",
                    plan.padded_size
                ),
            ));
        }
        if systems < INTERLEAVED_MIN_SYSTEMS {
            lints.push(Lint::error(
                "interleave-floor",
                format!(
                    "{label} launch over {systems} systems is below the interleaved \
                     batch floor {INTERLEAVED_MIN_SYSTEMS}"
                ),
            ));
        }
        if systems * size != m * plan.padded_size {
            lints.push(Lint::error(
                "equation-conservation",
                format!(
                    "{label}: {systems} systems x {size} equations != {m} systems x {} \
                     padded size",
                    plan.padded_size
                ),
            ));
        }
    }
    if !matches!(plan.ops.last(), Some(StageOp::Deinterleave { .. })) {
        lints.push(Lint::error(
            "stage-order",
            "interleaved plan does not end with the deinterleave launch".into(),
        ));
    }
}

/// Prove that the base kernel fits the device for *every* power-of-two
/// system size a workload could present, under the given parameters.
///
/// The plan builder clamps the chain length to
/// `onchip_size.min(padded_size)`, so the footprint is maximised at
/// `chain_len == onchip_size`; the sweep nevertheless walks every
/// power of two up to 2^22 (beyond the paper's largest workload) so the
/// proof covers the clamp itself, not just its endpoint. A failure
/// names the first size whose launch the device would refuse.
pub fn smem_budget_obligation(
    params: &SolverParams,
    q: &QueryableProps,
    elem_bytes: usize,
) -> Obligation {
    use trisolve_core::kernels::base_config;
    use trisolve_core::BaseVariant;

    let name = "smem-budget".to_string();
    for k in 0..=22u32 {
        let n = 1usize << k;
        let chain_len = params.onchip_size.min(n);
        let chains = (n / chain_len).max(1);
        let thomas = params.thomas_switch.min(chain_len);
        let cfg = base_config(
            chains,
            chain_len,
            n / chain_len,
            thomas,
            BaseVariant::Strided,
            elem_bytes,
        );
        let report = validate_launch(q, &cfg);
        if report.has_errors() {
            return Obligation {
                name,
                proven: false,
                detail: format!(
                    "size 2^{k}: base launch refused on {} ({})",
                    q.name,
                    report
                        .diagnostics
                        .iter()
                        .map(trisolve_gpu_sim::Diagnostic::site)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
        }
    }
    Obligation {
        name,
        proven: true,
        detail: format!(
            "base launch fits {} for every pow2 size up to 2^22 \
             (onchip_size {}, {} B elements)",
            q.name, params.onchip_size, elem_bytes
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::BaseVariant;
    use trisolve_gpu_sim::DeviceSpec;
    use trisolve_tridiag::workloads::WorkloadShape;

    fn params() -> SolverParams {
        SolverParams {
            stage1_target_systems: 16,
            onchip_size: 512,
            thomas_switch: 64,
            variant: BaseVariant::Strided,
        }
    }

    fn built_plan(m: usize, n: usize) -> SolvePlan {
        let dev = DeviceSpec::gtx_470();
        SolvePlan::build(WorkloadShape::new(m, n), &params(), dev.queryable(), 4).unwrap()
    }

    fn errors(lints: &[Lint]) -> Vec<&'static str> {
        lints
            .iter()
            .filter(|l| l.level == LintLevel::Error)
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn built_plans_lint_clean() {
        for (m, n) in [(1usize, 1 << 21), (1024, 1024), (4096, 4096), (7, 300)] {
            let lints = lint_plan(&built_plan(m, n));
            assert!(errors(&lints).is_empty(), "m={m} n={n}: {lints:?}");
        }
    }

    #[test]
    fn broken_stride_ladder_is_caught() {
        let mut plan = built_plan(1, 1 << 21);
        if let Some(StageOp::Stage1Split { stride, .. }) = plan.ops.get_mut(2) {
            *stride *= 2;
        } else {
            panic!("expected a stage-1 op");
        }
        assert!(errors(&lint_plan(&plan)).contains(&"stride-ladder"));
    }

    #[test]
    fn dead_stage2_is_caught() {
        let mut plan = built_plan(1024, 4096);
        if let Some(StageOp::Stage2Split { steps, .. }) = plan.ops.get_mut(0) {
            *steps = 0;
        } else {
            panic!("expected a stage-2 op");
        }
        assert!(errors(&lint_plan(&plan)).contains(&"dead-stage"));
    }

    #[test]
    fn reordered_stages_are_caught() {
        let mut plan = built_plan(1, 1 << 21);
        plan.ops.reverse();
        assert!(errors(&lint_plan(&plan)).contains(&"stage-order"));
    }

    #[test]
    fn lost_equations_are_caught() {
        let mut plan = built_plan(1024, 1024);
        if let Some(StageOp::BaseSolve { chains, .. }) = plan.ops.last_mut() {
            *chains /= 2;
        }
        let codes = errors(&lint_plan(&plan));
        assert!(codes.contains(&"equation-conservation"), "{codes:?}");
    }

    fn built_interleaved_plan(m: usize, n: usize) -> SolvePlan {
        let dev = DeviceSpec::gtx_470();
        let p = SolverParams {
            variant: BaseVariant::Interleaved,
            ..params()
        };
        SolvePlan::build(WorkloadShape::new(m, n), &p, dev.queryable(), 4).unwrap()
    }

    #[test]
    fn built_interleaved_plans_lint_clean() {
        for (m, n) in [(65536usize, 32usize), (16384, 64), (100, 48), (32, 1)] {
            let lints = lint_plan(&built_interleaved_plan(m, n));
            assert!(errors(&lints).is_empty(), "m={m} n={n}: {lints:?}");
        }
    }

    #[test]
    fn reordered_interleaved_ops_are_caught() {
        let mut plan = built_interleaved_plan(16384, 64);
        plan.ops.reverse();
        assert!(errors(&lint_plan(&plan)).contains(&"stage-order"));
    }

    #[test]
    fn interleaved_geometry_drift_is_caught() {
        let mut plan = built_interleaved_plan(16384, 64);
        if let Some(StageOp::InterleavedThomas { systems, .. }) = plan.ops.get_mut(1) {
            *systems /= 2;
        } else {
            panic!("expected the batched-Thomas op");
        }
        let codes = errors(&lint_plan(&plan));
        assert!(codes.contains(&"switch-points"), "{codes:?}");
        assert!(codes.contains(&"equation-conservation"), "{codes:?}");
    }

    #[test]
    fn interleaved_batch_floor_violation_is_caught() {
        let mut plan = built_interleaved_plan(16384, 64);
        for op in &mut plan.ops {
            match op {
                StageOp::InterleavePack { systems, .. }
                | StageOp::InterleavedThomas { systems, .. }
                | StageOp::Deinterleave { systems, .. } => *systems = 8,
                _ => {}
            }
        }
        plan.shape.num_systems = 8;
        assert!(errors(&lint_plan(&plan)).contains(&"interleave-floor"));
    }

    #[test]
    fn mixed_staged_and_interleaved_plan_is_caught() {
        let mut plan = built_interleaved_plan(16384, 64);
        let base = built_plan(16384, 64).ops.last().copied().unwrap();
        plan.ops.push(base);
        let codes = errors(&lint_plan(&plan));
        assert!(codes.contains(&"stage-order"), "{codes:?}");
    }

    #[test]
    fn smem_budget_proves_on_paper_devices() {
        for dev in DeviceSpec::paper_devices() {
            let q = dev.queryable();
            for eb in [4usize, 8] {
                let max = SolverParams::max_onchip_size(q, eb);
                let p = SolverParams {
                    onchip_size: max,
                    thomas_switch: 32.min(max),
                    ..params()
                };
                let ob = smem_budget_obligation(&p, q, eb);
                assert!(ob.proven, "{}: {}", q.name, ob.detail);
            }
        }
    }

    #[test]
    fn smem_budget_refutes_oversized_onchip() {
        let dev = DeviceSpec::geforce_8800_gtx();
        let p = SolverParams {
            onchip_size: 4096,
            thomas_switch: 64,
            ..params()
        };
        let ob = smem_budget_obligation(&p, dev.queryable(), 4);
        assert!(!ob.proven, "{}", ob.detail);
    }
}
