//! Whole-plan analysis reports and the tuner-facing rejection predicate.

use serde::Serialize;
use trisolve_core::{BaseVariant, SolvePlan, SolverParams, StageOp};
use trisolve_gpu_sim::QueryableProps;
use trisolve_tridiag::workloads::WorkloadShape;

use crate::conflict::{kernel_bank_summaries, predict_layout, BankSummary};
use crate::lints::{lint_plan, smem_budget_obligation, Lint, LintLevel};
use crate::proof::{prove_kernel, KernelProof, Obligation};

/// The complete static verdict on one `(device, plan)` point.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisReport {
    /// Workload + device label, e.g. `"1024x1024 on GeForce GTX 470"`.
    pub label: String,
    /// The plan's one-line summary.
    pub plan_summary: String,
    /// Sites of fatal launch-validation diagnostics (empty = admissible).
    pub validation_errors: Vec<String>,
    /// Plan-level lints (structural errors and advice).
    pub lints: Vec<Lint>,
    /// Per-kernel proof records, in launch order.
    pub proofs: Vec<KernelProof>,
    /// Worst-case bank-conflict degrees of every shared-memory site.
    pub banks: Vec<BankSummary>,
    /// The all-sizes shared-memory budget proof for the plan's params.
    pub budget: Obligation,
    /// The layout the conflict/occupancy model predicts for this workload
    /// (interleaved in the many-small window, else by the base kernel's
    /// stride), next to the layout the plan actually uses.
    pub predicted_variant: BaseVariant,
    /// The layout the plan schedules.
    pub planned_variant: BaseVariant,
}

impl AnalysisReport {
    /// True when every proof discharged: the plan is admissible, lint-
    /// error-free, OOB-free, race-free and within the all-sizes budget.
    ///
    /// Advisory lints, bank-conflict degrees and a variant-prediction
    /// mismatch do **not** block certification — they are performance
    /// observations, not safety facts.
    pub fn certified(&self) -> bool {
        self.validation_errors.is_empty()
            && self.lints.iter().all(|l| l.level != LintLevel::Error)
            && self.proofs.iter().all(KernelProof::proven)
            && self.budget.proven
    }

    /// Every failed proof, lint error and validation site, flattened to
    /// printable strings. Empty iff [`Self::certified`].
    pub fn failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .validation_errors
            .iter()
            .map(|s| format!("launch refused: {s}"))
            .collect();
        out.extend(
            self.lints
                .iter()
                .filter(|l| l.level == LintLevel::Error)
                .map(|l| format!("lint [{}]: {}", l.code, l.message)),
        );
        for p in &self.proofs {
            out.extend(
                p.failures()
                    .map(|o| format!("{}: {} ({})", p.label, o.name, o.detail)),
            );
        }
        if !self.budget.proven {
            out.push(format!("smem-budget: {}", self.budget.detail));
        }
        out
    }

    /// Total obligations checked across all kernels (plus the budget).
    pub fn obligations_checked(&self) -> usize {
        1 + self
            .proofs
            .iter()
            .map(|p| p.obligations.len())
            .sum::<usize>()
    }

    /// Worst bank-conflict degree across every shared-memory site.
    pub fn worst_bank_degree(&self) -> usize {
        self.banks.iter().map(|b| b.degree).max().unwrap_or(1)
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut lines = vec![format!(
            "{}: {} — {}",
            self.label,
            self.plan_summary,
            if self.certified() {
                "CERTIFIED"
            } else {
                "UNPROVEN"
            }
        )];
        lines.push(format!(
            "  {} obligations, worst bank degree {}, predicted {:?} (planned {:?})",
            self.obligations_checked(),
            self.worst_bank_degree(),
            self.predicted_variant,
            self.planned_variant,
        ));
        for f in self.failures() {
            lines.push(format!("  FAIL {f}"));
        }
        for l in self.lints.iter().filter(|l| l.level == LintLevel::Advice) {
            lines.push(format!("  advice [{}]: {}", l.code, l.message));
        }
        lines.join("\n")
    }
}

/// Analyze a built plan on a device: validation, lints, per-kernel
/// proofs, bank-conflict degrees and the all-sizes budget proof.
pub fn analyze_plan(plan: &SolvePlan, q: &QueryableProps, elem_bytes: usize) -> AnalysisReport {
    let validation = plan.validate(q, elem_bytes);
    let validation_errors: Vec<String> = validation
        .errors()
        .map(trisolve_gpu_sim::Diagnostic::site)
        .collect();
    let lints = lint_plan(plan);

    let summaries = plan.access_summaries();
    let configs = plan.launch_configs(elem_bytes);
    let proofs: Vec<KernelProof> = summaries
        .iter()
        .zip(&configs)
        .map(|(s, cfg)| prove_kernel(s, cfg, elem_bytes))
        .collect();
    let banks: Vec<BankSummary> = summaries
        .iter()
        .flat_map(|s| kernel_bank_summaries(s, q, elem_bytes))
        .collect();
    let budget = smem_budget_obligation(&plan.params, q, elem_bytes);

    let (base_stride, planned_variant) = plan
        .ops
        .iter()
        .find_map(|op| match *op {
            StageOp::BaseSolve {
                stride, variant, ..
            } => Some((stride, variant)),
            _ => None,
        })
        .unwrap_or((1, plan.params.variant));

    AnalysisReport {
        label: format!("{} on {}", plan.shape.label(), q.name),
        plan_summary: plan.summary(),
        validation_errors,
        lints,
        proofs,
        banks,
        budget,
        predicted_variant: predict_layout(plan.shape, base_stride, q, elem_bytes),
        planned_variant,
    }
}

/// Build the plan for `(shape, params)` and analyze it. A plan the
/// builder itself rejects yields the builder's error.
pub fn analyze_params(
    shape: WorkloadShape,
    params: &SolverParams,
    q: &QueryableProps,
    elem_bytes: usize,
) -> trisolve_core::Result<AnalysisReport> {
    let plan = SolvePlan::build(shape, params, q, elem_bytes)?;
    Ok(analyze_plan(&plan, q, elem_bytes))
}

/// The tuner-facing rejection predicate: `Some(reason)` iff the
/// execution engine's `SolveSession::plan_for` would refuse this
/// candidate without running a single kernel.
///
/// This mirrors `plan_for` *exactly* — plan construction
/// ([`SolvePlan::build`]) failing, or the built plan carrying a fatal
/// launch-validation diagnostic (`CoreError::PlanRejected`) — and
/// nothing else, so pruning on it cannot change which candidates the
/// tuner's cost function prices finitely, only *when* the `+inf` is
/// known. That is the bit-identical-output guarantee the auto-tuner's
/// pruning hook relies on.
pub fn statically_rejected(
    shape: WorkloadShape,
    params: &SolverParams,
    q: &QueryableProps,
    elem_bytes: usize,
) -> Option<String> {
    let plan = match SolvePlan::build(shape, params, q, elem_bytes) {
        Ok(plan) => plan,
        Err(e) => return Some(format!("plan construction rejected: {e}")),
    };
    let report = plan.validate(q, elem_bytes);
    if report.has_errors() {
        let sites: Vec<String> = report
            .errors()
            .map(trisolve_gpu_sim::Diagnostic::site)
            .collect();
        return Some(format!("launch validation rejected: {}", sites.join(", ")));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_gpu_sim::DeviceSpec;

    fn params() -> SolverParams {
        SolverParams::default_untuned()
    }

    #[test]
    fn paper_grid_certifies_on_every_device_and_layout() {
        use trisolve_core::params::INTERLEAVED_MIN_SYSTEMS;
        for dev in DeviceSpec::paper_devices() {
            let q = dev.queryable();
            for shape in WorkloadShape::paper_grid() {
                let mut variants = vec![BaseVariant::Strided, BaseVariant::Coalesced];
                // The interleaved family joins the sweep wherever the
                // builder admits it (the batch floor rules elsewhere).
                if shape.num_systems >= INTERLEAVED_MIN_SYSTEMS {
                    variants.push(BaseVariant::Interleaved);
                }
                for variant in variants {
                    let p = SolverParams {
                        variant,
                        ..params()
                    };
                    let report = analyze_params(shape, &p, q, 4).unwrap();
                    assert!(
                        report.certified(),
                        "{}: {:?}",
                        report.label,
                        report.failures()
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_plan_reports_its_layout_and_certifies() {
        let dev = DeviceSpec::gtx_470();
        let q = dev.queryable();
        let p = SolverParams {
            variant: BaseVariant::Interleaved,
            ..params()
        };
        let r = analyze_params(WorkloadShape::new(65536, 32), &p, q, 4).unwrap();
        assert!(r.certified(), "{:?}", r.failures());
        assert_eq!(r.planned_variant, BaseVariant::Interleaved);
        // Inside the many-small window the model agrees with the plan.
        assert_eq!(r.predicted_variant, BaseVariant::Interleaved);
        assert!(r.plan_summary.contains("ithomas"), "{}", r.plan_summary);
    }

    #[test]
    fn rejection_predicate_matches_the_plan_builder() {
        let dev = DeviceSpec::geforce_8800_gtx();
        let q = dev.queryable();
        let shape = WorkloadShape::new(32, 4096);
        // Admissible params: not rejected.
        assert_eq!(statically_rejected(shape, &params(), q, 4), None);
        // onchip_size above the machine cap: the builder refuses it.
        let too_big = SolverParams {
            onchip_size: 2048,
            ..params()
        };
        let reason = statically_rejected(shape, &too_big, q, 4);
        assert!(reason.is_some());
        assert!(
            SolvePlan::build(shape, &too_big, q, 4).is_err(),
            "predicate fired but the builder accepts"
        );
        // The exact iff: over a parameter sweep, rejection fires
        // precisely when build-or-validate fails.
        for onchip in [64usize, 128, 256, 512, 1024, 2048] {
            for thomas in [16usize, 32, 64] {
                let p = SolverParams {
                    onchip_size: onchip,
                    thomas_switch: thomas,
                    ..params()
                };
                let rejected = statically_rejected(shape, &p, q, 4).is_some();
                let engine_refuses = match SolvePlan::build(shape, &p, q, 4) {
                    Err(_) => true,
                    Ok(plan) => plan.validate(q, 4).has_errors(),
                };
                assert_eq!(rejected, engine_refuses, "onchip={onchip} thomas={thomas}");
            }
        }
    }

    #[test]
    fn report_render_names_the_verdict() {
        let dev = DeviceSpec::gtx_470();
        let r = analyze_params(
            WorkloadShape::new(1024, 1024),
            &params(),
            dev.queryable(),
            4,
        )
        .unwrap();
        let text = r.render();
        assert!(text.contains("CERTIFIED"), "{text}");
        assert!(text.contains("obligations"), "{text}");
    }

    #[test]
    fn corrupted_plan_is_not_certified() {
        let dev = DeviceSpec::gtx_470();
        let q = dev.queryable();
        let mut plan = SolvePlan::build(WorkloadShape::new(1, 1 << 21), &params(), q, 4).unwrap();
        plan.ops.reverse();
        let r = analyze_plan(&plan, q, 4);
        assert!(!r.certified());
        assert!(r.failures().iter().any(|f| f.contains("stage-order")));
    }

    #[test]
    fn strided_prediction_kicks_in_at_wide_strides() {
        // 1x2M with a 256 on-chip size splits 8192-way: stride far past
        // one transaction span, so the model predicts Strided.
        let dev = DeviceSpec::gtx_470();
        let r = analyze_params(
            WorkloadShape::new(1, 2 * 1024 * 1024),
            &params(),
            dev.queryable(),
            4,
        )
        .unwrap();
        assert_eq!(r.predicted_variant, BaseVariant::Strided);
    }
}
