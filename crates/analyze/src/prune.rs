//! Tuner search-space pruning from static proofs.
//!
//! The dynamic tuner's `onchip_size` axis is the expensive one: every
//! candidate costs a full micro-benchmarked solve. A candidate whose
//! base-kernel launch the device provably refuses (shared memory,
//! register file or block-size limits — all queryable) would be priced
//! `+inf` after a wasted plan-construction round trip. This module
//! derives the feasible ceiling *before* the search starts, by running
//! the same static launch validation the plan builder uses over every
//! power-of-two candidate up to a fixed theoretical ceiling.
//!
//! The pruning is exact, not heuristic:
//! [`validate_launch`](trisolve_gpu_sim::validate_launch) refuses the
//! base launch for a power-of-two size `v` if and only if
//! `v > SolverParams::max_onchip_size` (each of its three hard limits —
//! `smem-exceeded`, `regs-exceeded`, `block-too-large` — is one of the
//! three minima in that computation). The tuner's resulting axis is
//! therefore *identical* to the pre-pruning axis, and the tuned output
//! bit-identical; what changes is that the infeasible candidate class
//! is counted and reported instead of silently never tried.

use serde::Serialize;
use trisolve_core::kernels::base_config;
use trisolve_core::BaseVariant;
use trisolve_gpu_sim::{validate_launch, QueryableProps};

/// Theoretical ceiling of the `onchip_size` search: one power of two
/// above the largest value any shipped or near-future device profile
/// admits (the GTX 470 caps at 1024). Candidates between the device's
/// feasible maximum and this ceiling form the statically-pruned class.
pub const ONCHIP_SEARCH_CEILING: usize = 4096;

/// The outcome of statically pruning the `onchip_size` axis.
#[derive(Debug, Clone, Serialize)]
pub struct OnchipPrune {
    /// Largest power-of-two on-chip size whose base launch the device
    /// admits. Equals `SolverParams::max_onchip_size` by construction.
    pub feasible_max: usize,
    /// The pruned candidates: every power of two in
    /// `(feasible_max, ceiling]`, each with a proof of refusal.
    pub pruned: Vec<usize>,
    /// Total fatal diagnostics across the pruned candidates — each is
    /// one failed launch-admissibility proof.
    pub proofs_failed: usize,
}

/// Statically prune the power-of-two `onchip_size` axis on a device.
///
/// Walks every power of two from 1 to `ceiling`, validating the base
/// kernel's launch footprint (`v` threads, `4·v·elem_bytes` shared
/// bytes, 24 registers per thread) against the device's queryable
/// limits. Infeasible candidates land in [`OnchipPrune::pruned`]; the
/// grid dimension is fixed at `num_processors` (clamped to 1) — grid
/// size never constrains the on-chip axis, so the verdict depends only
/// on `v`.
pub fn prune_onchip_axis(q: &QueryableProps, elem_bytes: usize, ceiling: usize) -> OnchipPrune {
    let mut feasible_max = 1usize;
    let mut pruned = Vec::new();
    let mut proofs_failed = 0usize;
    let mut v = 1usize;
    while v <= ceiling {
        let thomas = v.min(32);
        let cfg = base_config(
            q.num_processors.max(1),
            v,
            1,
            thomas,
            BaseVariant::Strided,
            elem_bytes,
        );
        let report = validate_launch(q, &cfg);
        if report.has_errors() {
            pruned.push(v);
            proofs_failed += report.errors().count();
        } else {
            feasible_max = v;
        }
        match v.checked_mul(2) {
            Some(next) => v = next,
            None => break,
        }
    }
    OnchipPrune {
        feasible_max,
        pruned,
        proofs_failed,
    }
}

/// The outcome of statically pruning the base-layout axis for a workload.
#[derive(Debug, Clone, Serialize)]
pub struct LayoutPrune {
    /// Layouts whose plan the builder provably accepts for this shape.
    pub candidates: Vec<BaseVariant>,
    /// Layouts the builder provably refuses (each is one statically
    /// pruned candidate class).
    pub pruned: Vec<BaseVariant>,
}

/// Statically prune the base-layout axis for a workload shape.
///
/// Mirrors the plan builder exactly: the staged layouts (strided,
/// coalesced) are buildable for every shape, while the interleaved
/// fast path requires at least
/// [`INTERLEAVED_MIN_SYSTEMS`](trisolve_core::params::INTERLEAVED_MIN_SYSTEMS)
/// systems — below that the builder refuses the variant outright, so the
/// tuner can skip its phase-D probes without pricing a single candidate.
/// Like the on-chip pruning, this changes *when* the `+inf` verdict is
/// known, never the search result.
pub fn prune_layout_axis(shape: trisolve_tridiag::workloads::WorkloadShape) -> LayoutPrune {
    use trisolve_core::params::INTERLEAVED_MIN_SYSTEMS;
    let mut candidates = vec![BaseVariant::Strided, BaseVariant::Coalesced];
    let mut pruned = Vec::new();
    if shape.num_systems >= INTERLEAVED_MIN_SYSTEMS {
        candidates.push(BaseVariant::Interleaved);
    } else {
        pruned.push(BaseVariant::Interleaved);
    }
    LayoutPrune { candidates, pruned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::SolverParams;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn feasible_max_equals_the_machine_query_cap() {
        // The exactness claim in the module docs: the statically-proven
        // ceiling coincides with SolverParams::max_onchip_size on every
        // paper device, for both element widths.
        for dev in DeviceSpec::paper_devices() {
            let q = dev.queryable();
            for eb in [4usize, 8] {
                let p = prune_onchip_axis(q, eb, ONCHIP_SEARCH_CEILING);
                assert_eq!(
                    p.feasible_max,
                    SolverParams::max_onchip_size(q, eb),
                    "{} eb={eb}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn every_paper_device_prunes_at_least_one_class() {
        // The ceiling sits above every device cap, so each tuner run has
        // a non-empty statically-pruned candidate class to report.
        for dev in DeviceSpec::paper_devices() {
            let p = prune_onchip_axis(dev.queryable(), 4, ONCHIP_SEARCH_CEILING);
            assert!(!p.pruned.is_empty(), "{}", dev.queryable().name);
            assert!(p.proofs_failed >= p.pruned.len());
        }
    }

    #[test]
    fn layout_pruning_mirrors_the_plan_builder() {
        use trisolve_core::SolvePlan;
        use trisolve_tridiag::workloads::WorkloadShape;
        let dev = DeviceSpec::gtx_470();
        let q = dev.queryable();
        for m in [1usize, 8, 31, 32, 33, 1024, 65536] {
            let shape = WorkloadShape::new(m, 64);
            let prune = prune_layout_axis(shape);
            for variant in [
                BaseVariant::Strided,
                BaseVariant::Coalesced,
                BaseVariant::Interleaved,
            ] {
                let p = SolverParams {
                    variant,
                    ..SolverParams::default_untuned()
                };
                let buildable = SolvePlan::build(shape, &p, q, 4).is_ok();
                assert_eq!(
                    prune.candidates.contains(&variant),
                    buildable,
                    "m={m} {variant:?}"
                );
                assert_eq!(
                    prune.pruned.contains(&variant),
                    !buildable,
                    "m={m} {variant:?}"
                );
            }
        }
    }

    #[test]
    fn pruned_set_is_exactly_the_infeasible_tail() {
        let dev = DeviceSpec::gtx_470();
        let p = prune_onchip_axis(dev.queryable(), 4, ONCHIP_SEARCH_CEILING);
        assert_eq!(p.feasible_max, 1024);
        assert_eq!(p.pruned, vec![2048, 4096]);
        // The 8800's register file bites harder: a deeper pruned tail.
        let p8800 = prune_onchip_axis(
            DeviceSpec::geforce_8800_gtx().queryable(),
            4,
            ONCHIP_SEARCH_CEILING,
        );
        assert_eq!(p8800.feasible_max, 256);
        assert_eq!(p8800.pruned, vec![512, 1024, 2048, 4096]);
    }
}
