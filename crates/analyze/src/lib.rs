//! Static kernel & plan analyzer.
//!
//! Abstract interpretation over the kernel families of `trisolve-core`
//! (`base`, `stage1`, `stage2`, `repack`, `baselines`, and the
//! interleaved fast-path triple `interleave`/`ithomas`/`deinterleave`):
//! every [`StageOp`](trisolve_core::StageOp) contributes an affine
//! *access summary* ([`trisolve_core::kernels::access`]) — global and
//! shared index sets as functions of `system_size`, `num_systems`,
//! grid/block dimensions and PCR step — from which this crate statically
//! proves, for any `(device, plan, size)` point and without executing a
//! single simulated instruction:
//!
//! * **(a) OOB-freedom** of every global and shared access
//!   ([`proof::prove_kernel`]);
//! * **(b) inter-barrier race-freedom** of shared-memory writes, using
//!   the barrier-interval choreography each summary carries;
//! * **(c) per-warp bank-conflict degrees** and a **coalescing
//!   classification** predicting the layout winner — strided vs.
//!   coalesced by chain stride, and the interleaved batched-Thomas fast
//!   path inside the modeled many-small window ([`conflict`]);
//! * **(d) plan-level lints** — switch-point monotonicity, dead or
//!   unreachable stages, and a shared-memory budget proof across all
//!   power-of-two sizes per device ([`lints`]).
//!
//! The verdicts feed two consumers: `autotune`'s micro-benchmark harness
//! prunes provably-invalid candidates via [`statically_rejected`] and
//! [`prune::prune_onchip_axis`] before spending any simulated timing,
//! and the `trisolve analyze` subcommand sweeps the paper's fig5–8
//! matrix and exits nonzero on any unproven case. The dynamic sanitizer
//! (`gpu-sim::sanitizer`, DESIGN.md §3.6) is the ground truth the
//! analyzer is cross-validated against: a statically-certified case that
//! produces a dynamic hazard is a soundness bug, and the cross-validation
//! mode fails loudly on it.
//!
//! Like `gpu-sim::validate`, the analyzer reads only
//! [`QueryableProps`](trisolve_gpu_sim::QueryableProps) — the paper's
//! Table II information asymmetry is preserved: bank counts and
//! transaction sizes are *modeled* (documented constants), never read
//! from the hidden timing properties.

#![warn(missing_docs)]

pub mod conflict;
pub mod lints;
pub mod proof;
pub mod prune;
pub mod report;

pub use conflict::{
    bank_conflict_degree, classify_access, many_small_window, predict_layout, predict_variant,
    BankSummary, CoalesceClass, ANALYZER_TXN_BYTES,
};
pub use lints::{lint_plan, smem_budget_obligation, Lint, LintLevel};
pub use proof::{prove_kernel, KernelProof, Obligation};
pub use prune::{
    prune_layout_axis, prune_onchip_axis, LayoutPrune, OnchipPrune, ONCHIP_SEARCH_CEILING,
};
pub use report::{analyze_params, analyze_plan, statically_rejected, AnalysisReport};
