//! Bank-conflict counting and coalescing classification.
//!
//! These are *models*, not queries: the paper's Table II asymmetry means
//! a program can read the warp size but not the number of shared-memory
//! banks or the memory transaction size. The analyzer therefore models
//! the bank count as `warp_size` (true on every device generation the
//! paper covers) and the transaction size as the documented constant
//! [`ANALYZER_TXN_BYTES`]. The predictions are validated empirically:
//! the auto-tuner's measured layout winner is compared against
//! [`predict_variant`] by the `trisolve analyze` sweep.

use serde::Serialize;
use trisolve_core::kernels::access::KernelAccessSummary;
use trisolve_core::BaseVariant;
use trisolve_gpu_sim::QueryableProps;

/// Modeled global-memory transaction size in bytes.
///
/// Not queryable at runtime (Table II); 32 bytes is the smallest segment
/// size on the paper's three devices and the value the strided-layout
/// cost argument in `kernels::base` is written against: a warp touching
/// elements `stride` apart issues one transaction per
/// `max(1, txn / (stride * elem_bytes))`-element group.
pub const ANALYZER_TXN_BYTES: usize = 32;

/// Coalescing classification of one warp-level global access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CoalesceClass {
    /// All lanes read the same address — a single transaction.
    Broadcast,
    /// Consecutive lanes touch addresses within one transaction span;
    /// the hardware merges them into the minimal transaction set.
    Coalesced,
    /// Lanes are spread further than a transaction; every lane pays for
    /// its own transaction.
    Strided {
        /// Element distance between consecutive lanes.
        stride: usize,
    },
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Worst-case shared-memory bank-conflict degree of a warp access with
/// the given element stride between consecutive lanes.
///
/// The bank count is modeled as `warp_size` banks of 32-bit words;
/// `elem_bytes` wider than a word multiplies the effective word stride
/// (an f64 access is two word accesses — at best 2-way conflicted).
/// Stride 0 is a broadcast and conflict-free by hardware rule.
pub fn bank_conflict_degree(stride_elems: usize, elem_bytes: usize, warp_size: usize) -> usize {
    if stride_elems == 0 || warp_size == 0 {
        return 1;
    }
    let word_factor = (elem_bytes / 4).max(1);
    let stride_words = stride_elems * word_factor;
    let banks = warp_size;
    let distinct = banks / gcd(stride_words, banks);
    let lanes = warp_size.min(banks);
    lanes.div_ceil(distinct).max(word_factor)
}

/// Classify a warp-level global access by its inter-lane element stride.
pub fn classify_access(stride_elems: usize, elem_bytes: usize) -> CoalesceClass {
    if stride_elems == 0 {
        return CoalesceClass::Broadcast;
    }
    let span_cap = (ANALYZER_TXN_BYTES / elem_bytes.max(1)).max(1);
    if stride_elems <= span_cap {
        CoalesceClass::Coalesced
    } else {
        CoalesceClass::Strided {
            stride: stride_elems,
        }
    }
}

/// Predict the winning base-kernel layout for a chain stride.
///
/// The strided gather touches elements `stride` apart; once the stride
/// exceeds one transaction span (`ANALYZER_TXN_BYTES / elem_bytes`) each
/// lane pays a full transaction and the repack-to-coalesced layout moves
/// strictly fewer bytes. At or below the span the coalesced layout moves
/// the same bytes with merged transactions, so repacking cannot lose.
/// This mirrors the transaction pricing in `kernels::base` (see its
/// `variants_price_the_load_differently` test) without reading hidden
/// timing properties.
pub fn predict_variant(stride: usize, elem_bytes: usize) -> BaseVariant {
    let span_cap = (ANALYZER_TXN_BYTES / elem_bytes.max(1)).max(1);
    if stride > span_cap {
        BaseVariant::Strided
    } else {
        BaseVariant::Coalesced
    }
}

/// Worst-case bank-conflict degree of one shared-memory access site.
#[derive(Debug, Clone, Serialize)]
pub struct BankSummary {
    /// Access-site label, e.g. `"base::pcr_read"`.
    pub site: &'static str,
    /// Barrier-interval label the access executes in.
    pub interval: String,
    /// Worst-case serialization factor (1 = conflict-free).
    pub degree: usize,
}

/// Bank-conflict degrees for every shared-memory access of a kernel.
///
/// Reads only `q.warp_size` from the device — the bank count itself is
/// modeled, per the module docs.
pub fn kernel_bank_summaries(
    summary: &KernelAccessSummary,
    q: &QueryableProps,
    elem_bytes: usize,
) -> Vec<BankSummary> {
    summary
        .intervals
        .iter()
        .flat_map(|iv| {
            iv.accesses.iter().map(|a| BankSummary {
                site: a.site,
                interval: iv.label.clone(),
                degree: bank_conflict_degree(a.thread_coeff, elem_bytes, q.warp_size),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::kernels::access::repack_access_summary;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn padded_tile_is_conflict_free() {
        // The 32x33 transpose tile: column reads have word stride 33,
        // coprime to any power-of-two bank count.
        assert_eq!(bank_conflict_degree(33, 4, 32), 1);
        assert_eq!(bank_conflict_degree(33, 4, 16), 1);
        // Without the pad the column read would be fully serialized.
        assert_eq!(bank_conflict_degree(32, 4, 32), 32);
    }

    #[test]
    fn pow2_cr_strides_escalate() {
        let degrees: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&s| bank_conflict_degree(s, 4, 32))
            .collect();
        assert_eq!(degrees, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn f64_accesses_are_at_best_two_way() {
        assert_eq!(bank_conflict_degree(1, 8, 32), 2);
        assert_eq!(bank_conflict_degree(0, 8, 32), 1); // broadcast stays free
    }

    #[test]
    fn classification_matches_transaction_span() {
        assert_eq!(classify_access(0, 4), CoalesceClass::Broadcast);
        assert_eq!(classify_access(1, 4), CoalesceClass::Coalesced);
        assert_eq!(classify_access(8, 4), CoalesceClass::Coalesced); // 8*4 == 32
        assert_eq!(
            classify_access(16, 4),
            CoalesceClass::Strided { stride: 16 }
        );
    }

    #[test]
    fn variant_prediction_matches_base_kernel_pricing() {
        // base.rs's variants_price_the_load_differently: stride 8 in f64
        // makes the strided gather cheaper than loading via repack.
        assert_eq!(predict_variant(8, 8), BaseVariant::Strided);
        // Within one transaction span the coalesced layout cannot lose.
        assert_eq!(predict_variant(2, 4), BaseVariant::Coalesced);
        assert_eq!(predict_variant(1, 8), BaseVariant::Coalesced);
    }

    #[test]
    fn repack_tile_summaries_reflect_the_pad() {
        let dev = DeviceSpec::gtx_470();
        let s = repack_access_summary(4, 2048, 4);
        let banks = kernel_bank_summaries(&s, dev.queryable(), 4);
        let store = banks.iter().find(|b| b.site == "repack::tile_store");
        let load = banks.iter().find(|b| b.site == "repack::tile_load");
        assert_eq!(store.map(|b| b.degree), Some(1));
        assert_eq!(load.map(|b| b.degree), Some(1));
    }
}
