//! Bank-conflict counting and coalescing classification.
//!
//! These are *models*, not queries: the paper's Table II asymmetry means
//! a program can read the warp size but not the number of shared-memory
//! banks or the memory transaction size. The analyzer therefore models
//! the bank count as `warp_size` (true on every device generation the
//! paper covers) and the transaction size as the documented constant
//! [`ANALYZER_TXN_BYTES`]. The predictions are validated empirically:
//! the auto-tuner's measured layout winner is compared against
//! [`predict_variant`] by the `trisolve analyze` sweep.

use serde::Serialize;
use trisolve_core::kernels::access::KernelAccessSummary;
use trisolve_core::BaseVariant;
use trisolve_gpu_sim::QueryableProps;
use trisolve_tridiag::workloads::WorkloadShape;

/// Modeled global-memory transaction size in bytes.
///
/// Not queryable at runtime (Table II); 32 bytes is the smallest segment
/// size on the paper's three devices and the value the strided-layout
/// cost argument in `kernels::base` is written against: a warp touching
/// elements `stride` apart issues one transaction per
/// `max(1, txn / (stride * elem_bytes))`-element group.
pub const ANALYZER_TXN_BYTES: usize = 32;

/// Coalescing classification of one warp-level global access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CoalesceClass {
    /// All lanes read the same address — a single transaction.
    Broadcast,
    /// Consecutive lanes touch addresses within one transaction span;
    /// the hardware merges them into the minimal transaction set.
    Coalesced,
    /// Lanes are spread further than a transaction; every lane pays for
    /// its own transaction.
    Strided {
        /// Element distance between consecutive lanes.
        stride: usize,
    },
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Worst-case shared-memory bank-conflict degree of a warp access with
/// the given element stride between consecutive lanes.
///
/// The bank count is modeled as `warp_size` banks of 32-bit words;
/// `elem_bytes` wider than a word multiplies the effective word stride
/// (an f64 access is two word accesses — at best 2-way conflicted).
/// Stride 0 is a broadcast and conflict-free by hardware rule.
pub fn bank_conflict_degree(stride_elems: usize, elem_bytes: usize, warp_size: usize) -> usize {
    if stride_elems == 0 || warp_size == 0 {
        return 1;
    }
    let word_factor = (elem_bytes / 4).max(1);
    let stride_words = stride_elems * word_factor;
    let banks = warp_size;
    let distinct = banks / gcd(stride_words, banks);
    let lanes = warp_size.min(banks);
    lanes.div_ceil(distinct).max(word_factor)
}

/// Classify a warp-level global access by its inter-lane element stride.
pub fn classify_access(stride_elems: usize, elem_bytes: usize) -> CoalesceClass {
    if stride_elems == 0 {
        return CoalesceClass::Broadcast;
    }
    let span_cap = (ANALYZER_TXN_BYTES / elem_bytes.max(1)).max(1);
    if stride_elems <= span_cap {
        CoalesceClass::Coalesced
    } else {
        CoalesceClass::Strided {
            stride: stride_elems,
        }
    }
}

/// Predict the winning base-kernel layout for a chain stride.
///
/// The strided gather touches elements `stride` apart; once the stride
/// exceeds one transaction span (`ANALYZER_TXN_BYTES / elem_bytes`) each
/// lane pays a full transaction and the repack-to-coalesced layout moves
/// strictly fewer bytes. At or below the span the coalesced layout moves
/// the same bytes with merged transactions, so repacking cannot lose.
/// This mirrors the transaction pricing in `kernels::base` (see its
/// `variants_price_the_load_differently` test) without reading hidden
/// timing properties.
pub fn predict_variant(stride: usize, elem_bytes: usize) -> BaseVariant {
    let span_cap = (ANALYZER_TXN_BYTES / elem_bytes.max(1)).max(1);
    if stride > span_cap {
        BaseVariant::Strided
    } else {
        BaseVariant::Coalesced
    }
}

/// True when a workload sits in the modeled **many-small window**, where
/// the coalescing + occupancy model prices the interleaved batched-Thomas
/// fast path below the staged pipeline.
///
/// Three queryable conditions, each tied to a term of the model:
///
/// * **small systems** — at most two warps of unknowns
///   (`padded ≤ 2·warp_size`): the staged base kernel's blocks are that
///   small, so its PCR phase is barrier-latency-bound, not
///   bandwidth-bound, while the interleaved layout's unit inter-lane
///   stride keeps every batched-Thomas access in the
///   [`CoalesceClass::Coalesced`] class;
/// * **capacity-bound occupancy** — the device can hold at least 32
///   warps per block (`max_threads_per_block ≥ 32·warp_size`,
///   Fermi-class): blocks of two warps then fill under 1/16 of a block
///   slot, and the idle capacity cannot hide the barrier latency.
///   Earlier parts with 512-thread block caps run the same small blocks
///   at proportionally higher occupancy and keep the staged path ahead;
/// * **deep batch** — at least ~1K systems per processor
///   (`num_systems ≥ 1024·num_processors`): the fast path pays two extra
///   full repacking sweeps of the coefficient payload, which only
///   amortise over batches in the tens of thousands.
///
/// Like every model in this module it reads only queryable properties;
/// the dynamic tuner's measured phase-D switch point is the empirical
/// check (and the `trisolve analyze` sweep cross-validates the two).
pub fn many_small_window(shape: WorkloadShape, q: &QueryableProps) -> bool {
    let padded = shape.system_size.next_power_of_two();
    padded <= 2 * q.warp_size
        && q.max_threads_per_block >= 32 * q.warp_size
        && shape.num_systems >= 1024 * q.num_processors
}

/// Predict the winning layout for a whole workload: the interleaved
/// batched-Thomas fast path inside the [`many_small_window`], otherwise
/// the base kernel's chain stride decides between strided and coalesced
/// exactly as [`predict_variant`] always has.
pub fn predict_layout(
    shape: WorkloadShape,
    base_stride: usize,
    q: &QueryableProps,
    elem_bytes: usize,
) -> BaseVariant {
    if many_small_window(shape, q) {
        BaseVariant::Interleaved
    } else {
        predict_variant(base_stride, elem_bytes)
    }
}

/// Worst-case bank-conflict degree of one shared-memory access site.
#[derive(Debug, Clone, Serialize)]
pub struct BankSummary {
    /// Access-site label, e.g. `"base::pcr_read"`.
    pub site: &'static str,
    /// Barrier-interval label the access executes in.
    pub interval: String,
    /// Worst-case serialization factor (1 = conflict-free).
    pub degree: usize,
}

/// Bank-conflict degrees for every shared-memory access of a kernel.
///
/// Reads only `q.warp_size` from the device — the bank count itself is
/// modeled, per the module docs.
pub fn kernel_bank_summaries(
    summary: &KernelAccessSummary,
    q: &QueryableProps,
    elem_bytes: usize,
) -> Vec<BankSummary> {
    summary
        .intervals
        .iter()
        .flat_map(|iv| {
            iv.accesses.iter().map(|a| BankSummary {
                site: a.site,
                interval: iv.label.clone(),
                degree: bank_conflict_degree(a.thread_coeff, elem_bytes, q.warp_size),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolve_core::kernels::access::repack_access_summary;
    use trisolve_gpu_sim::DeviceSpec;

    #[test]
    fn padded_tile_is_conflict_free() {
        // The 32x33 transpose tile: column reads have word stride 33,
        // coprime to any power-of-two bank count.
        assert_eq!(bank_conflict_degree(33, 4, 32), 1);
        assert_eq!(bank_conflict_degree(33, 4, 16), 1);
        // Without the pad the column read would be fully serialized.
        assert_eq!(bank_conflict_degree(32, 4, 32), 32);
    }

    #[test]
    fn pow2_cr_strides_escalate() {
        let degrees: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&s| bank_conflict_degree(s, 4, 32))
            .collect();
        assert_eq!(degrees, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn f64_accesses_are_at_best_two_way() {
        assert_eq!(bank_conflict_degree(1, 8, 32), 2);
        assert_eq!(bank_conflict_degree(0, 8, 32), 1); // broadcast stays free
    }

    #[test]
    fn classification_matches_transaction_span() {
        assert_eq!(classify_access(0, 4), CoalesceClass::Broadcast);
        assert_eq!(classify_access(1, 4), CoalesceClass::Coalesced);
        assert_eq!(classify_access(8, 4), CoalesceClass::Coalesced); // 8*4 == 32
        assert_eq!(
            classify_access(16, 4),
            CoalesceClass::Strided { stride: 16 }
        );
    }

    #[test]
    fn variant_prediction_matches_base_kernel_pricing() {
        // base.rs's variants_price_the_load_differently: stride 8 in f64
        // makes the strided gather cheaper than loading via repack.
        assert_eq!(predict_variant(8, 8), BaseVariant::Strided);
        // Within one transaction span the coalesced layout cannot lose.
        assert_eq!(predict_variant(2, 4), BaseVariant::Coalesced);
        assert_eq!(predict_variant(1, 8), BaseVariant::Coalesced);
    }

    #[test]
    fn layout_prediction_matches_the_measured_many_small_winner() {
        // The window the dynamic tuner's phase-D measurements confirm: on
        // the GTX 470 the interleaved batched-Thomas wins for deep batches
        // of up-to-two-warp systems; the 512-thread-block-cap parts and
        // every shallow or large-system workload stay staged.
        let q470 = DeviceSpec::gtx_470();
        let q470 = q470.queryable();
        for shape in [
            WorkloadShape::new(65536, 32),
            WorkloadShape::new(65536, 64),
            WorkloadShape::new(16384, 64),
        ] {
            assert_eq!(
                predict_layout(shape, 1, q470, 4),
                BaseVariant::Interleaved,
                "{shape:?}"
            );
        }
        for dev in [DeviceSpec::gtx_280(), DeviceSpec::geforce_8800_gtx()] {
            let q = dev.queryable();
            assert!(
                !many_small_window(WorkloadShape::new(65536, 32), q),
                "{}",
                q.name
            );
        }
        for shape in [
            WorkloadShape::new(4096, 64),   // too shallow for 14 SMs x 1K
            WorkloadShape::new(65536, 128), // 4 warps of unknowns
            WorkloadShape::new(16384, 512), // large systems
        ] {
            assert!(!many_small_window(shape, q470), "{shape:?}");
        }
        // Outside the window the old stride rule is untouched.
        assert_eq!(
            predict_layout(WorkloadShape::new(16, 4096), 8, q470, 8),
            BaseVariant::Strided
        );
        assert_eq!(
            predict_layout(WorkloadShape::new(16, 4096), 1, q470, 4),
            BaseVariant::Coalesced
        );
    }

    #[test]
    fn repack_tile_summaries_reflect_the_pad() {
        let dev = DeviceSpec::gtx_470();
        let s = repack_access_summary(4, 2048, 4);
        let banks = kernel_bank_summaries(&s, dev.queryable(), 4);
        let store = banks.iter().find(|b| b.site == "repack::tile_store");
        let load = banks.iter().find(|b| b.site == "repack::tile_load");
        assert_eq!(store.map(|b| b.degree), Some(1));
        assert_eq!(load.map(|b| b.degree), Some(1));
    }
}
